"""Legacy setup shim: enables `pip install -e . --no-use-pep517` offline.

Carries the minimal packaging metadata directly (there is no
pyproject.toml): the src/ layout mapping and the ``repro-analysis``
console script, so an installed checkout can run the static analyzer
without PYTHONPATH gymnastics (``repro-analysis src/`` is
``python -m repro.analysis src/``).
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.8",
    description=(
        "A repository of bidirectional-transformation examples "
        "(EDBT 2014), grown into a storage/serving/analysis stack"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro-analysis=repro.analysis.__main__:main",
        ],
    },
)
