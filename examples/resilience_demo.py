#!/usr/bin/env python3
"""Resilience demo: riding out a brownout without stalling anyone.

Run with::

    python examples/resilience_demo.py

The PR-9 resilience layer, end to end, in one process:

1. a two-shard repository where each shard is a replicated pair and
   every primary can be *browned out* — made slow-but-alive, the
   failure mode error-triggered failover never catches;
2. a per-shard deadline on the sharded router: reads of the
   browned-out key-range fail in ~150ms with `DeadlineExceeded`
   instead of stalling callers for the full injected delay, while the
   healthy shard keeps serving at full speed;
3. a `RetryPolicy` (decorrelated jitter + retry budget) riding a
   killed-then-revived replica: the circuit breaker opens after three
   failed writes, suspends the replica, fails fast while it is down,
   and `check_health()` anti-entropy-repairs the missed writes
   *before* the replica rejoins the read rotation;
4. the HTTP door under overload: admission control clamps in-flight
   handlers, the excess gets 503 + Retry-After, and the default client
   policy waits the hinted delay and succeeds.
"""

from __future__ import annotations

import threading
import time

from repro.core.errors import (
    BackendUnavailableError,
    DeadlineExceeded,
    StorageError,
)
from repro.repository import (
    Deadline,
    FaultInjector,
    FlakyBackend,
    HTTPBackend,
    MemoryBackend,
    ReplicatedBackend,
    RepositoryServer,
    RepositoryService,
    RetryPolicy,
    ShardedBackend,
    SlowBackend,
    deadline_scope,
    shard_index,
)
from repro.repository.entry import (
    ExampleEntry,
    ModelDescription,
    RestorationSpec,
)
from repro.repository.template import EntryType
from repro.repository.versioning import Version


def demo_entry(title: str) -> ExampleEntry:
    return ExampleEntry(
        title=title, version=Version(0, 1),
        types=(EntryType.SKETCH,),
        overview="A resilience-demo entry.",
        models=(ModelDescription("M", "Left."),
                ModelDescription("N", "Right.")),
        consistency="They agree.",
        restoration=RestorationSpec(combined="Copy."),
        discussion="Injected traffic.", authors=("Demo",))


def build_stack():
    """Two shards, each a replicated pair with a brownout-able primary."""
    injector = FaultInjector()
    slow_primaries, replicas, pairs = [], [], []
    for index in range(2):
        slow = SlowBackend(MemoryBackend(), injector,
                           f"shard{index}.brownout", delay=1.0)
        replica = FlakyBackend(MemoryBackend(), injector,
                               f"shard{index}.replica")
        slow_primaries.append(slow)
        replicas.append(replica)
        pairs.append(ReplicatedBackend(slow, [replica]))
    sharded = ShardedBackend(pairs, shard_timeout=0.15)
    return sharded, slow_primaries, replicas, pairs


def main() -> None:
    sharded, slow_primaries, replicas, pairs = build_stack()
    service = RepositoryService(sharded, cache_size=0)

    # Seed one entry per shard so both key-ranges are observable.
    by_shard: dict[int, ExampleEntry] = {}
    index = 0
    while len(by_shard) < 2:
        entry = demo_entry(f"DEMO ENTRY {index}")
        shard = shard_index(entry.identifier, 2)
        if shard not in by_shard:
            service.add(entry)
            by_shard[shard] = entry
        index += 1
    print(f"repository: {service.entry_count()} entries across 2 shards")

    # 1. Brownout: shard 0's primary turns slow (1s per call), alive.
    print("\n-- brownout: shard 0 goes slow-but-alive --")
    slow_primaries[0].brownout()
    started = time.perf_counter()
    try:
        service.get(by_shard[0].identifier)
    except DeadlineExceeded as error:
        elapsed = time.perf_counter() - started
        print(f"shard-0 read failed fast in {elapsed * 1000:.0f}ms "
              f"(injected delay was 1000ms): {error}")
    started = time.perf_counter()
    healthy = service.get(by_shard[1].identifier)
    elapsed = time.perf_counter() - started
    print(f"shard-1 read unaffected: {healthy.title!r} "
          f"in {elapsed * 1000:.1f}ms")
    slow_primaries[0].restore()
    time.sleep(slow_primaries[0].delay)  # drain the abandoned straggler
    restored = service.get(by_shard[0].identifier)
    print(f"after restore: shard-0 serves {restored.title!r} again")

    # 2. Replica outage -> breaker opens -> repair-then-rejoin.
    print("\n-- replica outage on shard 0: breaker + reintegration --")
    replicas[0].kill()
    outage_writes, attempt = 0, 0
    while outage_writes < 3:  # route the writes onto the broken shard
        entry = demo_entry(f"DURING OUTAGE {attempt}")
        attempt += 1
        if shard_index(entry.identifier, 2) == 0:
            service.add(entry)
            outage_writes += 1
    pair = pairs[0]
    print(f"after 3 failed mirror writes: suspended replicas = "
          f"{pair.suspended_replicas()}, "
          f"stats = {pair.resilience_stats()['replicas'][0]}")
    print(f"health check while still down reintegrates: "
          f"{pair.check_health()} (nothing — it is still dead)")
    replicas[0].revive()
    recovered = pair.check_health()
    print(f"health check after revival reintegrates: {recovered} "
          f"(repaired first: replica now holds "
          f"{replicas[0].entry_count()} entries, "
          f"primary {pair.primary.entry_count()})")

    # 3. Overload at the HTTP door: shed with Retry-After, ride back in.
    print("\n-- overload: admission control at the HTTP door --")
    server = RepositoryServer(service, max_inflight=1,
                              shed_retry_after=0.2).start()
    print(f"serving on {server.url} with max_inflight=1")
    hot = by_shard[1].identifier
    holder = HTTPBackend(server.url)
    single_shot = HTTPBackend(server.url,
                              retry_policy=RetryPolicy(max_attempts=1))
    slow_primaries[1].brownout()  # make the held request slow
    entered = threading.Event()

    def hold() -> None:
        entered.set()
        try:
            holder.get(hot)
        except StorageError as error:
            # Even the request hogging the only slot is bounded: the
            # per-shard deadline cuts the browned-out read off
            # server-side rather than letting it squat indefinitely.
            print(f"held request itself was deadline-bounded: {error}")

    thread = threading.Thread(target=hold, daemon=True)
    thread.start()
    entered.wait()
    time.sleep(0.1)  # let the held request occupy the only slot
    try:
        single_shot.get(hot)
    except BackendUnavailableError as error:
        print(f"second request shed: {error} "
              f"(retry after {error.retry_after}s)")
    slow_primaries[1].restore()
    thread.join()
    # The default client policy honours the Retry-After hint and wins.
    patient = HTTPBackend(server.url)
    with deadline_scope(Deadline.after(5.0)):
        ridden = patient.get(hot)
    print(f"default retry policy rode the shed out: {ridden.title!r}")
    admission = server.metrics.snapshot()["admission"]
    print(f"server admission counters: {admission}")

    patient.close()
    single_shot.close()
    holder.close()
    server.stop()
    service.close()
    print("\nresilience demo OK")


if __name__ == "__main__":
    main()
