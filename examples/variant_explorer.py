#!/usr/bin/env python3
"""E9 in action: how each §4 variant choice changes observable behaviour.

Run with::

    python examples/variant_explorer.py

Prints a behaviour matrix over the Composers variants — the paper's
three variant questions plus the canonical-order cautionary tale and
the remembering (complement-carrying) lens — with the property profile
of each measured by the law harness.
"""

from __future__ import annotations

from repro.catalogue.composers import (
    CanonicalOrderComposersBx,
    KeyOnNameComposersBx,
    RememberingComposersLens,
    composers_bx,
    composers_bx_with_position,
    make_composer,
)
from repro.core.laws import CheckConfig, check_bx_properties
from repro.harness.reporting import text_table


def property_matrix() -> None:
    variants = [
        composers_bx(),
        composers_bx_with_position("front"),
        composers_bx_with_position("alphabetic"),
        CanonicalOrderComposersBx(),
        KeyOnNameComposersBx(),
    ]
    config = CheckConfig(trials=250, seed=1)
    rows = []
    for bx in variants:
        report = check_bx_properties(bx, config=config)
        status = {r.law: r.status.value for r in report.results}
        rows.append((bx.name, status["correct"], status["hippocratic"],
                     status["undoable"], status["simply matching"]))
    print(text_table(
        ("variant", "correct", "hippocratic", "undoable",
         "simply matching"), rows))


def britten_story() -> None:
    """The paper's Britten, British / Britten, English question."""
    print("\n--- the Britten question (modify or create?) ---")
    model = frozenset({make_composer("Britten", "1913-1976", "British")})
    listing = (("Britten", "English"),)

    base = composers_bx()
    (replaced,) = base.bwd(model, listing)
    print(f"base bx creates a new composer: dates {replaced.dates}")

    keyed = KeyOnNameComposersBx()
    (modified,) = keyed.bwd(model, listing)
    print(f"name-keyed bx modifies in place: dates {modified.dates}")


def remembering_story() -> None:
    """The Discussion's delete/re-add scenario, with and without memory."""
    print("\n--- undoability: state-based vs complement-carrying ---")
    britten = make_composer("Britten", "1913-1976", "English")
    model = frozenset({britten})
    listing = (("Britten", "English"),)

    base = composers_bx()
    lost = base.bwd(base.bwd(model, ()), listing)
    (reborn,) = lost
    print(f"state-based after delete/re-add: dates {reborn.dates}")

    lens = RememberingComposersLens()
    synced, complement = lens.putr(model, lens.missing())
    _gone, complement = lens.putl((), complement)
    restored, _complement = lens.putl(synced, complement)
    (kept,) = restored
    print(f"remembering lens after delete/re-add: dates {kept.dates}")


def main() -> None:
    print("--- property matrix across Composers variants ---")
    property_matrix()
    britten_story()
    remembering_story()


if __name__ == "__main__":
    main()
