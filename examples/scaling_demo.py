#!/usr/bin/env python3
"""Scaling demo: a sharded primary, a replicated copy, and repair.

Run with::

    python examples/scaling_demo.py

Builds the deployment the scaling layer was written for: the catalogue
(plus generated filler) hash-sharded across four SQLite databases, the
whole cluster mirrored into a directory-of-JSON replica (the paper's
§5.4 wiki-independent copy), and a `RepositoryService` in front serving
concurrent readers.  Then the replica "goes offline", misses writes,
and an anti-entropy pass repairs it.
"""

from __future__ import annotations

import dataclasses
import tempfile
import threading
from pathlib import Path

from repro.catalogue import populate_store
from repro.harness.workloads import zipfian_identifiers
from repro.repository.backends import (
    FileBackend,
    ReplicatedBackend,
    ShardedBackend,
)
from repro.repository.query import Q
from repro.repository.service import RepositoryService
from repro.repository.versioning import Version


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="bx-scaling-"))

    # 1. The cluster: four SQLite shards behind one ReplicatedBackend,
    #    mirrored into a durable file-tree replica, fronted by the
    #    caching/locking service facade.
    shards = ShardedBackend.create("sqlite", root / "cluster",
                                   shard_count=4)
    replica = FileBackend(root / "wiki-independent-copy")
    service = RepositoryService(ReplicatedBackend(shards, replica))

    count = populate_store(service)
    filler = [dataclasses.replace(service.get("composers"),
                                  title=f"COMPOSERS VARIATION {index}")
              for index in range(60)]
    count += service.add_many(
        [dataclasses.replace(entry, version=Version(0, 1))
         for entry in filler])
    print(f"loaded {count} entries into 4 sqlite shards "
          f"(sizes {shards.shard_sizes()}) with a file replica")

    # 2. Concurrent readers: a Zipf-skewed stream, served in parallel
    #    through the read/write lock and the shard fan-out.
    requests = zipfian_identifiers(400, service.identifiers(), seed=11)
    chunks = [requests[start:start + 100]
              for start in range(0, len(requests), 100)]
    results: list[int] = []

    def reader(chunk: list[str]) -> None:
        results.append(len(service.get_many(chunk)))

    threads = [threading.Thread(target=reader, args=(chunk,))
               for chunk in chunks]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    info = service.cache_info()
    print(f"served {sum(results)} zipfian reads from "
          f"{len(threads)} reader threads "
          f"(cache hits {info['hits']}, misses {info['misses']})")

    # 3. Divergence: the replica misses writes that land directly on
    #    the sharded primary (an "offline replica" window).
    target = service.get("composers")
    shards.add_version(dataclasses.replace(
        target, version=Version(0, 2),
        overview=target.overview + " Revised while the copy was down."))
    print("\nreplica diverged: primary now has",
          [str(v) for v in shards.versions("composers")],
          "but the copy has",
          [str(v) for v in replica.versions("composers")])

    # 4. Anti-entropy: one pass reconciles the histories.
    report = service.backend.anti_entropy()
    print(f"anti_entropy(): copied {report.entries_copied} entries, "
          f"appended {report.versions_appended} versions, "
          f"replaced {report.payloads_replaced} payloads, "
          f"{len(report.conflicts)} conflicts")
    assert replica.versions("composers") == shards.versions("composers")
    follow_up = service.backend.anti_entropy()
    assert not follow_up.changed
    print("replica equality restored; second pass found nothing to do")

    # 5. The copy is an independent artifact: read it raw off disk.
    page = replica.get("composers")
    print(f"\nwiki-independent copy serves: {page.title!r} "
          f"at {page.version} from {replica.root}")

    # 6. Faceted retrieval over the cluster: the service pushes the
    #    plan down, the replicated layer routes it to a healthy copy,
    #    and the shards execute it in parallel with *global* IDF
    #    statistics — so the ranked page is identical to what a single
    #    store would return.
    result = service.query(Q.text("composers nationality")
                           & Q.property("correct"),
                           limit=5)
    print(f"\nfan-out query over {shards.shard_count} shards: "
          f"top {len(result.hits)} of {result.total} matches "
          f"{result.identifiers}")
    print(f"  facets: types {result.facets['type']}, "
          f"review {result.facets['review']}")
    service.close()


if __name__ == "__main__":
    main()
