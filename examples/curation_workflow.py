#!/usr/bin/env python3
"""The §5.1 curation workflow, end to end, on a file-backed repository.

Run with::

    python examples/curation_workflow.py

Plays out the three-level curatorial structure: a member submits a new
example, another member comments, a reviewer approves it to version 1.0,
and the full version history remains addressable — then cites both the
provisional and the reviewed versions, which differ, as §5.2 requires.
"""

from __future__ import annotations

import tempfile

from repro.repository.backends import FileBackend
from repro.repository.citation import cite_entry
from repro.repository.curation import CuratedRepository, Role, User
from repro.repository.entry import (
    ExampleEntry,
    ModelDescription,
    PropertyClaim,
    RestorationSpec,
)
from repro.repository.service import RepositoryService
from repro.repository.template import EntryType
from repro.repository.versioning import Version


def celsius_entry() -> ExampleEntry:
    """A new example a community member might contribute."""
    return ExampleEntry(
        title="TEMPERATURES",
        version=Version(0, 1),
        types=(EntryType.PRECISE,),
        overview=("Celsius and Fahrenheit readings of the same "
                  "thermometer, kept consistent in both directions."),
        models=(ModelDescription("C", "A temperature in Celsius."),
                ModelDescription("F", "A temperature in Fahrenheit.")),
        consistency="f == c * 9/5 + 32.",
        restoration=RestorationSpec(
            combined="Each side determines the other; convert."),
        properties=(PropertyClaim("correct"),
                    PropertyClaim("hippocratic"),
                    PropertyClaim("undoable")),
        variants=(),
        discussion=("A bijection; included as the smallest possible "
                    "precise entry."),
        authors=("Mia",),
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        # Durable file backend, fronted by the caching/event facade;
        # the curated workflow only ever sees the service.
        service = RepositoryService(FileBackend(root))
        repo = CuratedRepository(service)

        mia = User("Mia", Role.MEMBER)
        bob = User("Bob", Role.MEMBER)
        rex = User("Rex", Role.REVIEWER)

        # A member submits; the entry enters as provisional 0.x.
        entry = repo.submit(mia, celsius_entry())
        print(f"submitted {entry.identifier!r} at version {entry.version} "
              f"({repo.review_status(entry.identifier)})")

        # Anyone with an account can comment.
        repo.comment(bob, "temperatures", "2014-03-28",
                     "State the rounding convention?")
        print("Bob commented:",
              repo.get("temperatures").comments[-1].text)

        # The author revises in response; versions move linearly.
        current = repo.get("temperatures")
        revised = current.with_version(Version(0, 2))
        revised = revised.__class__.from_dict({
            **revised.to_dict(),
            "consistency": "f == c * 9/5 + 32, both exact rationals.",
        })
        repo.revise(mia, revised)
        print(f"Mia revised to {repo.get('temperatures').version}")

        # A reviewer (not an author) approves: 1.0, reviewer credited.
        approved = repo.approve(rex, "temperatures")
        print(f"Rex approved: version {approved.version}, reviewers "
              f"{approved.reviewers}")

        # Old references still work (§5.2).
        history = repo.store.versions("temperatures")
        print("stored versions:", ", ".join(str(v) for v in history))
        original = repo.get("temperatures", Version(0, 1))
        print("v0.1 consistency text:", original.consistency)

        # Citations pin the exact version.
        print("\ncite the provisional version:")
        print(" ", cite_entry(original))
        print("cite the reviewed version:")
        print(" ", cite_entry(approved))


if __name__ == "__main__":
    main()
