#!/usr/bin/env python3
"""Regenerate the EXPERIMENTS.md claims tables from a live run.

Run with::

    python examples/experiments_report.py

Prints, for every executable catalogue entry, the claim-vs-measured
table (E3–E6 and siblings), the E9 variants matrix, and the E1
template summary — the non-timing half of EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.catalogue import builtin_catalogue
from repro.catalogue.composers import (
    CanonicalOrderComposersBx,
    KeyOnNameComposersBx,
    composers_bx,
    composers_bx_with_position,
)
from repro.core.laws import CheckConfig, check_bx_properties
from repro.harness.reporting import claims_table, text_table
from repro.repository.template import TEMPLATE
from repro.repository.validation import validate_entry

CONFIG = CheckConfig(trials=250, seed=7)


def report_template() -> None:
    print("== E1: the §3 template ==")
    rows = [(spec.display_name, "required" if spec.required else "optional")
            for spec in TEMPLATE]
    print(text_table(("field", "status"), rows))


def report_claims() -> None:
    print("\n== E3-E6 and siblings: entry claims vs measurement ==")
    for example in builtin_catalogue():
        if not example.has_bx():
            continue
        print(f"\n-- {example.name} --")
        print(claims_table(example.verify_claims(CONFIG)))


def report_variants() -> None:
    print("\n== E9: Composers variants matrix ==")
    rows = []
    for bx in (composers_bx(),
               composers_bx_with_position("front"),
               composers_bx_with_position("alphabetic"),
               CanonicalOrderComposersBx(),
               KeyOnNameComposersBx()):
        report = check_bx_properties(bx, config=CONFIG)
        status = {r.law: r.status.value for r in report.results}
        rows.append((bx.name, status["correct"], status["hippocratic"],
                     status["undoable"], status["simply matching"]))
    print(text_table(("variant", "correct", "hippocratic", "undoable",
                      "simply matching"), rows))


def report_validation() -> None:
    print("\n== entry validation across the catalogue ==")
    rows = []
    for example in builtin_catalogue():
        report = validate_entry(example.entry())
        rows.append((example.name,
                     "ok" if report.ok else f"{len(report.errors)} errors",
                     len(report.warnings)))
    print(text_table(("entry", "validation", "warnings"), rows))


def main() -> None:
    report_template()
    report_validation()
    report_claims()
    report_variants()


if __name__ == "__main__":
    main()
