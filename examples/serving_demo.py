#!/usr/bin/env python3
"""Serving demo: the repository behind HTTP, browsed like a community site.

Run with::

    python examples/serving_demo.py

Boots the PR-5 serving stack end to end, in one process:

1. a SQLite-backed `RepositoryService` loaded with the catalogue;
2. a `RepositoryServer` on an ephemeral port (the stdlib-only
   HTTP/JSON API);
3. an `HTTPBackend` client — the same `StorageBackend` interface,
   but over the wire — writing, querying and reading back;
4. `GET /wiki/{id}` served from the event-driven render cache:
   a second fetch is a cache hit;
5. the async facade (`AsyncRepositoryService`) fanning concurrent
   reads out over the *same* service the HTTP handlers used — and,
   as the owner of the shutdown, closing everything at the end.
"""

from __future__ import annotations

import asyncio
import tempfile
import urllib.request
from pathlib import Path

from repro.catalogue import populate_store
from repro.repository.aservice import AsyncRepositoryService
from repro.repository.backends import SQLiteBackend
from repro.repository.client import HTTPBackend
from repro.repository.query import Q
from repro.repository.server import RepositoryServer
from repro.repository.service import RepositoryService
from repro.repository.versioning import Version


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="bx-serving-"))

    # 1. The repository: catalogue entries in SQLite, behind the facade.
    service = RepositoryService(SQLiteBackend(root / "repo.db"))
    populate_store(service)
    print(f"repository: {service.entry_count()} entries in {root}")

    # 2. The server: one handler thread per connection, ephemeral port.
    with RepositoryServer(service) as server:
        print(f"serving on {server.url}")

        # 3. A client that IS a StorageBackend — write, query, read.
        client = HTTPBackend(server.url)
        first = client.get(client.identifiers()[0])
        print(f"over the wire: fetched {first.identifier!r} "
              f"(version {first.version})")

        result = client.query(Q.text("composers"), limit=3)
        print(f"POST /query 'composers': {result.total} matches, "
              f"top page {result.identifiers}")

        new_version = first.with_version(
            Version(first.version.major, first.version.minor + 1))
        client.add_version(new_version)
        print(f"wrote {new_version.identifier!r} "
              f"v{new_version.version} through HTTP")

        # 4. Wiki pages from the render cache.
        def wiki(identifier: str) -> str:
            with urllib.request.urlopen(
                    f"{server.url}/wiki/{identifier}") as response:
                return response.read().decode("utf-8")

        page = wiki(first.identifier)
        wiki(first.identifier)  # warm: served without re-rendering
        stats = server.render_cache.cache_stats()
        print(f"GET /wiki/{first.identifier}: {len(page)} bytes "
              f"(cache hits={stats['hits']}, misses={stats['misses']})")

        client.close()

    # 5. Async fan-out over the same service (one lock, one cache).
    #    The async context manager owns shutdown: on exit it saves the
    #    index (when configured), closes the backend and drains its
    #    executors — so it runs last.
    async def fan_out() -> None:
        async with AsyncRepositoryService(service) as aservice:
            identifiers = (await aservice.identifiers())[:6]
            entries = await asyncio.gather(
                *(aservice.get(identifier) for identifier in identifiers))
            print("async gather: fetched "
                  f"{[entry.identifier for entry in entries]}")
            print("entries served:", await aservice.entry_count())

    asyncio.run(fan_out())
    print("stack shut down cleanly")


if __name__ == "__main__":
    main()
