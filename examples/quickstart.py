#!/usr/bin/env python3
"""Quickstart: the repository, the Composers example, and the law harness.

Run with::

    python examples/quickstart.py

Walks the paper's core loop: load the built-in catalogue into a store,
read the COMPOSERS entry (§4 of the paper), run its bx both ways, and
let the harness verify the entry's property claims — including finding
the undoability counterexample the paper describes in prose.
"""

from __future__ import annotations

from repro.catalogue import catalogue_example, populate_store
from repro.catalogue.composers import make_composer
from repro.core.laws import CheckConfig
from repro.repository.citation import cite_entry
from repro.repository.export import render_wikidot
from repro.repository.query import Q
from repro.repository.service import RepositoryService
from repro.repository.template import EntryType


def main() -> None:
    # 1. A repository service (caching facade over an in-memory
    #    backend), populated with the built-in catalogue.
    store = RepositoryService()
    count = populate_store(store)
    print(f"populated the repository with {count} entries:")
    for identifier in store.identifiers():
        print(f"  - {identifier}")

    # ...findable through the unified query API (§5.2: "will people be
    # able to find and refer to relevant examples?").  Free text,
    # structured filters and combinators compose in one expression;
    # the result carries ranked hits plus totals and facet counts.
    result = store.query(Q.text("composers nationality"), limit=3)
    print("query 'composers nationality' ->", result.identifiers)

    faceted = store.query(
        Q.text("schema") & Q.type(EntryType.PRECISE)
        & Q.property("correct"))
    print(f"precise + correct + 'schema' -> {faceted.identifiers} "
          f"(of {faceted.total}; property facets "
          f"{faceted.facets['property']})")

    # 2. The COMPOSERS entry, rendered as its wiki page.
    composers = catalogue_example("composers")
    entry = composers.entry()
    print("\n--- the §4 entry, as a wikidot page (excerpt) ---")
    page = render_wikidot(entry)
    print("\n".join(page.splitlines()[:16]))
    print("    ...")

    # 3. The executable artefact: restoration in both directions.
    bx = composers.bx()
    model = frozenset({
        make_composer("Britten", "1913-1976", "English"),
        make_composer("Elgar", "1857-1934", "English"),
    })
    listing = (("Elgar", "English"), ("Purcell", "English"))
    print("\n--- consistency restoration ---")
    print("m =", sorted(c.name for c in model))
    print("n =", listing)
    print("fwd(m, n)  =", bx.fwd(model, listing))
    repaired = bx.bwd(model, listing)
    print("bwd(m, n)  =", sorted((c.name, c.dates) for c in repaired))

    # 4. The mechanised reviewer: verify every §4 property claim.
    print("\n--- verifying the entry's property claims ---")
    report = composers.verify_claims(CheckConfig(trials=200, seed=1))
    print(report.summary())

    # 5. How a paper should cite the example (§5.2).
    print("\n--- citing the example ---")
    print(cite_entry(entry))


if __name__ == "__main__":
    main()
