#!/usr/bin/env python3
"""§5.4 dogfooding: wiki page and local copy kept consistent by a bx.

Run with::

    python examples/wiki_roundtrip.py

Simulates the situation the paper describes: the repository keeps a
structured local copy (JSON in a FileStore) while the public face is a
wikidot page.  A community member edits the *page*; the wiki-sync lens
puts the edit back into the structured copy — and restores a section the
careless editor deleted.  Collection-scale rendering goes through the
event-driven render cache: after the edit, exactly one page re-renders.
"""

from __future__ import annotations

import tempfile

from repro.catalogue import populate_store
from repro.repository.backends import FileBackend
from repro.repository.render_cache import RenderCache
from repro.repository.service import RepositoryService
from repro.repository.wiki_sync import (
    WikiSyncLens,
    apply_wiki_edit,
    normalise_entry,
    render_wiki_pages,
)


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        store = RepositoryService(FileBackend(root))
        populate_store(store)
        lens = WikiSyncLens()

        # The whole collection rendered once, through the render cache
        # (later calls re-render only what was written in between).
        cache = RenderCache(store)
        pages = render_wiki_pages(store, cache=cache)
        print(f"rendered {len(pages)} wiki pages (cold)")

        # The local structured copy and its rendered wiki page.
        entry = normalise_entry(store.get("roman-numerals"))
        page = lens.get(entry)
        print("--- the wiki page (first lines) ---")
        print("\n".join(page.splitlines()[:10]))

        # A wiki member edits the overview... and deletes the whole
        # References-to-Artefacts tail by accident.
        edited = page.replace(
            "A pure bijection: integers 1..3999",
            "A pure bijection: whole numbers 1..3999")
        edited = edited.split("++ Authors")[0]
        print("\nedited page: overview reworded; sections below "
              "Discussion lost")

        # apply_wiki_edit puts the page back through the facade: the
        # edit lands, the lost sections come back from the structured
        # copy, and the stored latest snapshot is replaced in one step.
        merged = apply_wiki_edit(store, "roman-numerals", edited)
        print("\n--- after synchronisation ---")
        print("overview:", merged.overview)
        print("authors restored:", merged.authors)
        print("artefacts restored:",
              [artefact.name for artefact in merged.artefacts])
        print("stored overview now:",
              store.get("roman-numerals").overview)

        # The replace_latest event evicted exactly the edited entry:
        # a warm collection render re-renders one page, serves the rest.
        before = cache.cache_stats()
        pages = render_wiki_pages(store, cache=cache)
        after = cache.cache_stats()
        print(f"\nwarm re-render: {after['misses'] - before['misses']} "
              f"page(s) re-rendered, "
              f"{after['hits'] - before['hits']} served from cache")

        # Round-trip sanity over the whole repository, selected through
        # the unified query API (one ranked/sorted result instead of an
        # identifiers() + get() loop).
        result = store.query(sort="identifier")
        clean = 0
        for hit in result.hits:
            stored = normalise_entry(hit.entry)
            if lens.put(lens.get(stored), stored) == stored:
                clean += 1
        print(f"\nround-trip clean for {clean}/{result.total} entries")


if __name__ == "__main__":
    main()
