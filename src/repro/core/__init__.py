"""Core bx formalisms: state-based bx, lenses, delta bx, properties, laws.

This package is the semantic substrate of the repository: every catalogue
example implements one (usually several) of the formalisms defined here,
and every property claim in an entry is checkable through
:mod:`repro.core.laws`.
"""

from repro.core.bx import (
    BijectiveBx,
    Bx,
    DualBx,
    FunctionalBx,
    IdentityBx,
    SpaceCheckedBx,
    TrivialBx,
)
from repro.core.delta import (
    Delete,
    DeltaBx,
    Edit,
    EditScript,
    FunctionalDeltaBx,
    Identity,
    Insert,
    Update,
    diff_sequences,
)
from repro.core.errors import (
    BxError,
    ConsistencyError,
    LawViolation,
    ModelSpaceError,
    TransformationError,
)
from repro.core.laws import (
    CheckConfig,
    CheckReport,
    LawResult,
    check_bx_properties,
    check_lens_laws,
    check_symmetric_laws,
    verify_property_claims,
)
from repro.core.lens import LENS_LAWS, FunctionalLens, IsoLens, Lens
from repro.core.properties import (
    PROPERTY_REGISTRY,
    BxProperty,
    CheckStatus,
    Correct,
    Hippocratic,
    HistoryIgnorant,
    LeastChange,
    PropertyResult,
    SimplyMatching,
    Undoable,
    get_property,
    register_property,
    standard_properties,
)
from repro.core.symmetric import (
    SYMMETRIC_LAWS,
    FunctionalSymmetricLens,
    SymmetricLens,
    symmetric_from_bijection,
)

__all__ = [
    # bx
    "Bx", "FunctionalBx", "BijectiveBx", "DualBx", "SpaceCheckedBx",
    "IdentityBx", "TrivialBx",
    # lenses
    "Lens", "FunctionalLens", "IsoLens", "LENS_LAWS",
    # symmetric
    "SymmetricLens", "FunctionalSymmetricLens", "symmetric_from_bijection",
    "SYMMETRIC_LAWS",
    # delta
    "Edit", "Identity", "Insert", "Delete", "Update", "EditScript",
    "DeltaBx", "FunctionalDeltaBx", "diff_sequences",
    # properties
    "BxProperty", "CheckStatus", "PropertyResult", "Correct", "Hippocratic",
    "Undoable", "HistoryIgnorant", "SimplyMatching", "LeastChange",
    "PROPERTY_REGISTRY", "get_property", "register_property",
    "standard_properties",
    # laws
    "CheckConfig", "CheckReport", "LawResult", "check_lens_laws",
    "check_symmetric_laws", "check_bx_properties", "verify_property_claims",
    # errors
    "BxError", "ModelSpaceError", "TransformationError", "ConsistencyError",
    "LawViolation",
]
