"""Asymmetric lenses: the Boomerang/Foster lineage of bidirectional programs.

The original Composers example (the paper's §4 References) comes from
Boomerang, where a bx is an *asymmetric lens* between a *source* space ``S``
and a *view* space ``V``:

* ``get : S → V`` — extract the view from the source;
* ``put : V × S → S`` — merge an updated view back into the old source;
* ``create : V → S`` — build a source when there is no old one.

The classic laws (checked by :mod:`repro.core.laws`):

* **GetPut**  ``put(get(s), s) == s`` — putting back an unchanged view
  changes nothing (the lens analogue of hippocraticness);
* **PutGet**  ``get(put(v, s)) == v`` — the updated view is reflected
  exactly (the lens analogue of correctness);
* **CreateGet** ``get(create(v)) == v``;
* **PutPut** ``put(v', put(v, s)) == put(v', s)`` — optional; lenses
  satisfying it are *very well behaved*.  Most interesting lenses
  (including Composers) deliberately fail PutPut, which is the paper's
  "undoability is too strong" discussion in lens clothing.

Every lens induces a state-based bx (:meth:`Lens.to_bx`) whose left space is
the source, right space the view, and whose consistency relation is
``get(s) == v``.  The induced bx is correct and hippocratic exactly when the
lens is well behaved, which the test suite exercises (experiment E13).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.core.bx import Bx
from repro.core.errors import TransformationError
from repro.models.space import ModelSpace

__all__ = [
    "Lens",
    "FunctionalLens",
    "IsoLens",
    "LENS_LAWS",
]


class Lens(ABC):
    """An asymmetric lens from a source space to a view space."""

    #: Short name used in reports.
    name: str = "lens"

    #: Space of sources (``S``).
    source_space: ModelSpace

    #: Space of views (``V``).
    view_space: ModelSpace

    @abstractmethod
    def get(self, source: Any) -> Any:
        """Extract the view of ``source``."""

    @abstractmethod
    def put(self, view: Any, source: Any) -> Any:
        """Merge an updated ``view`` into the old ``source``."""

    def create(self, view: Any) -> Any:
        """Build a source from a view alone.

        The default raises; lenses with a sensible default source should
        override.  ``create`` corresponds to Boomerang's missing-source
        ``put`` and is required for the CreateGet law to be checkable.
        """
        raise TransformationError(
            f"lens {self.name!r} does not define create")

    def has_create(self) -> bool:
        """True if this lens implements :meth:`create`.

        Detected by whether :meth:`create` is overridden, so subclasses
        normally need not touch this.
        """
        return type(self).create is not Lens.create

    # ------------------------------------------------------------------
    # Algebra (combinators live in repro.core.combinators; the operators
    # here just delegate so that ``lens1 >> lens2`` reads naturally).
    # ------------------------------------------------------------------

    def compose(self, other: "Lens") -> "Lens":
        """Sequential composition: ``self`` then ``other``.

        The view space of ``self`` must be the source space of ``other``.
        """
        from repro.core.combinators import ComposeLens
        return ComposeLens(self, other)

    def __rshift__(self, other: "Lens") -> "Lens":
        return self.compose(other)

    def product(self, other: "Lens") -> "Lens":
        """Parallel composition on pairs."""
        from repro.core.combinators import ProductLens
        return ProductLens(self, other)

    def __mul__(self, other: "Lens") -> "Lens":
        return self.product(other)

    # ------------------------------------------------------------------
    # Adaptors.
    # ------------------------------------------------------------------

    def to_bx(self, name: str | None = None) -> Bx:
        """View this lens as a state-based bx (source left, view right).

        Consistency is ``get(left) == right``; ``fwd`` discards the stale
        view and recomputes ``get``; ``bwd`` is ``put``.
        """
        return _LensBx(self, name or self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<{type(self).__name__} {self.name!r}: "
                f"{self.source_space.name} => {self.view_space.name}>")


class _LensBx(Bx):
    """The state-based bx induced by an asymmetric lens."""

    def __init__(self, lens: Lens, name: str) -> None:
        self.lens = lens
        self.name = name
        self.left_space = lens.source_space
        self.right_space = lens.view_space

    def consistent(self, left: Any, right: Any) -> bool:
        return self.lens.get(left) == right

    def fwd(self, left: Any, right: Any) -> Any:
        return self.lens.get(left)

    def bwd(self, left: Any, right: Any) -> Any:
        return self.lens.put(right, left)

    def create_left(self, right: Any) -> Any:
        if self.lens.has_create():
            return self.lens.create(right)
        return super().create_left(right)

    def create_right(self, left: Any) -> Any:
        return self.lens.get(left)


class FunctionalLens(Lens):
    """A lens assembled from plain functions; quickest way to define one."""

    def __init__(self, name: str,
                 source_space: ModelSpace, view_space: ModelSpace,
                 get: Callable[[Any], Any],
                 put: Callable[[Any, Any], Any],
                 create: Callable[[Any], Any] | None = None) -> None:
        self.name = name
        self.source_space = source_space
        self.view_space = view_space
        self._get = get
        self._put = put
        self._create = create

    def get(self, source: Any) -> Any:
        return self._get(source)

    def put(self, view: Any, source: Any) -> Any:
        return self._put(view, source)

    def create(self, view: Any) -> Any:
        if self._create is None:
            return super().create(view)
        return self._create(view)

    def has_create(self) -> bool:
        return self._create is not None


class IsoLens(Lens):
    """A lens induced by an isomorphism: ``put`` ignores the old source.

    Iso lenses are very well behaved (they satisfy PutPut).
    """

    def __init__(self, name: str,
                 source_space: ModelSpace, view_space: ModelSpace,
                 forward: Callable[[Any], Any],
                 backward: Callable[[Any], Any]) -> None:
        self.name = name
        self.source_space = source_space
        self.view_space = view_space
        self._forward = forward
        self._backward = backward

    def get(self, source: Any) -> Any:
        return self._forward(source)

    def put(self, view: Any, source: Any) -> Any:
        return self._backward(view)

    def create(self, view: Any) -> Any:
        return self._backward(view)

    def inverse(self) -> "IsoLens":
        """The same isomorphism pointed the other way."""
        return IsoLens(f"inverse({self.name})",
                       self.view_space, self.source_space,
                       self._backward, self._forward)


# ----------------------------------------------------------------------
# Law definitions.  Each law is a named predicate over (lens, sampled
# values); the harness in repro.core.laws drives sampling/shrinking.
# The functions return None on success or a counterexample dict on failure.
# ----------------------------------------------------------------------

def _law_get_put(lens: Lens, source: Any, view: Any) -> dict[str, Any] | None:
    """GetPut: put(get(s), s) == s."""
    got = lens.get(source)
    back = lens.put(got, source)
    if back != source:
        return {"source": source, "get(source)": got, "put(get(s), s)": back}
    return None


def _law_put_get(lens: Lens, source: Any, view: Any) -> dict[str, Any] | None:
    """PutGet: get(put(v, s)) == v."""
    merged = lens.put(view, source)
    round_tripped = lens.get(merged)
    if round_tripped != view:
        return {"source": source, "view": view,
                "put(v, s)": merged, "get(put(v, s))": round_tripped}
    return None


def _law_create_get(lens: Lens, source: Any, view: Any) -> dict[str, Any] | None:
    """CreateGet: get(create(v)) == v.  Skipped when create is undefined."""
    if not lens.has_create():
        return None
    created = lens.create(view)
    round_tripped = lens.get(created)
    if round_tripped != view:
        return {"view": view, "create(v)": created,
                "get(create(v))": round_tripped}
    return None


def _law_put_put(lens: Lens, source: Any, view: Any,
                 view2: Any) -> dict[str, Any] | None:
    """PutPut: put(v2, put(v1, s)) == put(v2, s)."""
    once = lens.put(view, source)
    twice = lens.put(view2, once)
    direct = lens.put(view2, source)
    if twice != direct:
        return {"source": source, "view1": view, "view2": view2,
                "put(v2, put(v1, s))": twice, "put(v2, s)": direct}
    return None


#: The classic lens laws: name -> (checker, argument spec).  The argument
#: spec names which samples the harness must draw: "s" a source, "v" a view.
LENS_LAWS: dict[str, tuple[Callable[..., dict[str, Any] | None], str]] = {
    "GetPut": (_law_get_put, "sv"),
    "PutGet": (_law_put_get, "sv"),
    "CreateGet": (_law_create_get, "sv"),
    "PutPut": (_law_put_put, "svv"),
}
