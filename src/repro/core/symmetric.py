"""Symmetric lenses: bidirectional transformations with a complement.

The template (§3) explicitly allows restoration functions that "require as
input extra information"; the canonical state-plus-extra-information
formalism is the *symmetric lens* of Hofmann, Pierce and Wagner: between
spaces ``X`` and ``Y``, with a *complement* set ``C`` holding whatever
private information each side needs that the other does not carry:

* ``putr : X × C → Y × C`` — push a left value rightwards, updating the
  complement;
* ``putl : Y × C → X × C`` — symmetrically;
* ``missing : C`` — the initial complement.

Round-trip laws (checked by :mod:`repro.core.laws`):

* **PutRL** ``putr(x, c) == (y, c')  ⇒  putl(y, c') == (x, c')``
* **PutLR** ``putl(y, c) == (x, c')  ⇒  putr(x, c') == (y, c')``

The complement is exactly what the paper's Composers discussion says is
missing from the state-based version: with a complement remembering deleted
composers' dates, deletion becomes undoable.  The catalogue ships such a
variant (``repro.catalogue.composers.variants.RememberingComposersLens``)
so the undoability contrast can be demonstrated executably.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.core.bx import Bx
from repro.models.space import ModelSpace

__all__ = [
    "SymmetricLens",
    "FunctionalSymmetricLens",
    "ComposeSymmetricLens",
    "symmetric_from_bijection",
    "SYMMETRIC_LAWS",
]


class SymmetricLens(ABC):
    """A symmetric lens between two spaces, mediated by a complement."""

    #: Short name used in reports.
    name: str = "symmetric lens"

    #: Space of left values (``X``).
    left_space: ModelSpace

    #: Space of right values (``Y``).
    right_space: ModelSpace

    @abstractmethod
    def missing(self) -> Any:
        """The initial complement (for synchronising from scratch)."""

    @abstractmethod
    def putr(self, left: Any, complement: Any) -> tuple[Any, Any]:
        """Push ``left`` rightwards; return ``(right, new_complement)``."""

    @abstractmethod
    def putl(self, right: Any, complement: Any) -> tuple[Any, Any]:
        """Push ``right`` leftwards; return ``(left, new_complement)``."""

    # ------------------------------------------------------------------
    # Derived operations.
    # ------------------------------------------------------------------

    def sync_from_left(self, left: Any) -> tuple[Any, Any]:
        """Create a right value and complement from a left value alone."""
        return self.putr(left, self.missing())

    def sync_from_right(self, right: Any) -> tuple[Any, Any]:
        """Create a left value and complement from a right value alone."""
        return self.putl(right, self.missing())

    def compose(self, other: "SymmetricLens") -> "SymmetricLens":
        """Sequential composition; complements pair up."""
        return ComposeSymmetricLens(self, other)

    def __rshift__(self, other: "SymmetricLens") -> "SymmetricLens":
        return self.compose(other)

    def to_bx(self, name: str | None = None) -> Bx:
        """Forget the complement, yielding a state-based bx.

        The resulting bx re-derives a complement from the *authoritative*
        side on every restoration; information kept only in the complement
        (e.g. remembered dates) is therefore lost, which is precisely the
        state-based-vs-symmetric contrast of the paper's Discussion section.
        """
        return _ForgetfulBx(self, name or f"state({self.name})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<{type(self).__name__} {self.name!r}: "
                f"{self.left_space.name} <=> {self.right_space.name}>")


class _ForgetfulBx(Bx):
    """State-based bx obtained by forgetting a symmetric lens's complement."""

    def __init__(self, lens: SymmetricLens, name: str) -> None:
        self.lens = lens
        self.name = name
        self.left_space = lens.left_space
        self.right_space = lens.right_space

    def consistent(self, left: Any, right: Any) -> bool:
        produced, _complement = self.lens.putr(left, self.lens.missing())
        return produced == right

    def fwd(self, left: Any, right: Any) -> Any:
        produced, _complement = self.lens.putr(left, self.lens.missing())
        return produced

    def bwd(self, left: Any, right: Any) -> Any:
        produced, _complement = self.lens.putl(right, self.lens.missing())
        return produced


class FunctionalSymmetricLens(SymmetricLens):
    """A symmetric lens assembled from plain functions."""

    def __init__(self, name: str,
                 left_space: ModelSpace, right_space: ModelSpace,
                 missing: Callable[[], Any],
                 putr: Callable[[Any, Any], tuple[Any, Any]],
                 putl: Callable[[Any, Any], tuple[Any, Any]]) -> None:
        self.name = name
        self.left_space = left_space
        self.right_space = right_space
        self._missing = missing
        self._putr = putr
        self._putl = putl

    def missing(self) -> Any:
        return self._missing()

    def putr(self, left: Any, complement: Any) -> tuple[Any, Any]:
        return self._putr(left, complement)

    def putl(self, right: Any, complement: Any) -> tuple[Any, Any]:
        return self._putl(right, complement)


class ComposeSymmetricLens(SymmetricLens):
    """Sequential composition of symmetric lenses; complements are paired."""

    def __init__(self, first: SymmetricLens, second: SymmetricLens) -> None:
        self.first = first
        self.second = second
        self.name = f"({first.name} ; {second.name})"
        self.left_space = first.left_space
        self.right_space = second.right_space

    def missing(self) -> tuple[Any, Any]:
        return (self.first.missing(), self.second.missing())

    def putr(self, left: Any, complement: Any) -> tuple[Any, Any]:
        complement_first, complement_second = complement
        middle, new_first = self.first.putr(left, complement_first)
        right, new_second = self.second.putr(middle, complement_second)
        return right, (new_first, new_second)

    def putl(self, right: Any, complement: Any) -> tuple[Any, Any]:
        complement_first, complement_second = complement
        middle, new_second = self.second.putl(right, complement_second)
        left, new_first = self.first.putl(middle, complement_first)
        return left, (new_first, new_second)


def symmetric_from_bijection(name: str,
                             left_space: ModelSpace,
                             right_space: ModelSpace,
                             to_right: Callable[[Any], Any],
                             to_left: Callable[[Any], Any]) -> SymmetricLens:
    """Lift a bijection into a symmetric lens with a trivial complement."""
    return FunctionalSymmetricLens(
        name, left_space, right_space,
        missing=lambda: None,
        putr=lambda left, _c: (to_right(left), None),
        putl=lambda right, _c: (to_left(right), None),
    )


# ----------------------------------------------------------------------
# Law definitions for the harness.  Each returns None (pass) or a
# counterexample dict.  Argument spec "xc" = draw a left value and a
# complement-producing left value; laws synthesise complements by pushing
# sampled values through the lens, so arbitrary complements never arise.
# ----------------------------------------------------------------------

def _law_put_rl(lens: SymmetricLens, left: Any,
                seed_left: Any) -> dict[str, Any] | None:
    """PutRL: after putr, putl with the produced pair is the identity."""
    _seed_right, complement = lens.putr(seed_left, lens.missing())
    right, complement2 = lens.putr(left, complement)
    back_left, complement3 = lens.putl(right, complement2)
    if back_left != left or complement3 != complement2:
        return {"left": left, "complement": complement,
                "right": right, "putl result": back_left,
                "complement after putr": complement2,
                "complement after putl": complement3}
    return None


def _law_put_lr(lens: SymmetricLens, right: Any,
                seed_right: Any) -> dict[str, Any] | None:
    """PutLR: after putl, putr with the produced pair is the identity."""
    _seed_left, complement = lens.putl(seed_right, lens.missing())
    left, complement2 = lens.putl(right, complement)
    back_right, complement3 = lens.putr(left, complement2)
    if back_right != right or complement3 != complement2:
        return {"right": right, "complement": complement,
                "left": left, "putr result": back_right,
                "complement after putl": complement2,
                "complement after putr": complement3}
    return None


#: Symmetric lens round-trip laws: name -> (checker, argument spec).
#: Spec "ll" draws two left values; "rr" two right values.
SYMMETRIC_LAWS: dict[str, tuple[Callable[..., dict[str, Any] | None], str]] = {
    "PutRL": (_law_put_rl, "ll"),
    "PutLR": (_law_put_lr, "rr"),
}
