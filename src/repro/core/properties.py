"""Machine-checkable bx properties (the template's ``Properties?`` field).

The template says property names "will link to a separate glossary of terms
such as 'hippocraticness'".  Here each glossary term is an object carrying

* its name and glossary definition (rendered by
  :mod:`repro.repository.glossary`), and
* a ``check`` method that hunts for counterexamples over a bx's model
  spaces, returning structured evidence.

This mechanises the repository's reviewer role for property claims: an entry
*claims* ``Correct``/``Hippocratic``/...; the harness *verifies* (or
refutes) each claim.  The Composers example (§4) claims::

    Correct, Hippocratic, Not undoable, Simply matching

and experiments E3–E6 check exactly these.

Definitions follow Stevens, *A Landscape of Bidirectional Model
Transformations* (the paper's reference [12]); for a bx
``(R, fwd, bwd)`` between spaces ``M`` and ``N``:

correct
    Restoration really restores consistency: ``R(m, fwd(m, n))`` and
    ``R(bwd(m, n), n)`` for all ``m``, ``n``.
hippocratic
    "First, do no harm": if ``R(m, n)`` already holds then
    ``fwd(m, n) == n`` and ``bwd(m, n) == m``.
undoable
    Doing and undoing a change on the authoritative side returns the other
    side to its original state: whenever ``R(m, n)``, for any ``m'``,
    ``fwd(m, fwd(m', n)) == n`` (and dually).  The paper's Discussion
    section explains why Composers fails this (deleted dates cannot be
    restored) — the check below finds such witnesses automatically.
history ignorant
    Stronger than undoable: ``fwd(m2, fwd(m1, n)) == fwd(m2, n)`` for all
    ``m1, m2, n`` (the state-based PutPut).
simply matching
    Restoration works purely by *matching* items by key: items whose key
    appears on the authoritative side survive unchanged, items whose key
    does not are deleted, and missing keys are filled in.  Parameterised by
    the bx's key functions (see :class:`MatchingKeys`).
least change (metric)
    Restoration picks a consistent model at minimal distance from the
    stale one, per a supplied metric.  Checked by candidate enumeration on
    finite spaces and by sampled search otherwise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from repro.core.bx import Bx

__all__ = [
    "CheckStatus",
    "PropertyResult",
    "BxProperty",
    "Correct",
    "Hippocratic",
    "Undoable",
    "HistoryIgnorant",
    "SimplyMatching",
    "LeastChange",
    "MatchingKeys",
    "PROPERTY_REGISTRY",
    "get_property",
    "register_property",
    "standard_properties",
]


class CheckStatus(Enum):
    """Outcome of a property check."""

    PASSED = "passed"
    FAILED = "failed"
    SKIPPED = "skipped"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class PropertyResult:
    """Structured evidence from checking one property on one bx."""

    property_name: str
    bx_name: str
    status: CheckStatus
    trials: int = 0
    counterexample: dict[str, Any] | None = None
    note: str = ""

    @property
    def passed(self) -> bool:
        return self.status is CheckStatus.PASSED

    @property
    def failed(self) -> bool:
        return self.status is CheckStatus.FAILED

    def describe(self) -> str:
        """One-line human-readable summary."""
        line = (f"{self.property_name} on {self.bx_name}: "
                f"{self.status.value} ({self.trials} trials)")
        if self.counterexample is not None:
            witness = ", ".join(
                f"{k}={v!r}" for k, v in self.counterexample.items())
            line += f" counterexample: {witness}"
        if self.note:
            line += f" [{self.note}]"
        return line


@runtime_checkable
class MatchingKeys(Protocol):
    """Protocol a bx implements to support the simply-matching check.

    ``key_left(item)`` / ``key_right(item)`` map an *item* of a left/right
    model to its matching key; ``items_left(model)`` / ``items_right(model)``
    decompose a model into its items.  For Composers, items are composers /
    list entries and the key is the (name, nationality) pair.
    """

    def items_left(self, left: Any) -> Iterable[Any]: ...

    def items_right(self, right: Any) -> Iterable[Any]: ...

    def key_left(self, item: Any) -> Any: ...

    def key_right(self, item: Any) -> Any: ...


class BxProperty:
    """Base class for checkable bx properties.

    Subclasses implement :meth:`find_counterexample`, which either returns a
    counterexample dict or None after examining one sampled scenario.  The
    shared :meth:`check` drives sampling and assembles the evidence.
    """

    #: Canonical property name as used in entries, e.g. ``"correct"``.
    name: str = "property"

    #: Glossary definition (plain English, rendered by the glossary module).
    definition: str = ""

    def check(self, bx: Bx, trials: int = 200,
              seed: int = 0) -> PropertyResult:
        """Hunt for a counterexample over ``trials`` sampled scenarios."""
        rng = random.Random(seed)
        for trial in range(trials):
            witness = self.find_counterexample(bx, rng)
            if witness is not None:
                return PropertyResult(self.name, bx.name, CheckStatus.FAILED,
                                      trials=trial + 1, counterexample=witness)
        return PropertyResult(self.name, bx.name, CheckStatus.PASSED,
                              trials=trials)

    def find_counterexample(self, bx: Bx,
                            rng: random.Random) -> dict[str, Any] | None:
        """Examine one sampled scenario; return a witness dict on failure."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BxProperty {self.name!r}>"


class Correct(BxProperty):
    """Correctness: restoration really does restore consistency."""

    name = "correct"
    definition = (
        "Consistency restoration establishes the consistency relation: "
        "for all m, n, the pair (m, fwd(m, n)) is consistent, and so is "
        "(bwd(m, n), n).")

    def find_counterexample(self, bx: Bx,
                            rng: random.Random) -> dict[str, Any] | None:
        left, right = bx.sample_pair(rng)
        restored_right = bx.fwd(left, right)
        if not bx.consistent(left, restored_right):
            return {"direction": "fwd", "left": left, "right": right,
                    "fwd(left, right)": restored_right}
        restored_left = bx.bwd(left, right)
        if not bx.consistent(restored_left, right):
            return {"direction": "bwd", "left": left, "right": right,
                    "bwd(left, right)": restored_left}
        return None


class Hippocratic(BxProperty):
    """Hippocraticness: consistent pairs are left completely alone."""

    name = "hippocratic"
    definition = (
        "If models are already consistent, restoration changes nothing: "
        "R(m, n) implies fwd(m, n) == n and bwd(m, n) == m.  (\"First, do "
        "no harm.\")")

    def find_counterexample(self, bx: Bx,
                            rng: random.Random) -> dict[str, Any] | None:
        left, right = bx.sample_consistent_pair(rng)
        if not bx.consistent(left, right):
            # fwd failed to produce a consistent pair: a correctness failure
            # that makes hippocraticness unobservable for this sample.
            return {"note": "could not build a consistent pair",
                    "left": left, "right": right}
        restored_right = bx.fwd(left, right)
        if restored_right != right:
            return {"direction": "fwd", "left": left, "right": right,
                    "fwd(left, right)": restored_right}
        restored_left = bx.bwd(left, right)
        if restored_left != left:
            return {"direction": "bwd", "left": left, "right": right,
                    "bwd(left, right)": restored_left}
        return None


class Undoable(BxProperty):
    """Undoability: reverting the authoritative side reverts the other.

    For consistent ``(m, n)`` and an arbitrary replacement ``m'``::

        fwd(m, fwd(m', n)) == n          (and dually for bwd)

    The paper uses Composers to argue this "is too strong"; the check below
    reliably finds the delete/re-add witness of the Discussion section.
    """

    name = "undoable"
    definition = (
        "After perturbing one side and restoring, putting the perturbed "
        "side back to its original value and restoring again returns the "
        "other side to its original state: for consistent (m, n) and any "
        "m', fwd(m, fwd(m', n)) == n; dually for bwd.")

    def find_counterexample(self, bx: Bx,
                            rng: random.Random) -> dict[str, Any] | None:
        left, right = bx.sample_consistent_pair(rng)
        if not bx.consistent(left, right):
            return None  # correctness failure; let Correct report it
        perturbed_left = bx.left_space.sample(rng)
        detour = bx.fwd(perturbed_left, right)
        back = bx.fwd(left, detour)
        if back != right:
            return {"direction": "fwd", "left": left, "right": right,
                    "perturbed left": perturbed_left,
                    "fwd(perturbed, right)": detour,
                    "fwd(left, detour)": back}
        perturbed_right = bx.right_space.sample(rng)
        detour_left = bx.bwd(left, perturbed_right)
        back_left = bx.bwd(detour_left, right)
        if back_left != left:
            return {"direction": "bwd", "left": left, "right": right,
                    "perturbed right": perturbed_right,
                    "bwd(left, perturbed)": detour_left,
                    "bwd(detour, right)": back_left}
        return None


class HistoryIgnorant(BxProperty):
    """History ignorance: the last restoration wins (state-based PutPut)."""

    name = "history ignorant"
    definition = (
        "Restoration forgets intermediate states: fwd(m2, fwd(m1, n)) == "
        "fwd(m2, n) for all m1, m2, n (and dually).  Strictly stronger "
        "than undoability for correct, hippocratic bx.")

    def find_counterexample(self, bx: Bx,
                            rng: random.Random) -> dict[str, Any] | None:
        right = bx.right_space.sample(rng)
        left_one = bx.left_space.sample(rng)
        left_two = bx.left_space.sample(rng)
        via = bx.fwd(left_two, bx.fwd(left_one, right))
        direct = bx.fwd(left_two, right)
        if via != direct:
            return {"direction": "fwd", "m1": left_one, "m2": left_two,
                    "n": right, "fwd(m2, fwd(m1, n))": via,
                    "fwd(m2, n)": direct}
        left = bx.left_space.sample(rng)
        right_one = bx.right_space.sample(rng)
        right_two = bx.right_space.sample(rng)
        via_left = bx.bwd(bx.bwd(left, right_one), right_two)
        direct_left = bx.bwd(left, right_two)
        if via_left != direct_left:
            return {"direction": "bwd", "n1": right_one, "n2": right_two,
                    "m": left, "bwd(bwd(m, n1), n2)": via_left,
                    "bwd(m, n2)": direct_left}
        return None


class SimplyMatching(BxProperty):
    """Simple matching: restoration acts purely through key matching.

    Requires the bx (or an explicitly supplied adapter) to implement the
    :class:`MatchingKeys` protocol.  The check asserts, for ``fwd``:

    * every right-item whose key occurs among the left model's keys
      survives restoration unchanged;
    * every right-item whose key does not occur is removed;
    * the restored right model's key set equals the left model's key set;

    and dually for ``bwd``.
    """

    name = "simply matching"
    definition = (
        "Consistency restoration decomposes through a matching of items "
        "by key: matched items are preserved exactly, unmatched items on "
        "the non-authoritative side are deleted, and authoritative keys "
        "with no match are filled in.  (After matching lenses: alignment "
        "is by key, not by position or heuristics.)")

    def __init__(self, keys: MatchingKeys | None = None) -> None:
        self._keys = keys

    def _adapter(self, bx: Bx) -> MatchingKeys | None:
        if self._keys is not None:
            return self._keys
        if isinstance(bx, MatchingKeys):
            return bx
        inner = getattr(bx, "inner", None)
        if inner is not None and isinstance(inner, MatchingKeys):
            return inner
        return None

    def check(self, bx: Bx, trials: int = 200,
              seed: int = 0) -> PropertyResult:
        if self._adapter(bx) is None:
            return PropertyResult(
                self.name, bx.name, CheckStatus.SKIPPED,
                note="bx does not expose matching keys")
        return super().check(bx, trials=trials, seed=seed)

    def find_counterexample(self, bx: Bx,
                            rng: random.Random) -> dict[str, Any] | None:
        keys = self._adapter(bx)
        assert keys is not None  # guarded by check()
        left, right = bx.sample_pair(rng)

        left_keys = {keys.key_left(item) for item in keys.items_left(left)}
        restored = bx.fwd(left, right)
        restored_items = list(keys.items_right(restored))
        restored_set = set(restored_items)
        for item in keys.items_right(right):
            key = keys.key_right(item)
            if key in left_keys and item not in restored_set:
                return {"direction": "fwd", "left": left, "right": right,
                        "matched item dropped or changed": item}
            if key not in left_keys and item in restored_set:
                return {"direction": "fwd", "left": left, "right": right,
                        "unmatched item survived": item}
        restored_keys = {keys.key_right(item) for item in restored_items}
        if restored_keys != left_keys:
            return {"direction": "fwd", "left": left, "right": right,
                    "restored keys": restored_keys,
                    "authoritative keys": left_keys}

        right_keys = {keys.key_right(item) for item in keys.items_right(right)}
        restored_left = bx.bwd(left, right)
        restored_left_items = list(keys.items_left(restored_left))
        restored_left_set = set(restored_left_items)
        for item in keys.items_left(left):
            key = keys.key_left(item)
            if key in right_keys and item not in restored_left_set:
                return {"direction": "bwd", "left": left, "right": right,
                        "matched item dropped or changed": item}
            if key not in right_keys and item in restored_left_set:
                return {"direction": "bwd", "left": left, "right": right,
                        "unmatched item survived": item}
        restored_left_keys = {keys.key_left(item)
                              for item in restored_left_items}
        if restored_left_keys != right_keys:
            return {"direction": "bwd", "left": left, "right": right,
                    "restored keys": restored_left_keys,
                    "authoritative keys": right_keys}
        return None


class LeastChange(BxProperty):
    """Least change: restoration minimises a distance to the stale model.

    Parameterised by ``distance(old, new)`` on right models (and optionally
    on left models).  The check compares the distance achieved by ``fwd``
    against every enumerable (or sampled) consistent alternative and fails
    if a strictly cheaper consistent model exists.

    This property motivates the authors' *Theory of Least Change* project
    (the paper's funding acknowledgement); it is included as the natural
    "extension" property for catalogue entries.
    """

    name = "least change"
    definition = (
        "Among all models consistent with the authoritative side, "
        "restoration returns one at minimal distance from the model being "
        "repaired, for a stated metric on the model space.")

    def __init__(self, right_distance: Callable[[Any, Any], float],
                 left_distance: Callable[[Any, Any], float] | None = None,
                 candidates: int = 50) -> None:
        self.right_distance = right_distance
        self.left_distance = left_distance
        self.candidates = candidates

    def find_counterexample(self, bx: Bx,
                            rng: random.Random) -> dict[str, Any] | None:
        left, right = bx.sample_pair(rng)
        chosen = bx.fwd(left, right)
        achieved = self.right_distance(right, chosen)
        if bx.right_space.is_finite():
            alternatives: Iterable[Any] = bx.right_space.enumerate_members()
        else:
            alternatives = bx.right_space.sample_many(rng, self.candidates)
        for alternative in alternatives:
            if not bx.consistent(left, alternative):
                continue
            cost = self.right_distance(right, alternative)
            if cost < achieved:
                return {"left": left, "right": right, "chosen": chosen,
                        "chosen distance": achieved,
                        "cheaper consistent model": alternative,
                        "cheaper distance": cost}
        return None


#: Global registry of property vocabulary, keyed by canonical name.  The
#: repository glossary and entry validation consult this registry.
PROPERTY_REGISTRY: dict[str, BxProperty] = {}


def register_property(prop: BxProperty) -> BxProperty:
    """Add a property to the global registry (idempotent by name)."""
    PROPERTY_REGISTRY[prop.name] = prop
    return prop


def get_property(name: str) -> BxProperty:
    """Look up a registered property by canonical name.

    Raises KeyError with the known names listed, to make typos in entry
    property claims easy to fix.
    """
    try:
        return PROPERTY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(PROPERTY_REGISTRY))
        raise KeyError(f"unknown property {name!r}; known: {known}") from None


def standard_properties() -> list[BxProperty]:
    """The properties checked by default on catalogue examples."""
    return [PROPERTY_REGISTRY[name]
            for name in ("correct", "hippocratic", "undoable",
                         "history ignorant", "simply matching")]


register_property(Correct())
register_property(Hippocratic())
register_property(Undoable())
register_property(HistoryIgnorant())
register_property(SimplyMatching())
