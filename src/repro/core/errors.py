"""Exception hierarchy for the bx-repository library.

Every error raised by this library derives from :class:`BxError`, so client
code can catch a single base class.  The hierarchy mirrors the major
subsystems: model spaces, bx semantics, law checking, and the repository.
"""

from __future__ import annotations

from typing import Any


class BxError(Exception):
    """Base class for all errors raised by the bx-repository library."""


class ModelSpaceError(BxError):
    """A value was used with a model space it does not belong to."""

    def __init__(self, space: Any, value: Any, reason: str = "") -> None:
        self.space = space
        self.value = value
        self.reason = reason
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"value {value!r} is not a member of model space {space!r}{detail}"
        )


class MetamodelError(BxError):
    """A model does not conform to its metamodel."""


class TransformationError(BxError):
    """A consistency-restoration function failed to produce a result."""


class ConsistencyError(BxError):
    """A pair of models expected to be consistent is not (or vice versa)."""

    def __init__(self, left: Any, right: Any, message: str = "") -> None:
        self.left = left
        self.right = right
        super().__init__(
            message or f"models are not consistent: {left!r} / {right!r}"
        )


class LawViolation(BxError):
    """A bx law (lens law or bx property) failed, with a counterexample.

    Attributes:
        law: the name of the violated law (e.g. ``"GetPut"``).
        counterexample: a mapping of variable names to the witnessing values.
    """

    def __init__(self, law: str, counterexample: dict[str, Any], message: str = "") -> None:
        self.law = law
        self.counterexample = dict(counterexample)
        witness = ", ".join(f"{k}={v!r}" for k, v in self.counterexample.items())
        super().__init__(message or f"law {law} violated with {witness}")


class EditError(BxError):
    """An edit could not be applied to a model."""


class RepositoryError(BxError):
    """Base class for repository-level errors (curation, storage, citation)."""


class TemplateError(RepositoryError):
    """An example entry does not conform to the repository template."""


class ValidationError(TemplateError):
    """An entry failed template validation.

    Carries the full list of problems so callers can report all of them at
    once instead of fixing one at a time.
    """

    def __init__(self, problems: list[str]) -> None:
        self.problems = list(problems)
        super().__init__("entry validation failed:\n" + "\n".join(f"- {p}" for p in problems))


class CurationError(RepositoryError):
    """An operation violated the curation workflow (roles, review states)."""


class PermissionDenied(CurationError):
    """The acting user's role does not permit the attempted operation."""

    def __init__(self, actor: Any, operation: str, required: str) -> None:
        self.actor = actor
        self.operation = operation
        self.required = required
        super().__init__(
            f"{actor!r} may not {operation}: requires role {required}"
        )


class VersioningError(RepositoryError):
    """An operation violated version sequencing rules."""


class StorageError(RepositoryError):
    """The backing store could not complete an operation."""


class BackendUnavailableError(StorageError):
    """The backing store is temporarily unreachable or refusing work.

    Raised for connection-level failures (refused/reset/timed-out
    sockets on the HTTP transport), by an overloaded server shedding
    load, and by a circuit breaker that is failing fast.  ``retry_after``
    carries the server's ``Retry-After`` hint (seconds) when one was
    given, so retry policies can pace themselves off it.
    """

    def __init__(self, message: str, *, retry_after: float | None = None) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class CircuitOpenError(BackendUnavailableError):
    """A circuit breaker is open: the call was refused without being tried."""


class DeadlineExceeded(StorageError):
    """An operation's deadline expired before it completed.

    Deadlines are cooperative (see :mod:`repro.repository.resilience`):
    layers check the ambient deadline before and during work and fail
    fast with this error instead of stalling the caller.
    """


class EntryNotFound(StorageError):
    """No entry exists under the requested identifier (or version)."""

    def __init__(self, identifier: str, version: str | None = None) -> None:
        self.identifier = identifier
        self.version = version
        at = f" at version {version}" if version is not None else ""
        super().__init__(f"no entry {identifier!r}{at}")


class DuplicateEntry(StorageError):
    """An entry with the same stable identifier already exists."""

    def __init__(self, identifier: str) -> None:
        self.identifier = identifier
        super().__init__(f"entry {identifier!r} already exists")


class CitationError(RepositoryError):
    """A citation could not be produced (missing fields, unknown style)."""


class WikiSyncError(RepositoryError):
    """The wiki-markup synchronisation bx failed to parse or render."""
