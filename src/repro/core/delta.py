"""Delta-based (edit-based) bidirectional transformations.

The template (§3) allows restoration functions that "require as input extra
information, e.g. concerning the edit that has been done".  This module
provides that flavour of bx:

* :class:`Edit` — a first-class, invertible-where-possible description of a
  change to a model (insert, delete, update, move, composite scripts);
* :class:`EditScript` — a sequence of edits applied in order;
* :class:`DeltaBx` — a bx whose propagation functions consume *edits*, not
  states: ``propagate_fwd(edit_on_left, left, right) -> edit_on_right``.

Edit-based propagation is what makes the Composers deletion scenario
*undoable*: a delete edit can carry enough information (the deleted
composer, dates included) for its inverse to restore the original state,
where state-based restoration provably cannot (the paper's Discussion
section; experiment E5).

The module also supplies :func:`diff_sequences`, a small longest-common-
subsequence differ used to recover an edit script from a state pair — the
bridge from state-based to delta-based operation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.bx import Bx
from repro.core.errors import EditError
from repro.models.space import ModelSpace

__all__ = [
    "Edit",
    "Identity",
    "Insert",
    "Delete",
    "Update",
    "EditScript",
    "DeltaBx",
    "FunctionalDeltaBx",
    "diff_sequences",
]


class Edit(ABC):
    """An edit: a function from models to models, with optional inverse.

    Edits are immutable values.  ``apply`` must not mutate its argument;
    models throughout the library are immutable (tuples, frozen dataclasses).
    """

    @abstractmethod
    def apply(self, model: Any) -> Any:
        """Apply this edit to ``model``, returning the edited model."""

    def inverse(self, model_before: Any) -> "Edit":
        """An edit undoing this one, given the pre-state it was applied to.

        The pre-state parameter lets destructive edits (delete) reconstruct
        what they destroyed.  Raises :class:`EditError` if no inverse exists.
        """
        raise EditError(f"edit {self!r} has no inverse")

    def then(self, other: "Edit") -> "EditScript":
        """Sequence this edit before ``other``."""
        return EditScript([self, other])


@dataclass(frozen=True)
class Identity(Edit):
    """The no-op edit."""

    def apply(self, model: Any) -> Any:
        return model

    def inverse(self, model_before: Any) -> Edit:
        return Identity()


@dataclass(frozen=True)
class Insert(Edit):
    """Insert ``item`` at ``position`` into a sequence model (tuple)."""

    position: int
    item: Any

    def apply(self, model: Any) -> Any:
        items = list(model)
        if not 0 <= self.position <= len(items):
            raise EditError(
                f"insert position {self.position} out of range for "
                f"length {len(items)}")
        items.insert(self.position, self.item)
        return tuple(items)

    def inverse(self, model_before: Any) -> Edit:
        return Delete(self.position)


@dataclass(frozen=True)
class Delete(Edit):
    """Delete the element at ``position`` from a sequence model."""

    position: int

    def apply(self, model: Any) -> Any:
        items = list(model)
        if not 0 <= self.position < len(items):
            raise EditError(
                f"delete position {self.position} out of range for "
                f"length {len(items)}")
        del items[self.position]
        return tuple(items)

    def inverse(self, model_before: Any) -> Edit:
        items = list(model_before)
        if not 0 <= self.position < len(items):
            raise EditError("pre-state does not match delete position")
        return Insert(self.position, items[self.position])


@dataclass(frozen=True)
class Update(Edit):
    """Replace the element at ``position`` with ``item``."""

    position: int
    item: Any

    def apply(self, model: Any) -> Any:
        items = list(model)
        if not 0 <= self.position < len(items):
            raise EditError(
                f"update position {self.position} out of range for "
                f"length {len(items)}")
        items[self.position] = self.item
        return tuple(items)

    def inverse(self, model_before: Any) -> Edit:
        items = list(model_before)
        if not 0 <= self.position < len(items):
            raise EditError("pre-state does not match update position")
        return Update(self.position, items[self.position])


@dataclass(frozen=True)
class EditScript(Edit):
    """A sequence of edits applied left to right."""

    edits: tuple[Edit, ...] = ()

    def __init__(self, edits: Sequence[Edit] = ()) -> None:
        # Flatten nested scripts so equality and inversion are structural.
        flat: list[Edit] = []
        for edit in edits:
            if isinstance(edit, EditScript):
                flat.extend(edit.edits)
            elif not isinstance(edit, Identity):
                flat.append(edit)
        object.__setattr__(self, "edits", tuple(flat))

    def apply(self, model: Any) -> Any:
        current = model
        for edit in self.edits:
            current = edit.apply(current)
        return current

    def inverse(self, model_before: Any) -> Edit:
        inverses: list[Edit] = []
        current = model_before
        for edit in self.edits:
            inverses.append(edit.inverse(current))
            current = edit.apply(current)
        inverses.reverse()
        return EditScript(inverses)

    def __len__(self) -> int:
        return len(self.edits)

    def is_identity(self) -> bool:
        return not self.edits


def diff_sequences(old: Sequence[Any], new: Sequence[Any]) -> EditScript:
    """Compute an edit script turning ``old`` into ``new``.

    Uses a longest-common-subsequence alignment, so the script touches only
    genuinely changed positions.  The returned script applies cleanly to
    ``tuple(old)`` and yields ``tuple(new)``; positions are expressed against
    the successively edited sequence, not the original.
    """
    old_items = list(old)
    new_items = list(new)
    rows = len(old_items)
    cols = len(new_items)
    # lcs[i][j] = LCS length of old[i:], new[j:].
    lcs = [[0] * (cols + 1) for _ in range(rows + 1)]
    for i in range(rows - 1, -1, -1):
        for j in range(cols - 1, -1, -1):
            if old_items[i] == new_items[j]:
                lcs[i][j] = lcs[i + 1][j + 1] + 1
            else:
                lcs[i][j] = max(lcs[i + 1][j], lcs[i][j + 1])

    edits: list[Edit] = []
    i = j = 0
    position = 0  # position in the partially edited sequence
    while i < rows and j < cols:
        if old_items[i] == new_items[j]:
            i += 1
            j += 1
            position += 1
        elif lcs[i + 1][j] >= lcs[i][j + 1]:
            edits.append(Delete(position))
            i += 1
        else:
            edits.append(Insert(position, new_items[j]))
            j += 1
            position += 1
    while i < rows:
        edits.append(Delete(position))
        i += 1
    while j < cols:
        edits.append(Insert(position, new_items[j]))
        j += 1
        position += 1
    return EditScript(edits)


class DeltaBx(ABC):
    """An edit-based bx: propagation consumes and produces edits.

    ``propagate_fwd(edit, left, right)`` receives an edit performed on the
    *left* model (with both pre-states available) and must return the
    corresponding edit on the right model.  ``propagate_bwd`` is dual.

    The key delta-bx law, **round-trip stability**, says propagating an edit
    and then propagating its inverse returns both models to their original
    states — precisely the undoability the state-based Composers bx lacks.
    """

    #: Short name used in reports.
    name: str = "delta bx"

    left_space: ModelSpace
    right_space: ModelSpace

    @abstractmethod
    def consistent(self, left: Any, right: Any) -> bool:
        """The underlying consistency relation, as for state-based bx."""

    @abstractmethod
    def propagate_fwd(self, edit: Edit, left: Any, right: Any) -> Edit:
        """Translate a left-edit into a right-edit.

        ``left`` and ``right`` are the models *before* the edit; callers
        apply the returned edit to ``right`` themselves.
        """

    @abstractmethod
    def propagate_bwd(self, edit: Edit, left: Any, right: Any) -> Edit:
        """Translate a right-edit into a left-edit (pre-state convention)."""

    def create_left(self, right: Any) -> Any:
        """A left model consistent with ``right``, built from scratch.

        Needed by :meth:`to_state_bx` to reconstruct the baseline
        consistent pair a state-based caller does not supply.
        """
        raise EditError(
            f"delta bx {self.name!r} does not define create_left")

    def create_right(self, left: Any) -> Any:
        """A right model consistent with ``left``; dual of create_left."""
        raise EditError(
            f"delta bx {self.name!r} does not define create_right")

    def step_fwd(self, edit: Edit, left: Any,
                 right: Any) -> tuple[Any, Any]:
        """Apply a left-edit and its propagation; return the new pair."""
        new_left = edit.apply(left)
        right_edit = self.propagate_fwd(edit, left, right)
        return new_left, right_edit.apply(right)

    def step_bwd(self, edit: Edit, left: Any,
                 right: Any) -> tuple[Any, Any]:
        """Apply a right-edit and its propagation; return the new pair."""
        new_right = edit.apply(right)
        left_edit = self.propagate_bwd(edit, left, right)
        return left_edit.apply(left), new_right

    def to_state_bx(self, differ: Callable[[Any, Any], Edit] | None = None,
                    name: str | None = None) -> Bx:
        """Derive a state-based bx by diffing states into edits.

        ``differ(old, new)`` must produce an edit turning ``old`` into
        ``new``; by default :func:`diff_sequences` is used, which assumes
        sequence models.
        """
        return _DiffingBx(self, differ or diff_sequences,
                          name or f"diffed({self.name})")


class _DiffingBx(Bx):
    """State-based facade over a delta bx, via a differ."""

    def __init__(self, delta: DeltaBx, differ: Callable[[Any, Any], Edit],
                 name: str) -> None:
        self.delta = delta
        self.differ = differ
        self.name = name
        self.left_space = delta.left_space
        self.right_space = delta.right_space

    def consistent(self, left: Any, right: Any) -> bool:
        return self.delta.consistent(left, right)

    def fwd(self, left: Any, right: Any) -> Any:
        # Reconstruct "what happened on the left" as a diff against a
        # left baseline consistent with the current right, then propagate
        # that reconstructed edit onto the right model.
        if self.delta.consistent(left, right):
            return right
        baseline_left = self.delta.create_left(right)
        edit = self.differ(baseline_left, left)
        right_edit = self.delta.propagate_fwd(edit, baseline_left, right)
        return right_edit.apply(right)

    def bwd(self, left: Any, right: Any) -> Any:
        if self.delta.consistent(left, right):
            return left
        baseline_right = self.delta.create_right(left)
        edit = self.differ(baseline_right, right)
        left_edit = self.delta.propagate_bwd(edit, left, baseline_right)
        return left_edit.apply(left)


class FunctionalDeltaBx(DeltaBx):
    """A delta bx assembled from plain functions."""

    def __init__(self, name: str,
                 left_space: ModelSpace, right_space: ModelSpace,
                 consistent: Callable[[Any, Any], bool],
                 propagate_fwd: Callable[[Edit, Any, Any], Edit],
                 propagate_bwd: Callable[[Edit, Any, Any], Edit],
                 create_left: Callable[[Any], Any] | None = None,
                 create_right: Callable[[Any], Any] | None = None) -> None:
        self.name = name
        self.left_space = left_space
        self.right_space = right_space
        self._consistent = consistent
        self._propagate_fwd = propagate_fwd
        self._propagate_bwd = propagate_bwd
        self._create_left = create_left
        self._create_right = create_right

    def consistent(self, left: Any, right: Any) -> bool:
        return bool(self._consistent(left, right))

    def propagate_fwd(self, edit: Edit, left: Any, right: Any) -> Edit:
        return self._propagate_fwd(edit, left, right)

    def propagate_bwd(self, edit: Edit, left: Any, right: Any) -> Edit:
        return self._propagate_bwd(edit, left, right)

    def create_left(self, right: Any) -> Any:
        if self._create_left is None:
            return super().create_left(right)
        return self._create_left(right)

    def create_right(self, left: Any) -> Any:
        if self._create_right is None:
            return super().create_right(left)
        return self._create_right(left)
