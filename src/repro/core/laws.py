"""The law-checking harness: randomized verification with shrinking.

This is the executable form of the repository's review process for property
claims.  Given a lens, symmetric lens, or state-based bx, the harness

1. draws seeded pseudo-random samples from the artefact's model spaces,
2. evaluates each law/property, collecting counterexamples,
3. *shrinks* counterexamples structurally (dropping tuple elements,
   shortening strings) so the reported witness is close to minimal, and
4. assembles a :class:`CheckReport` that can be rendered for EXPERIMENTS.md
   or asserted on in tests.

For finite spaces the harness upgrades to exhaustive checking automatically
(``CheckConfig.exhaustive_limit``).

The harness never raises on law failure unless asked
(:meth:`CheckReport.raise_on_failure`); failing evidence is data, because
for the repository a *refuted* claim (Composers is **not** undoable) is as
important as a verified one.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.core.bx import Bx
from repro.core.errors import LawViolation
from repro.core.lens import LENS_LAWS, Lens
from repro.core.properties import (
    BxProperty,
    CheckStatus,
    PropertyResult,
    standard_properties,
)
from repro.core.symmetric import SYMMETRIC_LAWS, SymmetricLens
from repro.models.space import ModelSpace

__all__ = [
    "CheckConfig",
    "LawResult",
    "CheckReport",
    "check_lens_laws",
    "check_symmetric_laws",
    "check_bx_properties",
    "verify_property_claims",
    "shrink_value",
]


@dataclass(frozen=True)
class CheckConfig:
    """Knobs for a checking run.

    Attributes:
        trials: number of random scenarios per law.
        seed: RNG seed; identical configs give identical runs.
        shrink: whether to minimise counterexamples before reporting.
        max_shrink_steps: cap on shrinking work per counterexample.
        exhaustive_limit: if the relevant space product is finite and at
            most this many scenarios, check every scenario instead of
            sampling.
    """

    trials: int = 200
    seed: int = 0
    shrink: bool = True
    max_shrink_steps: int = 400
    exhaustive_limit: int = 4096


@dataclass
class LawResult:
    """Outcome of checking a single law on a single artefact."""

    law: str
    subject: str
    status: CheckStatus
    trials: int = 0
    counterexample: dict[str, Any] | None = None
    exhaustive: bool = False
    note: str = ""

    @property
    def passed(self) -> bool:
        return self.status is CheckStatus.PASSED

    @property
    def failed(self) -> bool:
        return self.status is CheckStatus.FAILED

    def describe(self) -> str:
        mode = "exhaustive" if self.exhaustive else f"{self.trials} trials"
        line = f"{self.law} on {self.subject}: {self.status.value} ({mode})"
        if self.counterexample:
            witness = ", ".join(
                f"{k}={v!r}" for k, v in self.counterexample.items())
            line += f" counterexample: {witness}"
        if self.note:
            line += f" [{self.note}]"
        return line


@dataclass
class CheckReport:
    """A collection of law results with summary helpers."""

    subject: str
    results: list[LawResult] = field(default_factory=list)

    def add(self, result: LawResult) -> None:
        self.results.append(result)

    @property
    def all_passed(self) -> bool:
        return all(r.status is not CheckStatus.FAILED for r in self.results)

    @property
    def failures(self) -> list[LawResult]:
        return [r for r in self.results if r.failed]

    def result_for(self, law: str) -> LawResult:
        """The result for a named law; raises KeyError if absent."""
        for result in self.results:
            if result.law == law:
                return result
        raise KeyError(f"no result for law {law!r} in report on "
                       f"{self.subject!r}")

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [f"law report for {self.subject}:"]
        lines.extend("  " + result.describe() for result in self.results)
        verdict = "ALL LAWS HOLD" if self.all_passed else \
            f"{len(self.failures)} LAW(S) VIOLATED"
        lines.append(f"  => {verdict}")
        return "\n".join(lines)

    def raise_on_failure(self) -> None:
        """Raise :class:`LawViolation` for the first failed law, if any."""
        for result in self.results:
            if result.failed:
                raise LawViolation(result.law, result.counterexample or {},
                                   result.describe())


# ----------------------------------------------------------------------
# Structural shrinking.
# ----------------------------------------------------------------------

def _shrink_candidates(value: Any) -> Iterator[Any]:
    """Yield structurally smaller variants of ``value`` (one step)."""
    if isinstance(value, tuple) and value:
        for index in range(len(value)):
            yield value[:index] + value[index + 1:]
        for index, item in enumerate(value):
            for smaller in _shrink_candidates(item):
                yield value[:index] + (smaller,) + value[index + 1:]
    elif isinstance(value, str) and value:
        yield ""
        if len(value) > 1:
            yield value[:len(value) // 2]
            yield value[1:]
            yield value[:-1]
    elif isinstance(value, int) and not isinstance(value, bool) and value:
        yield 0
        if abs(value) > 1:
            yield value // 2
    elif isinstance(value, frozenset) and value:
        for item in value:
            yield value - {item}


def shrink_value(value: Any, space: ModelSpace,
                 still_fails: Callable[[Any], bool],
                 max_steps: int = 400) -> Any:
    """Greedily shrink ``value`` while membership and failure both persist.

    ``still_fails(candidate)`` must re-run the failing law with the
    candidate substituted.  Exceptions inside ``still_fails`` are treated as
    "does not reproduce" so shrinking never converts one bug into another.
    """
    current = value
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _shrink_candidates(current):
            steps += 1
            if steps >= max_steps:
                break
            if not space.contains(candidate):
                continue
            try:
                reproduces = still_fails(candidate)
            except Exception:  # noqa: BLE001 - a crashing shrink candidate does not reproduce the original failure
                continue
            if reproduces:
                current = candidate
                improved = True
                break
    return current


# ----------------------------------------------------------------------
# Lens laws.
# ----------------------------------------------------------------------

def _spaces_for_spec(lens: Lens, spec: str) -> list[ModelSpace]:
    mapping = {"s": lens.source_space, "v": lens.view_space}
    return [mapping[ch] for ch in spec]


def _scenarios(spaces: Sequence[ModelSpace],
               config: CheckConfig) -> tuple[Iterable[tuple], bool]:
    """Either every scenario (finite, small) or a sampled stream."""
    if all(space.is_finite() for space in spaces):
        members = [list(space.enumerate_members()) for space in spaces]
        total = 1
        for column in members:
            total *= len(column)
        if total <= config.exhaustive_limit:
            return itertools.product(*members), True
    rng = random.Random(config.seed)

    def _stream() -> Iterator[tuple]:
        for _ in range(config.trials):
            yield tuple(space.sample(rng) for space in spaces)

    return _stream(), False


def _shrink_witness(witness: dict[str, Any], args: tuple,
                    spaces: Sequence[ModelSpace],
                    rerun: Callable[[tuple], dict[str, Any] | None],
                    config: CheckConfig) -> dict[str, Any]:
    """Shrink each argument of a failing scenario independently."""
    if not config.shrink:
        return witness
    current = list(args)
    for position, space in enumerate(spaces):
        def _still_fails(candidate: Any, position: int = position) -> bool:
            trial = list(current)
            trial[position] = candidate
            return rerun(tuple(trial)) is not None

        current[position] = shrink_value(
            current[position], space, _still_fails,
            max_steps=config.max_shrink_steps)
    final = rerun(tuple(current))
    return final if final is not None else witness


def check_lens_laws(lens: Lens, laws: Sequence[str] | None = None,
                    config: CheckConfig | None = None) -> CheckReport:
    """Check the classic lens laws on ``lens``.

    ``laws`` defaults to all of GetPut, PutGet, CreateGet, PutPut.  Note
    that a PutPut failure does not make a lens ill-behaved — it only means
    the lens is not *very* well behaved; interpret reports accordingly.
    """
    config = config or CheckConfig()
    report = CheckReport(subject=lens.name)
    for law_name in laws or list(LENS_LAWS):
        checker, spec = LENS_LAWS[law_name]
        spaces = _spaces_for_spec(lens, spec)
        scenarios, exhaustive = _scenarios(spaces, config)

        def _rerun(args: tuple, checker=checker) -> dict[str, Any] | None:
            return checker(lens, *args)

        failure: dict[str, Any] | None = None
        trials = 0
        for args in scenarios:
            trials += 1
            try:
                witness = checker(lens, *args)
            except Exception as exc:  # noqa: BLE001 - a crashing checker IS the counterexample; recorded as the witness
                witness = {"args": args, "exception": repr(exc)}
                failure = witness
                break
            if witness is not None:
                failure = _shrink_witness(witness, args, spaces, _rerun,
                                          config)
                break
        status = CheckStatus.FAILED if failure else CheckStatus.PASSED
        report.add(LawResult(law_name, lens.name, status, trials=trials,
                             counterexample=failure, exhaustive=exhaustive))
    return report


# ----------------------------------------------------------------------
# Symmetric lens laws.
# ----------------------------------------------------------------------

def check_symmetric_laws(lens: SymmetricLens,
                         laws: Sequence[str] | None = None,
                         config: CheckConfig | None = None) -> CheckReport:
    """Check the symmetric-lens round-trip laws (PutRL, PutLR)."""
    config = config or CheckConfig()
    report = CheckReport(subject=lens.name)
    space_map = {"l": lens.left_space, "r": lens.right_space}
    for law_name in laws or list(SYMMETRIC_LAWS):
        checker, spec = SYMMETRIC_LAWS[law_name]
        spaces = [space_map[ch] for ch in spec]
        scenarios, exhaustive = _scenarios(spaces, config)

        def _rerun(args: tuple, checker=checker) -> dict[str, Any] | None:
            return checker(lens, *args)

        failure: dict[str, Any] | None = None
        trials = 0
        for args in scenarios:
            trials += 1
            try:
                witness = checker(lens, *args)
            except Exception as exc:  # noqa: BLE001 - a crashing checker IS the counterexample; recorded as the witness
                witness = {"args": args, "exception": repr(exc)}
                failure = witness
                break
            if witness is not None:
                failure = _shrink_witness(witness, args, spaces, _rerun,
                                          config)
                break
        status = CheckStatus.FAILED if failure else CheckStatus.PASSED
        report.add(LawResult(law_name, lens.name, status, trials=trials,
                             counterexample=failure, exhaustive=exhaustive))
    return report


# ----------------------------------------------------------------------
# State-based bx properties.
# ----------------------------------------------------------------------

def check_bx_properties(bx: Bx,
                        properties: Sequence[BxProperty] | None = None,
                        config: CheckConfig | None = None) -> CheckReport:
    """Check a suite of properties on a state-based bx.

    Defaults to :func:`repro.core.properties.standard_properties`.  The bx
    is wrapped in a space-membership checker first, so type confusion
    surfaces as an explicit error rather than a bogus pass.
    """
    config = config or CheckConfig()
    checked = bx.checked()
    report = CheckReport(subject=bx.name)
    for prop in properties or standard_properties():
        outcome: PropertyResult = prop.check(checked, trials=config.trials,
                                             seed=config.seed)
        report.add(LawResult(outcome.property_name, bx.name, outcome.status,
                             trials=outcome.trials,
                             counterexample=outcome.counterexample,
                             note=outcome.note))
    return report


def verify_property_claims(bx: Bx, claims: dict[str, bool],
                           config: CheckConfig | None = None,
                           extra_properties: dict[str, BxProperty]
                           | None = None) -> CheckReport:
    """Verify an entry's property claims against measured behaviour.

    ``claims`` maps property names to the claimed truth value, e.g. the
    Composers entry claims ``{"correct": True, "hippocratic": True,
    "undoable": False, "simply matching": True}``.  A claim of ``False``
    is verified by *finding* a counterexample (the randomized check must
    FAIL); a claim of ``True`` by finding none.  The returned report marks
    each claim PASSED when measurement agrees with the claim.

    This is the mechanised reviewer of experiments E3–E6.
    """
    from repro.core.properties import PROPERTY_REGISTRY

    config = config or CheckConfig()
    checked = bx.checked()
    report = CheckReport(subject=bx.name)
    lookup = dict(PROPERTY_REGISTRY)
    if extra_properties:
        lookup.update(extra_properties)
    for claim_name, claimed in claims.items():
        prop = lookup.get(claim_name)
        if prop is None:
            report.add(LawResult(claim_name, bx.name, CheckStatus.SKIPPED,
                                 note="no checker registered"))
            continue
        outcome = prop.check(checked, trials=config.trials, seed=config.seed)
        if outcome.status is CheckStatus.SKIPPED:
            report.add(LawResult(claim_name, bx.name, CheckStatus.SKIPPED,
                                 note=outcome.note))
            continue
        measured_holds = outcome.status is CheckStatus.PASSED
        agrees = measured_holds == claimed
        note = (f"claimed {'holds' if claimed else 'fails'}, measured "
                f"{'holds' if measured_holds else 'fails'}")
        report.add(LawResult(
            claim_name, bx.name,
            CheckStatus.PASSED if agrees else CheckStatus.FAILED,
            trials=outcome.trials,
            counterexample=None if agrees else outcome.counterexample,
            note=note))
    return report
