"""Lens combinators: an algebra for building bigger lenses from smaller ones.

The repository paper wants examples "defined precisely, but ... as
independent as possible of any particular bx formalism"; nevertheless its
flagship citation (Boomerang) is a combinator language, and several
catalogue artefacts are most naturally expressed compositionally.  This
module provides the standard combinator toolkit:

========================  ====================================================
``IdentityLens``          the unit of composition
``ComposeLens``           sequential composition (``l1 >> l2``)
``ProductLens``           pairs, componentwise (``l1 * l2``)
``FstLens`` / ``SndLens`` project a pair component, restoring the other
``ConstLens``             collapse the source to a constant view
``FieldLens``             focus on one key of a mapping
``FieldsLens``            focus on several keys of a mapping at once
``IndexLens``             focus on one position of a tuple
``ListMapLens``           map a lens over equal-length lists
``ListFilterLens``        the classic filter lens (partial; keeps hidden rest)
``CondLens``              choose a branch lens by a source predicate
========================  ====================================================

All combinators preserve well-behavedness (GetPut + PutGet) when their
components are well behaved, except where documented (``ListFilterLens`` has
the usual side conditions).  The law harness is the executable statement of
these claims; ``tests/core/test_combinators.py`` checks each one.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.errors import TransformationError
from repro.core.lens import Lens
from repro.models.space import (
    FiniteSpace,
    ModelSpace,
    PredicateSpace,
    ProductSpace,
)

__all__ = [
    "IdentityLens",
    "ComposeLens",
    "ProductLens",
    "FstLens",
    "SndLens",
    "ConstLens",
    "FieldLens",
    "FieldsLens",
    "IndexLens",
    "ListMapLens",
    "ListFilterLens",
    "CondLens",
    "list_space",
    "dict_space",
]


def list_space(element_space: ModelSpace, min_length: int = 0,
               max_length: int = 8, name: str | None = None) -> ModelSpace:
    """The space of tuples of members of ``element_space``.

    Lists-as-models are represented by tuples throughout the library so that
    models stay hashable and immutable.
    """

    def _is_member(value: Any) -> bool:
        if not isinstance(value, tuple):
            return False
        if not min_length <= len(value) <= max_length:
            return False
        return all(element_space.contains(item) for item in value)

    def _sample(rng):
        length = rng.randint(min_length, max_length)
        return tuple(element_space.sample(rng) for _ in range(length))

    return PredicateSpace(
        _is_member, _sample,
        name=name or f"list[{element_space.name}]",
        explain=lambda v: "not a tuple of members" if isinstance(v, tuple)
        else f"expected tuple, got {type(v).__name__}")


def dict_space(field_spaces: dict[str, ModelSpace],
               name: str | None = None) -> ModelSpace:
    """The space of dicts with exactly the given keys, each typed by a space."""

    keys = frozenset(field_spaces)

    def _is_member(value: Any) -> bool:
        if not isinstance(value, dict) or frozenset(value) != keys:
            return False
        return all(space.contains(value[key])
                   for key, space in field_spaces.items())

    def _sample(rng):
        return {key: space.sample(rng)
                for key, space in sorted(field_spaces.items())}

    return PredicateSpace(
        _is_member, _sample,
        name=name or "record{" + ", ".join(sorted(field_spaces)) + "}")


class IdentityLens(Lens):
    """The identity lens on a space: get and put are both trivial."""

    def __init__(self, space: ModelSpace, name: str = "id") -> None:
        self.name = name
        self.source_space = space
        self.view_space = space

    def get(self, source: Any) -> Any:
        return source

    def put(self, view: Any, source: Any) -> Any:
        return view

    def create(self, view: Any) -> Any:
        return view


class ComposeLens(Lens):
    """Sequential composition ``first`` then ``second``.

    ``get`` runs the gets left-to-right; ``put`` threads the intermediate
    value: the old source is pushed through ``first.get`` to obtain the old
    intermediate, ``second.put`` merges the new view into it, and
    ``first.put`` merges the result into the old source.
    """

    def __init__(self, first: Lens, second: Lens) -> None:
        self.first = first
        self.second = second
        self.name = f"({first.name} >> {second.name})"
        self.source_space = first.source_space
        self.view_space = second.view_space

    def get(self, source: Any) -> Any:
        return self.second.get(self.first.get(source))

    def put(self, view: Any, source: Any) -> Any:
        intermediate = self.first.get(source)
        new_intermediate = self.second.put(view, intermediate)
        return self.first.put(new_intermediate, source)

    def create(self, view: Any) -> Any:
        return self.first.create(self.second.create(view))

    def has_create(self) -> bool:
        return self.first.has_create() and self.second.has_create()


class ProductLens(Lens):
    """Parallel composition on pairs: ``(l1 * l2)`` acts componentwise."""

    def __init__(self, left: Lens, right: Lens) -> None:
        self.left = left
        self.right = right
        self.name = f"({left.name} * {right.name})"
        self.source_space = ProductSpace(left.source_space, right.source_space)
        self.view_space = ProductSpace(left.view_space, right.view_space)

    def get(self, source: Any) -> Any:
        first, second = source
        return (self.left.get(first), self.right.get(second))

    def put(self, view: Any, source: Any) -> Any:
        view_first, view_second = view
        source_first, source_second = source
        return (self.left.put(view_first, source_first),
                self.right.put(view_second, source_second))

    def create(self, view: Any) -> Any:
        view_first, view_second = view
        return (self.left.create(view_first), self.right.create(view_second))

    def has_create(self) -> bool:
        return self.left.has_create() and self.right.has_create()


class FstLens(Lens):
    """Project the first component of a pair; put restores the second."""

    def __init__(self, first_space: ModelSpace, second_space: ModelSpace,
                 default_second: Any = None) -> None:
        self.name = "fst"
        self.source_space = ProductSpace(first_space, second_space)
        self.view_space = first_space
        self._default_second = default_second

    def get(self, source: Any) -> Any:
        return source[0]

    def put(self, view: Any, source: Any) -> Any:
        return (view, source[1])

    def create(self, view: Any) -> Any:
        if self._default_second is None:
            return super().create(view)
        return (view, self._default_second)

    def has_create(self) -> bool:
        return self._default_second is not None


class SndLens(Lens):
    """Project the second component of a pair; put restores the first."""

    def __init__(self, first_space: ModelSpace, second_space: ModelSpace,
                 default_first: Any = None) -> None:
        self.name = "snd"
        self.source_space = ProductSpace(first_space, second_space)
        self.view_space = second_space
        self._default_first = default_first

    def get(self, source: Any) -> Any:
        return source[1]

    def put(self, view: Any, source: Any) -> Any:
        return (source[0], view)

    def create(self, view: Any) -> Any:
        if self._default_first is None:
            return super().create(view)
        return (self._default_first, view)

    def has_create(self) -> bool:
        return self._default_first is not None


class ConstLens(Lens):
    """Collapse every source to one constant view.

    ``put`` is only defined when the incoming view equals the constant —
    anything else would have nowhere to go.  PutGet holds trivially on the
    one-element view space.
    """

    def __init__(self, source_space: ModelSpace, constant: Any,
                 default_source: Any = None, name: str | None = None) -> None:
        self.name = name or f"const({constant!r})"
        self.source_space = source_space
        self.view_space = FiniteSpace([constant], name=f"{{{constant!r}}}")
        self.constant = constant
        self._default_source = default_source

    def get(self, source: Any) -> Any:
        return self.constant

    def put(self, view: Any, source: Any) -> Any:
        if view != self.constant:
            raise TransformationError(
                f"const lens can only put back {self.constant!r}, got {view!r}")
        return source

    def create(self, view: Any) -> Any:
        if self._default_source is None:
            return super().create(view)
        if view != self.constant:
            raise TransformationError(
                f"const lens can only create from {self.constant!r}")
        return self._default_source

    def has_create(self) -> bool:
        return self._default_source is not None


class FieldLens(Lens):
    """Focus on one key of a mapping source.

    Sources are dicts; ``put`` replaces the focused key and leaves every
    other key untouched.  A fresh dict is always returned (sources are never
    mutated).
    """

    def __init__(self, key: str, source_space: ModelSpace,
                 view_space: ModelSpace,
                 default_source: dict[str, Any] | None = None) -> None:
        self.name = f".{key}"
        self.key = key
        self.source_space = source_space
        self.view_space = view_space
        self._default_source = dict(default_source) if default_source else None

    def get(self, source: Any) -> Any:
        if self.key not in source:
            raise TransformationError(
                f"source has no field {self.key!r}: {source!r}")
        return source[self.key]

    def put(self, view: Any, source: Any) -> Any:
        updated = dict(source)
        updated[self.key] = view
        return updated

    def create(self, view: Any) -> Any:
        if self._default_source is None:
            return super().create(view)
        created = dict(self._default_source)
        created[self.key] = view
        return created

    def has_create(self) -> bool:
        return self._default_source is not None


class FieldsLens(Lens):
    """Focus on several keys of a mapping at once; the view is a sub-dict."""

    def __init__(self, keys: list[str], source_space: ModelSpace,
                 view_space: ModelSpace,
                 default_source: dict[str, Any] | None = None) -> None:
        self.keys = list(keys)
        self.name = ".{" + ",".join(self.keys) + "}"
        self.source_space = source_space
        self.view_space = view_space
        self._default_source = dict(default_source) if default_source else None

    def get(self, source: Any) -> Any:
        missing = [key for key in self.keys if key not in source]
        if missing:
            raise TransformationError(
                f"source missing fields {missing!r}: {source!r}")
        return {key: source[key] for key in self.keys}

    def put(self, view: Any, source: Any) -> Any:
        if set(view) != set(self.keys):
            raise TransformationError(
                f"view keys {sorted(view)} do not match lens keys {self.keys}")
        updated = dict(source)
        updated.update(view)
        return updated

    def create(self, view: Any) -> Any:
        if self._default_source is None:
            return super().create(view)
        created = dict(self._default_source)
        created.update(view)
        return created

    def has_create(self) -> bool:
        return self._default_source is not None


class IndexLens(Lens):
    """Focus on one position of a fixed-length tuple source."""

    def __init__(self, index: int, source_space: ModelSpace,
                 view_space: ModelSpace) -> None:
        self.name = f"[{index}]"
        self.index = index
        self.source_space = source_space
        self.view_space = view_space

    def get(self, source: Any) -> Any:
        return source[self.index]

    def put(self, view: Any, source: Any) -> Any:
        items = list(source)
        items[self.index] = view
        return tuple(items)


class ListMapLens(Lens):
    """Map an element lens over a list (tuple) source, positionally.

    ``put`` pairs view elements with old source elements by position.  When
    the view is longer than the source the extra elements go through
    ``element.create``; when shorter, trailing source elements are dropped.
    This matches the classic ``map`` lens semantics on list resizing.
    """

    def __init__(self, element: Lens, min_length: int = 0,
                 max_length: int = 8) -> None:
        self.element = element
        self.name = f"map({element.name})"
        self.source_space = list_space(element.source_space, min_length,
                                       max_length)
        self.view_space = list_space(element.view_space, min_length,
                                     max_length)

    def get(self, source: Any) -> Any:
        return tuple(self.element.get(item) for item in source)

    def put(self, view: Any, source: Any) -> Any:
        merged = []
        for position, view_item in enumerate(view):
            if position < len(source):
                merged.append(self.element.put(view_item, source[position]))
            else:
                merged.append(self.element.create(view_item))
        return tuple(merged)

    def create(self, view: Any) -> Any:
        return tuple(self.element.create(item) for item in view)

    def has_create(self) -> bool:
        return self.element.has_create()


class ListFilterLens(Lens):
    """The classic filter lens: the view is the elements satisfying ``keep``.

    ``put`` writes the new view elements back over the kept positions,
    preserving the hidden (filtered-out) elements and their interleaving.
    If the new view has *more* elements than there were kept positions, the
    extras are appended at the end; if fewer, surplus kept positions are
    deleted.

    Laws: GetPut always holds.  PutGet holds **only if** every view element
    satisfies ``keep`` — writing back an element the filter would reject is
    the classic view-update anomaly, and this lens raises
    :class:`TransformationError` in that case rather than silently breaking
    the law (experiment E14 benchmarks this check's cost).
    """

    def __init__(self, element_space: ModelSpace,
                 keep: Callable[[Any], bool],
                 max_length: int = 8, name: str | None = None) -> None:
        self.keep = keep
        self.name = name or "filter"
        self.source_space = list_space(element_space, 0, max_length)

        def _view_member(value: Any) -> bool:
            return (isinstance(value, tuple)
                    and len(value) <= max_length
                    and all(element_space.contains(item) and keep(item)
                            for item in value))

        def _view_sample(rng):
            length = rng.randint(0, max_length)
            items = []
            attempts = 0
            while len(items) < length and attempts < 64 * max(length, 1):
                candidate = element_space.sample(rng)
                attempts += 1
                if keep(candidate):
                    items.append(candidate)
            return tuple(items)

        self.view_space = PredicateSpace(
            _view_member, _view_sample, name=f"filtered[{element_space.name}]")

    def get(self, source: Any) -> Any:
        return tuple(item for item in source if self.keep(item))

    def put(self, view: Any, source: Any) -> Any:
        rejected = [item for item in view if not self.keep(item)]
        if rejected:
            raise TransformationError(
                "filter lens cannot put back elements the predicate "
                f"rejects: {rejected!r}")
        merged: list[Any] = []
        view_items = list(view)
        for item in source:
            if self.keep(item):
                if view_items:
                    merged.append(view_items.pop(0))
                # else: this kept position is deleted.
            else:
                merged.append(item)
        merged.extend(view_items)
        return tuple(merged)

    def create(self, view: Any) -> Any:
        rejected = [item for item in view if not self.keep(item)]
        if rejected:
            raise TransformationError(
                "filter lens cannot create from rejected elements: "
                f"{rejected!r}")
        return tuple(view)


class CondLens(Lens):
    """Branch between two lenses by a source predicate (Foster's ``cond``).

    Both branches must share source and view spaces.  ``get`` picks the
    branch by testing the *source*.  For ``put`` there are two regimes:

    * with ``view_predicate`` given (the classic side condition: the
      branches' view regions are disjoint and the predicate recognises
      the then-region), ``put`` picks the branch by the *view*, which
      keeps PutGet: the written source lands in the region whose ``get``
      reproduces the view;
    * without it, ``put`` falls back to branching on the old source,
      which is well behaved only for branch-stable updates — the usual
      informal side condition, now checked: if the written source would
      flip region and re-reading it would not reproduce the view, a
      :class:`TransformationError` is raised rather than silently
      breaking PutGet.
    """

    def __init__(self, predicate: Callable[[Any], bool],
                 then_lens: Lens, else_lens: Lens,
                 view_predicate: Callable[[Any], bool] | None = None,
                 name: str | None = None) -> None:
        if then_lens.source_space is not else_lens.source_space \
                and then_lens.source_space.name != else_lens.source_space.name:
            raise ValueError("cond branches must share a source space")
        self.predicate = predicate
        self.view_predicate = view_predicate
        self.then_lens = then_lens
        self.else_lens = else_lens
        self.name = name or f"cond({then_lens.name}, {else_lens.name})"
        self.source_space = then_lens.source_space
        self.view_space = then_lens.view_space

    def _branch(self, source: Any) -> Lens:
        return self.then_lens if self.predicate(source) else self.else_lens

    def get(self, source: Any) -> Any:
        return self._branch(source).get(source)

    def put(self, view: Any, source: Any) -> Any:
        if self.view_predicate is not None:
            branch = (self.then_lens if self.view_predicate(view)
                      else self.else_lens)
            return branch.put(view, source)
        written = self._branch(source).put(view, source)
        if self.get(written) != view:
            raise TransformationError(
                f"cond put flipped the branch region: view {view!r} not "
                f"recoverable from {written!r}")
        return written
