"""State-based bidirectional transformations (the template's semantic kernel).

The repository paper (§3) takes as its kernel "the description of bx given,
for example, by Stevens": an example defines two classes of models ``M`` and
``N``, a *consistency relation* ``R ⊆ M × N``, and *consistency restoration*
functions

* forward  ``fwd : M × N → N`` — given an authoritative left model and the
  current right model, produce a new right model consistent with the left;
* backward ``bwd : M × N → M`` — symmetrically.

This module defines :class:`Bx`, the abstract interface all state-based
examples in the catalogue implement, plus adaptors and generic constructions
(duals, bijections, function-built bx, space-checked wrappers).

Design notes
------------
Restoration functions are **pure**: they must return fresh models and never
mutate their arguments.  Value equality of models is what property checks
such as hippocraticness rely on, so model types used with this class must
implement ``__eq__`` structurally.

Edit-based ("delta") bx, which take information about *what changed* rather
than only the states, live in :mod:`repro.core.delta`.  Asymmetric lenses
live in :mod:`repro.core.lens` and can be adapted to this interface via
:meth:`repro.core.lens.Lens.to_bx`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.core.errors import ConsistencyError, TransformationError
from repro.models.space import ModelSpace

__all__ = [
    "Bx",
    "FunctionalBx",
    "BijectiveBx",
    "DualBx",
    "SpaceCheckedBx",
    "IdentityBx",
    "TrivialBx",
]


class Bx(ABC):
    """A state-based bidirectional transformation between two model spaces.

    Subclasses provide the consistency relation and both restoration
    directions.  The convention throughout the library:

    * ``left`` models inhabit :attr:`left_space` (the space called ``M`` in
      the paper), ``right`` models inhabit :attr:`right_space` (``N``);
    * ``fwd(left, right)`` treats **left as authoritative** and returns a
      replacement for ``right``;
    * ``bwd(left, right)`` treats **right as authoritative** and returns a
      replacement for ``left``.
    """

    #: Short name used in reports, e.g. ``"composers"``.
    name: str = "bx"

    #: Space of left models (``M``).
    left_space: ModelSpace

    #: Space of right models (``N``).
    right_space: ModelSpace

    @abstractmethod
    def consistent(self, left: Any, right: Any) -> bool:
        """Return True if ``(left, right)`` is in the consistency relation."""

    @abstractmethod
    def fwd(self, left: Any, right: Any) -> Any:
        """Restore consistency rightwards; returns the new right model."""

    @abstractmethod
    def bwd(self, left: Any, right: Any) -> Any:
        """Restore consistency leftwards; returns the new left model."""

    # ------------------------------------------------------------------
    # Defaults used when one side must be created from nothing.
    # ------------------------------------------------------------------

    def default_left(self) -> Any:
        """A canonical "empty" left model, if the space has one.

        Used by :meth:`create_left`.  Subclasses should override when the
        space has a natural unit (empty set of composers, empty list...).
        """
        raise TransformationError(
            f"bx {self.name!r} does not define a default left model")

    def default_right(self) -> Any:
        """A canonical "empty" right model; see :meth:`default_left`."""
        raise TransformationError(
            f"bx {self.name!r} does not define a default right model")

    def create_right(self, left: Any) -> Any:
        """Build a right model for ``left`` from scratch.

        The generic implementation restores consistency against the default
        right model; subclasses may override with something more direct.
        """
        return self.fwd(left, self.default_right())

    def create_left(self, right: Any) -> Any:
        """Build a left model for ``right`` from scratch; dual of create_right."""
        return self.bwd(self.default_left(), right)

    # ------------------------------------------------------------------
    # Convenience operations.
    # ------------------------------------------------------------------

    def check_consistent(self, left: Any, right: Any) -> None:
        """Raise :class:`ConsistencyError` unless the pair is consistent."""
        if not self.consistent(left, right):
            raise ConsistencyError(left, right)

    def restore(self, left: Any, right: Any, direction: str) -> Any:
        """Dispatch to :meth:`fwd` or :meth:`bwd` by name.

        ``direction`` must be ``"fwd"`` or ``"bwd"``.  Handy for harness
        code that is parameterised over direction.
        """
        if direction == "fwd":
            return self.fwd(left, right)
        if direction == "bwd":
            return self.bwd(left, right)
        raise ValueError(f"direction must be 'fwd' or 'bwd', got {direction!r}")

    def synchronise(self, left: Any, right: Any,
                    authoritative: str = "left") -> tuple[Any, Any]:
        """Return a consistent pair, changing only the non-authoritative side.

        With ``authoritative="left"`` this is ``(left, fwd(left, right))``;
        with ``"right"`` it is ``(bwd(left, right), right)``.
        """
        if authoritative == "left":
            return (left, self.fwd(left, right))
        if authoritative == "right":
            return (self.bwd(left, right), right)
        raise ValueError(
            f"authoritative must be 'left' or 'right', got {authoritative!r}")

    def dual(self) -> "Bx":
        """The same bx with left and right swapped."""
        return DualBx(self)

    def checked(self) -> "Bx":
        """Wrap this bx so every call validates space membership."""
        return SpaceCheckedBx(self)

    def sample_pair(self, rng: random.Random) -> tuple[Any, Any]:
        """Draw an arbitrary (not necessarily consistent) model pair."""
        return (self.left_space.sample(rng), self.right_space.sample(rng))

    def sample_consistent_pair(self, rng: random.Random) -> tuple[Any, Any]:
        """Draw a consistent pair by sampling then restoring rightwards.

        The restored pair is then *perturbed within the consistency
        relation* (shuffling or duplicating sequence elements, keeping
        only perturbations that preserve consistency).  Without this,
        checks quantifying over "all consistent pairs" (hippocraticness,
        undoability) would only ever see pairs in ``fwd``'s image — and a
        bx that, say, re-sorts an already-consistent list would wrongly
        pass hippocraticness because sampled pairs are always sorted.
        """
        left = self.left_space.sample(rng)
        right = self.fwd(left, self.right_space.sample(rng))
        right = self._perturb_within_consistency(rng, left, right)
        return (left, right)

    def _perturb_within_consistency(self, rng: random.Random, left: Any,
                                    right: Any) -> Any:
        """Try consistency-preserving perturbations of a right model.

        Only sequence (tuple) models are perturbed generically; other
        model kinds pass through unchanged.  Subclasses with richer
        consistency classes may override.
        """
        if not isinstance(right, tuple) or len(right) < 2:
            return right
        candidates = []
        shuffled = list(right)
        rng.shuffle(shuffled)
        candidates.append(tuple(shuffled))
        duplicated = list(right)
        duplicated.insert(rng.randrange(len(right)),
                          right[rng.randrange(len(right))])
        candidates.append(tuple(duplicated))
        for candidate in candidates:
            if rng.random() < 0.5:
                continue
            if (candidate != right and self.right_space.contains(candidate)
                    and self.consistent(left, candidate)):
                return candidate
        return right

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<{type(self).__name__} {self.name!r}: "
                f"{self.left_space.name} <-> {self.right_space.name}>")


class FunctionalBx(Bx):
    """A bx assembled from plain functions.

    This is the quickest way to define small examples and test fixtures::

        bx = FunctionalBx(
            name="double",
            left_space=IntRangeSpace(0, 50),
            right_space=IntRangeSpace(0, 100),
            consistent=lambda m, n: n == 2 * m,
            fwd=lambda m, n: 2 * m,
            bwd=lambda m, n: n // 2,
        )
    """

    def __init__(self, name: str,
                 left_space: ModelSpace, right_space: ModelSpace,
                 consistent: Callable[[Any, Any], bool],
                 fwd: Callable[[Any, Any], Any],
                 bwd: Callable[[Any, Any], Any],
                 default_left: Callable[[], Any] | None = None,
                 default_right: Callable[[], Any] | None = None) -> None:
        self.name = name
        self.left_space = left_space
        self.right_space = right_space
        self._consistent = consistent
        self._fwd = fwd
        self._bwd = bwd
        self._default_left = default_left
        self._default_right = default_right

    def consistent(self, left: Any, right: Any) -> bool:
        return bool(self._consistent(left, right))

    def fwd(self, left: Any, right: Any) -> Any:
        return self._fwd(left, right)

    def bwd(self, left: Any, right: Any) -> Any:
        return self._bwd(left, right)

    def default_left(self) -> Any:
        if self._default_left is None:
            return super().default_left()
        return self._default_left()

    def default_right(self) -> Any:
        if self._default_right is None:
            return super().default_right()
        return self._default_right()


class BijectiveBx(Bx):
    """A bx induced by a bijection ``to_right`` with inverse ``to_left``.

    Consistency holds exactly when ``right == to_right(left)``; restoration
    ignores the stale side entirely.  Bijective bx are trivially correct,
    hippocratic, undoable, and history ignorant — they make good sanity
    checks for the law harness.
    """

    def __init__(self, name: str,
                 left_space: ModelSpace, right_space: ModelSpace,
                 to_right: Callable[[Any], Any],
                 to_left: Callable[[Any], Any]) -> None:
        self.name = name
        self.left_space = left_space
        self.right_space = right_space
        self._to_right = to_right
        self._to_left = to_left

    def consistent(self, left: Any, right: Any) -> bool:
        return right == self._to_right(left)

    def fwd(self, left: Any, right: Any) -> Any:
        return self._to_right(left)

    def bwd(self, left: Any, right: Any) -> Any:
        return self._to_left(right)

    def create_right(self, left: Any) -> Any:
        return self._to_right(left)

    def create_left(self, right: Any) -> Any:
        return self._to_left(right)


class DualBx(Bx):
    """The mirror image of a bx: left and right exchanged."""

    def __init__(self, inner: Bx) -> None:
        self.inner = inner
        self.name = f"dual({inner.name})"
        self.left_space = inner.right_space
        self.right_space = inner.left_space

    def consistent(self, left: Any, right: Any) -> bool:
        return self.inner.consistent(right, left)

    def fwd(self, left: Any, right: Any) -> Any:
        return self.inner.bwd(right, left)

    def bwd(self, left: Any, right: Any) -> Any:
        return self.inner.fwd(right, left)

    def default_left(self) -> Any:
        return self.inner.default_right()

    def default_right(self) -> Any:
        return self.inner.default_left()

    def dual(self) -> Bx:
        return self.inner


class SpaceCheckedBx(Bx):
    """Decorator enforcing space membership on every argument and result.

    This is the library's answer to "weak typing hurts lens laws": wrapping a
    bx in :class:`SpaceCheckedBx` turns silent type confusion into an
    immediate :class:`~repro.core.errors.ModelSpaceError` with a diagnostic.
    The law-checking harness always works through this wrapper.
    """

    def __init__(self, inner: Bx) -> None:
        self.inner = inner
        self.name = inner.name
        self.left_space = inner.left_space
        self.right_space = inner.right_space

    def _check(self, left: Any, right: Any) -> None:
        self.left_space.validate(left)
        self.right_space.validate(right)

    def consistent(self, left: Any, right: Any) -> bool:
        self._check(left, right)
        return self.inner.consistent(left, right)

    def fwd(self, left: Any, right: Any) -> Any:
        self._check(left, right)
        result = self.inner.fwd(left, right)
        self.right_space.validate(result)
        return result

    def bwd(self, left: Any, right: Any) -> Any:
        self._check(left, right)
        result = self.inner.bwd(left, right)
        self.left_space.validate(result)
        return result

    def default_left(self) -> Any:
        result = self.inner.default_left()
        self.left_space.validate(result)
        return result

    def default_right(self) -> Any:
        result = self.inner.default_right()
        self.right_space.validate(result)
        return result

    def checked(self) -> Bx:
        return self


class IdentityBx(Bx):
    """The identity bx on a single space: consistent iff equal."""

    def __init__(self, space: ModelSpace, name: str = "identity") -> None:
        self.name = name
        self.left_space = space
        self.right_space = space

    def consistent(self, left: Any, right: Any) -> bool:
        return left == right

    def fwd(self, left: Any, right: Any) -> Any:
        return left

    def bwd(self, left: Any, right: Any) -> Any:
        return right


class TrivialBx(Bx):
    """The total bx: every pair is consistent, restoration changes nothing.

    Useful as the unit for property tests — it is vacuously correct and
    hippocratic, and exhibits *no* coupling between the sides.
    """

    def __init__(self, left_space: ModelSpace, right_space: ModelSpace,
                 name: str = "trivial") -> None:
        self.name = name
        self.left_space = left_space
        self.right_space = right_space

    def consistent(self, left: Any, right: Any) -> bool:
        return True

    def fwd(self, left: Any, right: Any) -> Any:
        return right

    def bwd(self, left: Any, right: Any) -> Any:
        return left
