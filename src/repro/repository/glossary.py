"""The glossary of bx terms the template's Properties field links to.

§3: property claims "will link to a separate glossary of terms such as
'hippocraticness'".  The glossary has two kinds of entry:

* **checkable properties** — drawn live from
  :data:`repro.core.properties.PROPERTY_REGISTRY`, so the prose definition
  shown to readers is the same text the checker documents;
* **plain terms** — vocabulary without an executable check (bx, model,
  consistency relation, state-based, ...), defined here.

The glossary is itself rendered by :mod:`repro.repository.export` as a
wiki page, and :mod:`repro.repository.validation` uses
:func:`known_property_names` to reject property claims that would link
nowhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.properties import PROPERTY_REGISTRY

__all__ = [
    "GlossaryTerm",
    "PLAIN_TERMS",
    "glossary_terms",
    "known_property_names",
    "define",
]


@dataclass(frozen=True)
class GlossaryTerm:
    """One glossary entry: the term, its definition, and whether the
    library can check it mechanically."""

    term: str
    definition: str
    checkable: bool

    def display(self) -> str:
        marker = " [checkable]" if self.checkable else ""
        return f"{self.term}{marker}: {self.definition}"


#: Vocabulary without an executable check.
PLAIN_TERMS: tuple[GlossaryTerm, ...] = (
    GlossaryTerm(
        "bx",
        "A bidirectional transformation: a mechanism for maintaining "
        "consistency between two (or more) sources of information that "
        "can each be edited.",
        checkable=False),
    GlossaryTerm(
        "model",
        "Any appropriately precise description of an information source "
        "being transformed; used inclusively (databases, documents, "
        "software models...).",
        checkable=False),
    GlossaryTerm(
        "metamodel",
        "A precise description of what counts as a model of a given "
        "class; used inclusively, as for 'model'.",
        checkable=False),
    GlossaryTerm(
        "consistency relation",
        "The relation R between model classes M and N that the bx is to "
        "maintain: R(m, n) holds when m and n agree.",
        checkable=False),
    GlossaryTerm(
        "consistency restoration",
        "The functions that repair an inconsistent pair: forward "
        "restoration changes the right model treating the left as "
        "authoritative; backward restoration is symmetric.",
        checkable=False),
    GlossaryTerm(
        "state-based",
        "A bx whose restoration functions depend only on the states of "
        "the two models.",
        checkable=False),
    GlossaryTerm(
        "delta-based",
        "A bx whose restoration takes extra information about the edit "
        "that was performed, not only the resulting states.",
        checkable=False),
    GlossaryTerm(
        "lens",
        "An asymmetric bx between a source and a view determined by the "
        "source: get extracts the view, put merges an updated view back.",
        checkable=False),
    GlossaryTerm(
        "well behaved",
        "Of a lens: satisfying GetPut and PutGet; of a state-based bx: "
        "correct and hippocratic.",
        checkable=False),
    GlossaryTerm(
        "authoritative",
        "The side of a restoration that is taken as correct; restoration "
        "modifies only the other side.",
        checkable=False),
)


def glossary_terms() -> list[GlossaryTerm]:
    """Every glossary term, checkable properties first, each group sorted."""
    checkable = [GlossaryTerm(prop.name, prop.definition, checkable=True)
                 for prop in PROPERTY_REGISTRY.values()]
    checkable.sort(key=lambda term: term.term)
    plain = sorted(PLAIN_TERMS, key=lambda term: term.term)
    return checkable + plain


def known_property_names() -> set[str]:
    """Names an entry may claim in its Properties field.

    Checkable property names plus the (non-checkable) 'least change',
    which entries may claim ahead of a metric being fixed.
    """
    names = set(PROPERTY_REGISTRY)
    names.add("least change")
    return names


def define(term: str) -> GlossaryTerm:
    """Look up one term; raises KeyError listing known terms."""
    for entry in glossary_terms():
        if entry.term == term:
            return entry
    if term == "least change":
        return GlossaryTerm(
            "least change",
            "Among all models consistent with the authoritative side, "
            "restoration returns one at minimal distance from the model "
            "being repaired, for a stated metric.",
            checkable=True)
    known = ", ".join(sorted(entry.term for entry in glossary_terms()))
    raise KeyError(f"no glossary term {term!r}; known: {known}")
