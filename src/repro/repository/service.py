"""The repository service: one facade in front of any storage backend.

Consumers (curation, search, export, wiki sync, examples, benchmarks)
talk to a :class:`RepositoryService`, never to a backend directly.  The
facade adds, on top of any
:class:`~repro.repository.backends.StorageBackend`:

* an **LRU snapshot cache** — entries are immutable value objects, so a
  cached snapshot can never go stale except through the three write
  operations, all of which pass through the facade and write through the
  cache;
* **batch APIs** (``add_many``, ``get_many``, ``versions_many``) that
  forward to the backend's bulk paths (one SQLite transaction instead of
  n single-row commits);
* **change events** — every write emits a :class:`RepositoryEvent` to
  subscribers, which is what drives *incremental*
  :class:`~repro.repository.search.SearchIndex` maintenance instead of
  full rebuilds;
* **thread safety** — a
  :class:`~repro.repository.concurrency.ReadWriteLock` lets any number
  of reader threads proceed concurrently (a sharded backend fans their
  requests out further) while each write is exclusive, so backend
  write, cache write-through and event dispatch form one atomic step.
  Without it a reader could fetch a snapshot, lose the CPU to a writer,
  and then cache the now-stale snapshot over the writer's fresh one.
  The lock is writer-preference and writer-reentrant: subscribers
  called during a write may read back through the service.

The service implements the full storage interface itself, so everything
that accepts a ``RepositoryStore`` (the compatibility name for
:class:`StorageBackend`) accepts a service too — including another
service, though stacking them buys nothing.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Iterable,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.repository.backends import MemoryBackend, StorageBackend
from repro.repository.backends.base import GetRequest, _split_request
from repro.repository.concurrency import Mutex, ReadWriteLock
from repro.repository.entry import ExampleEntry
from repro.repository.query import (
    Query,
    QueryPlan,
    QueryResult,
    QueryStats,
    corpus_stats,
    evaluate_plan,
)
from repro.repository.versioning import Version

__all__ = [
    "API_METHODS",
    "RepositoryAPI",
    "RepositoryEvent",
    "RepositoryService",
]

#: Every method of the :class:`RepositoryAPI` contract, by name — the
#: single list the protocol-coverage tests (and any new variant of the
#: facade) check themselves against, so a refactor of one layer cannot
#: silently drop a method from another.
API_METHODS = (
    # reads
    "identifiers", "versions", "versions_many", "has", "entry_count",
    "get", "get_many",
    # writes
    "add", "add_version", "replace_latest", "add_many",
    # queries
    "query", "execute_query", "query_stats", "change_counter",
    "change_token",
    # introspection / lifecycle
    "cache_stats", "close",
)


@runtime_checkable
class RepositoryAPI(Protocol):
    """The read/write/query surface every serving variant shares.

    One explicit contract extracted from :class:`RepositoryService`, so
    the sync facade, the async variant
    (:class:`~repro.repository.aservice.AsyncRepositoryService`), the
    HTTP server (:mod:`repro.repository.server`) and the HTTP client
    backend (:class:`~repro.repository.client.HTTPBackend`) all expose
    the *same* operations — a consumer written against this protocol
    runs unchanged against any of them.  Every
    :class:`~repro.repository.backends.StorageBackend` satisfies it
    structurally too (the async variant satisfies it with coroutine
    methods of the same names and signatures).

    :data:`API_METHODS` lists the member names; the protocol is
    ``runtime_checkable`` so ``isinstance(obj, RepositoryAPI)`` verifies
    an implementation has the full surface (presence, not signatures —
    the conformance suites check behaviour).
    """

    def identifiers(self) -> list[str]: ...

    def versions(self, identifier: str) -> list[Version]: ...

    def versions_many(
            self, identifiers: Sequence[str]) -> dict[str, list[Version]]: ...

    def has(self, identifier: str) -> bool: ...

    def entry_count(self) -> int: ...

    def get(self, identifier: str,
            version: Version | None = None) -> ExampleEntry: ...

    def get_many(
            self, requests: Sequence[GetRequest]) -> list[ExampleEntry]: ...

    def add(self, entry: ExampleEntry) -> None: ...

    def add_version(self, entry: ExampleEntry) -> None: ...

    def replace_latest(self, entry: ExampleEntry) -> None: ...

    def add_many(self, entries: Iterable[ExampleEntry]) -> int: ...

    def query(self, query: Query | str | None = None, *,
              sort: str = "relevance", offset: int = 0,
              limit: int | None = None) -> QueryResult: ...

    def execute_query(self, plan: QueryPlan,
                      stats: QueryStats | None = None) -> QueryResult: ...

    def query_stats(self, terms: Sequence[str]) -> QueryStats: ...

    def change_counter(self) -> int | None: ...

    def change_token(self) -> str | None: ...

    def cache_stats(self) -> dict[str, dict[str, int]]: ...

    def close(self) -> None: ...


def _noop() -> None:
    """Placeholder unsubscribe for a search index not yet attached."""

#: Event kinds, matching the three write operations.
EVENT_KINDS = ("add", "add_version", "replace_latest")


@dataclass(frozen=True)
class RepositoryEvent:
    """One repository change: what happened, and the entry as written.

    For every kind the carried ``entry`` is the new *latest* snapshot of
    its identifier, so a subscriber maintaining a latest-version view
    (the search index, a replica, a render cache) only ever needs to
    upsert.
    """

    kind: str
    entry: ExampleEntry

    @property
    def identifier(self) -> str:
        return self.entry.identifier


class _LRUCache:
    """A small LRU mapping with hit/miss accounting.

    Internally locked: every method is atomic, so concurrent readers
    may share it (recency bookkeeping mutates state even on ``get``,
    which is why a bare dict under concurrent readers is not enough).
    """

    _MISSING = object()

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._mutex = Mutex()
        self._data: OrderedDict[object, ExampleEntry] = OrderedDict()

    def get(self, key: object) -> ExampleEntry | None:
        with self._mutex:
            value = self._data.get(key, self._MISSING)
            if value is self._MISSING:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value  # type: ignore[return-value]

    def put(self, key: object, value: ExampleEntry) -> None:
        if self.maxsize <= 0:
            return
        with self._mutex:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def discard_identifier(self, identifier: str) -> None:
        with self._mutex:
            stale = [key for key in self._data if key[0] == identifier]
            for key in stale:
                del self._data[key]

    def clear(self) -> None:
        with self._mutex:
            self._data.clear()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._data)


class RepositoryService(StorageBackend):
    """Caching, batching, event-emitting facade over a storage backend."""

    def __init__(self, backend: StorageBackend | None = None, *,
                 cache_size: int = 256,
                 index_path: str | Path | None = None) -> None:
        self.backend = backend if backend is not None else MemoryBackend()
        self._cache = _LRUCache(cache_size)
        self._rwlock = ReadWriteLock()
        self._subscribers: list[Callable[[RepositoryEvent], None]] = []
        self._subscribers_mutex = Mutex()
        self._search_index = None  # lazily built, then kept in sync
        self._search_unsubscribe: Callable[[], None] = _noop
        #: Where the search index snapshots itself (None: in-memory
        #: only).  With a path set, ``enable_search`` restores the
        #: snapshot instead of rebuilding — provided its stamped change
        #: counter still matches the backend — and ``close`` re-saves.
        self.index_path = Path(index_path) if index_path else None
        #: The in-process half of :meth:`change_token`: a per-instance
        #: epoch (so tokens from a previous process can never validate
        #: against this one) plus a write sequence bumped under the
        #: write lock on every write through the facade.
        self._token_epoch = f"{time.time_ns():x}"
        self._write_seq = 0

    # ------------------------------------------------------------------
    # Reads (cached; any number may run concurrently).
    # ------------------------------------------------------------------

    def identifiers(self) -> list[str]:
        with self._rwlock.read_locked():
            return self.backend.identifiers()

    def versions(self, identifier: str) -> list[Version]:
        with self._rwlock.read_locked():
            return self.backend.versions(identifier)

    def versions_many(
            self, identifiers: Sequence[str]) -> dict[str, list[Version]]:
        with self._rwlock.read_locked():
            return self.backend.versions_many(identifiers)

    def has(self, identifier: str) -> bool:
        with self._rwlock.read_locked():
            return self.backend.has(identifier)

    def entry_count(self) -> int:
        with self._rwlock.read_locked():
            return self.backend.entry_count()

    def get(self, identifier: str,
            version: Version | None = None) -> ExampleEntry:
        # The read lock covers fetch *and* cache fill: without it a
        # reader could cache a snapshot made stale by a write that
        # landed between its backend fetch and its cache put.
        with self._rwlock.read_locked():
            key = _cache_key(identifier, version)
            cached = self._cache.get(key)
            if cached is not None:
                return cached
            entry = self.backend.get(identifier, version)
            self._cache.put(key, entry)
            if version is None:
                # The latest lookup also pins the explicit-version slot.
                self._cache.put(_cache_key(identifier, entry.version),
                                entry)
            return entry

    def get_many(self,
                 requests: Sequence[GetRequest]) -> list[ExampleEntry]:
        """Resolve many entries, serving from cache where possible.

        Cache misses are fetched from the backend in one ``get_many``
        call (one transaction / one scan where the backend supports it)
        and then cached.
        """
        with self._rwlock.read_locked():
            split = [_split_request(request) for request in requests]
            results: list[ExampleEntry | None] = []
            missing: list[tuple[int, str, Version | None]] = []
            for position, (identifier, version) in enumerate(split):
                cached = self._cache.get(_cache_key(identifier, version))
                results.append(cached)
                if cached is None:
                    missing.append((position, identifier, version))
            if missing:
                fetched = self.backend.get_many(
                    [(identifier, version)
                     for _position, identifier, version in missing])
                for (position, identifier, version), entry in zip(
                        missing, fetched, strict=True):
                    results[position] = entry
                    self._cache.put(_cache_key(identifier, version), entry)
                    if version is None:
                        self._cache.put(
                            _cache_key(identifier, entry.version), entry)
            return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Writes (exclusive; write-through cache, then events).
    # ------------------------------------------------------------------

    def add(self, entry: ExampleEntry) -> None:
        with self._rwlock.write_locked():
            self.backend.add(entry)
            self._after_write("add", entry)

    def add_version(self, entry: ExampleEntry) -> None:
        with self._rwlock.write_locked():
            self.backend.add_version(entry)
            self._after_write("add_version", entry)

    def replace_latest(self, entry: ExampleEntry) -> None:
        with self._rwlock.write_locked():
            self.backend.replace_latest(entry)
            self._after_write("replace_latest", entry)

    def add_many(self, entries: Iterable[ExampleEntry]) -> int:
        batch = list(entries)
        with self._rwlock.write_locked():
            try:
                count = self.backend.add_many(batch)
            except Exception:  # noqa: BLE001 - re-raised below after announcing the stored prefix
                # A non-transactional backend may have stored a prefix
                # of the batch before failing; subscribers (and the
                # cache) must still hear about what actually landed —
                # once per identifier whose stored latest is a batch
                # entry.
                announced: set[str] = set()
                for entry in batch:
                    if (entry.identifier not in announced
                            and self.backend.has(entry.identifier)
                            and self.backend.get(entry.identifier)
                            == entry):
                        announced.add(entry.identifier)
                        self._after_write("add", entry)
                raise
            for entry in batch:
                self._after_write("add", entry)
            return count

    @contextmanager
    def write_group(self):
        """Group commit through the facade: one lock hold, one backend
        transaction, per-entry events.

        Writes issued inside the block (by this thread — the write
        lock is writer-reentrant) share the backend's
        :meth:`StorageBackend.write_group` commit unit, so a coalesced
        group pays one transaction / one change-counter bump, while
        every successful write still dispatches its own
        :class:`RepositoryEvent` in order — subscribers (the search
        index, replicas) see the same per-entry stream they would for
        serial writes.  A write that fails inside the block raises at
        that write; the caller decides whether the group continues.
        If the block itself escapes with an exception, the backend
        rolls the group back but per-entry write-through (cache fills,
        event dispatch, index upserts) has already happened — so the
        facade drops its snapshot cache and search index to restore
        coherence before re-raising.
        """
        self._rwlock.acquire_write()
        try:
            try:
                with self.backend.write_group():
                    yield self
            except Exception:
                self.invalidate()
                self.disable_search()
                raise
        finally:
            self._rwlock.release_write()

    # ------------------------------------------------------------------
    # Events.
    # ------------------------------------------------------------------

    def subscribe(self, callback: Callable[[RepositoryEvent], None],
                  ) -> Callable[[], None]:
        """Register a change listener; returns an unsubscribe function."""
        with self._subscribers_mutex:
            self._subscribers.append(callback)

        def unsubscribe() -> None:
            with self._subscribers_mutex:
                if callback in self._subscribers:
                    self._subscribers.remove(callback)

        return unsubscribe

    def _after_write(self, kind: str, entry: ExampleEntry) -> None:
        # The write succeeded, so the entry is now the latest snapshot:
        # write it through both cache slots (stale values for the same
        # keys are overwritten, which is the cache-coherence guarantee).
        # The token sequence bumps here too — under the write lock, so
        # a reader can never observe the new entry under the old token
        # (stale-token-fresh-entry is the safe direction: it costs one
        # spurious revalidation, never a false 304).
        self._write_seq += 1
        self._cache.put(_cache_key(entry.identifier, None), entry)
        self._cache.put(_cache_key(entry.identifier, entry.version), entry)
        event = RepositoryEvent(kind, entry)
        with self._subscribers_mutex:
            listeners = list(self._subscribers)
        for callback in listeners:
            callback(event)

    # ------------------------------------------------------------------
    # The unified query API (see repro.repository.query).
    # ------------------------------------------------------------------

    # ``query()`` is inherited from :class:`StorageBackend`: it builds
    # the plan and calls :meth:`execute_query` below, which pushes the
    # plan down to a native backend or evaluates it over the service's
    # own search index, **lazily enabling it on first use** — callers
    # never need to call :meth:`enable_search` first.

    def execute_query(self, plan: QueryPlan,
                      stats: QueryStats | None = None) -> QueryResult:
        """The :class:`StorageBackend` query hook, facade-style.

        Pushes the plan down when the backend can execute it natively;
        otherwise evaluates it over the (lazily enabled, incrementally
        maintained) search index, under the read lock — index mutation
        happens only in event subscribers, which run under the write
        lock, so readers can never observe a half-applied upsert.
        """
        if self.backend.supports_native_query:
            with self._rwlock.read_locked():
                return self.backend.execute_query(plan, stats)
        index = self._ensure_index()
        with self._rwlock.read_locked():
            return evaluate_plan(index, plan, stats)

    @property
    def supports_native_query(self) -> bool:  # type: ignore[override]
        """A service is as pushdown-capable as the backend it fronts."""
        return self.backend.supports_native_query

    def query_stats(self, terms: Sequence[str]) -> QueryStats:
        if self.backend.supports_native_query:
            with self._rwlock.read_locked():
                return self.backend.query_stats(terms)
        index = self._ensure_index()
        with self._rwlock.read_locked():
            return corpus_stats(index, terms)

    def change_counter(self) -> int | None:
        with self._rwlock.read_locked():
            return self.backend.change_counter()

    def change_token(self) -> str:
        """An opaque validator that changes on every write; never None.

        The wire layer (ETags, the server's encode memo, the client's
        validation cache) keys on this.  A backend with its own token —
        a durable counter, or a remote server's validator — wins, so
        foreign-process writes are visible; otherwise the facade's own
        epoch + write sequence stands in, which covers every write that
        can reach an in-process-only backend.  ``invalidate()`` (the
        documented escape hatch for mutating such a backend behind the
        facade) bumps the sequence too.
        """
        with self._rwlock.read_locked():
            token = self.backend.change_token()
            if token is not None:
                return token
            return f"e{self._token_epoch}.{self._write_seq}"

    # ------------------------------------------------------------------
    # Search (incremental; built on the event hooks).
    # ------------------------------------------------------------------

    def enable_search(self):
        """Ensure the search index exists; afterwards events keep it
        fresh.

        Returns the :class:`~repro.repository.search.SearchIndex`, which
        may also be queried directly for structured filters.  When the
        service has an :attr:`index_path` and a snapshot is on disk
        whose stamped change counter still matches the backend, the
        index is *restored* instead of rebuilt — no batch ``get_many``,
        no re-tokenisation.  Any write since the snapshot (the counters
        differ) forces the rebuild.

        Runs under the *write* lock: the index lifecycle shares the one
        service lock (no separate mutex to order against), writers are
        excluded for the whole restore-or-build-then-subscribe step so
        no write can land between the two and go permanently unindexed,
        and the build's own reads re-enter via writer reentrancy.
        """
        with self._rwlock.write_locked():
            if self._search_index is None:
                from repro.repository.search import SearchIndex
                index = self._load_index_snapshot(SearchIndex)
                if index is not None:
                    self._search_unsubscribe = self.subscribe(
                        lambda event: index.add_entry(event.entry))
                else:
                    index = SearchIndex()
                    self._search_unsubscribe = index.sync_with(self)
                self._search_index = index
            return self._search_index

    def _load_index_snapshot(self, index_class):
        if self.index_path is None:
            return None
        counter = self.backend.change_counter()
        if counter is None:
            return None
        return index_class.load(self.index_path,
                                expected_change_counter=counter)

    def save_index(self) -> bool:
        """Snapshot the live index to :attr:`index_path`; True if saved.

        Runs under the write lock so the saved postings and the change
        counter stamped on them are a consistent pair.  A service with
        no live index, no ``index_path``, or a backend that cannot
        provide a change counter saves nothing and returns False.
        ``close`` calls this automatically.
        """
        with self._rwlock.write_locked():
            index = self._search_index
            if index is None or self.index_path is None:
                return False
            counter = self.backend.change_counter()
            if counter is None:
                return False
            index.save(self.index_path, change_counter=counter)
            return True

    def disable_search(self) -> None:
        """Detach and drop the search index (a later search rebuilds)."""
        with self._rwlock.write_locked():
            if self._search_index is not None:
                self._search_unsubscribe()
                self._search_index = None

    @property
    def search_index(self):
        """The live index (None until :meth:`enable_search`/``search``)."""
        return self._search_index

    def _ensure_index(self):
        """The live index, lazily enabling it on first use."""
        with self._rwlock.read_locked():
            index = self._search_index
        if index is not None:
            return index
        return self.enable_search()

    # The deprecated ``search()`` shim is gone: ``query()`` (with the
    # same lazy index enablement) is the one retrieval surface.  The
    # :class:`~repro.repository.search.SearchIndex` object keeps its own
    # ``search()`` — that is the index's API, not the facade's.

    # ------------------------------------------------------------------
    # Cache management / introspection.
    # ------------------------------------------------------------------

    def cache_info(self) -> dict[str, int]:
        return {
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "currsize": len(self._cache),
            "maxsize": self._cache.maxsize,
        }

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Every read-cache counter on this service's read path.

        ``entry_cache`` is the facade's own LRU (hits, misses,
        evictions, sizes); the backend's caches — the decode memo, the
        file listing cache, summed across composite children — are
        merged in under their own names (see
        :meth:`StorageBackend.cache_stats`).  The companion
        :class:`~repro.repository.render_cache.RenderCache` reports its
        counters through its own ``cache_stats()``; benchmarks use both
        to plot the hit-rate/latency curve against cache sizing.
        """
        stats: dict[str, dict[str, int]] = {
            "entry_cache": {
                "hits": self._cache.hits,
                "misses": self._cache.misses,
                "evictions": self._cache.evictions,
                "currsize": len(self._cache),
                "maxsize": self._cache.maxsize,
            },
        }
        stats.update(self.backend.cache_stats())
        return stats

    def invalidate(self, identifier: str | None = None) -> None:
        """Drop cached snapshots (all, or one identifier's).

        Only needed when the underlying backend is mutated behind the
        facade's back (e.g. another process wrote to the same file
        store).  Bumps the in-process token sequence for the same
        reason: validators minted before the foreign mutation must stop
        matching on backends with no durable counter of their own.
        """
        self._write_seq += 1
        if identifier is None:
            self._cache.clear()
        else:
            self._cache.discard_identifier(identifier)

    def close(self) -> None:
        """Snapshot the index (when configured) and close the backend."""
        self.save_index()
        self.backend.close()


def _cache_key(identifier: str,
               version: Version | None) -> tuple[str, str | None]:
    # None marks the "latest" slot, distinct from every explicit version.
    return (identifier, str(version) if version is not None else None)
