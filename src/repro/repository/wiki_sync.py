"""The §5.4 bx: keeping the wiki page and the local copy consistent.

The paper: "We shall ... maintain a local copy of the repository contents
... We plan to give some thought to whether maintaining it in a
wiki-markup-independent form, and maintaining consistency between that and
the wiki via a bidirectional transformation, might add value."  This
module is that bx, dogfooding the library on its own infrastructure:

* the **source** is the structured :class:`ExampleEntry` (the local,
  markup-independent copy persisted by the
  :class:`~repro.repository.store.FileStore`);
* the **view** is the wikidot page text;
* ``get`` renders (:func:`repro.repository.export.render_wikidot`);
* ``put`` parses an edited page back (:func:`parse_wikidot`) and **merges**
  it with the old entry: template sections deleted from the page are
  restored from the old structured copy, so a careless wiki edit cannot
  silently destroy curated content.

Micro-syntax caveat: the page format reserves a few markers (`` DOI `` in
references, ``[...]`` kinds in artefacts, ``**author** (date):`` comments).
:func:`normalise_entry` canonicalises an entry into the sublanguage on
which the lens laws hold exactly; the law harness samples from
:func:`entry_space`, whose members are normalised by construction.
"""

from __future__ import annotations

import random
import re
from dataclasses import replace
from typing import Any

from repro.core.errors import WikiSyncError
from repro.core.lens import Lens
from repro.models.space import ModelSpace, PredicateSpace
from repro.repository.entry import (
    Artefact,
    Comment,
    ExampleEntry,
    ModelDescription,
    PropertyClaim,
    Reference,
    RestorationSpec,
    Variant,
)
from repro.repository.export import NONE_YET, render_wikidot
from repro.repository.template import EntryType
from repro.repository.versioning import Version

__all__ = [
    "parse_wikidot",
    "normalise_entry",
    "entry_space",
    "wikidot_space",
    "WikiSyncLens",
    "make_wiki_sync_lens",
    "apply_wiki_edit",
    "render_wiki_pages",
]

_SECTION_RE = re.compile(r"^\+\+ (.+)$")
_SUBSECTION_RE = re.compile(r"^\+\+\+ (.+)$")
_TITLE_RE = re.compile(r"^\+ (.+)$")
_META_RE = re.compile(r"^\|\|~ (\w+) \|\| (.*?) \|\|$")
_COMMENT_RE = re.compile(r"^\*\*(.+?)\*\* \((.+?)\): (.*)$")
_ARTEFACT_RE = re.compile(r"^(.+?) \[(.+?)\] (\S+)(?: -- (.*))?$")


def _join(lines: list[str]) -> str:
    return "\n".join(lines).strip()


def _parse_property(text: str) -> PropertyClaim:
    body, _sep, note = text.partition(" -- ")
    body = body.strip()
    holds = True
    if body.lower().startswith("not "):
        holds = False
        body = body[4:]
    return PropertyClaim(body.lower(), holds, note.strip())


def _parse_reference(text: str) -> Reference:
    # The note is a trailing parenthesised group with no nested parens,
    # so citations containing "(POPL)" mid-text parse correctly.
    note = ""
    match = re.search(r" \(([^()]*)\)$", text)
    if match:
        note = match.group(1)
        text = text[:match.start()]
    body, _sep, doi = text.partition(" DOI ")
    return Reference(body.strip(), doi.strip(), note)


def _parse_comment(text: str) -> Comment:
    match = _COMMENT_RE.match(text)
    if not match:
        raise WikiSyncError(f"unparseable comment bullet: {text!r}")
    return Comment(match.group(1), match.group(2), match.group(3))


def _parse_artefact(text: str) -> Artefact:
    match = _ARTEFACT_RE.match(text)
    if not match:
        raise WikiSyncError(f"unparseable artefact bullet: {text!r}")
    return Artefact(match.group(1), match.group(2), match.group(3),
                    match.group(4) or "")


def parse_wikidot(text: str) -> dict[str, Any]:
    """Parse a wikidot entry page into a partial entry-field dict.

    Returns only the fields whose sections appear in the page; the §5.4
    lens's ``put`` merges the result with the old entry.  Raises
    :class:`WikiSyncError` on structural problems (no title, bad metadata
    row, unparseable bullets).
    """
    fields: dict[str, Any] = {}
    section: str | None = None
    subsection: str | None = None
    text_lines: list[str] = []
    bullets: list[str] = []
    models: list[ModelDescription] = []
    variants: list[Variant] = []
    restoration: dict[str, str] = {}
    in_code = False
    code_lines: list[str] = []
    model_desc_lines: list[str] = []

    def close_subsection() -> None:
        nonlocal subsection, code_lines, model_desc_lines
        if section == "Models" and subsection is not None:
            models.append(ModelDescription(
                subsection, _join(model_desc_lines), _join(code_lines)))
        elif section == "Variants" and subsection is not None:
            variants.append(Variant(subsection, _join(model_desc_lines)))
        elif section == "Consistency Restoration" and subsection is not None:
            restoration[subsection.lower()] = _join(model_desc_lines)
        subsection = None
        code_lines = []
        model_desc_lines = []

    def close_section() -> None:
        nonlocal section, text_lines, bullets, models, variants, restoration
        close_subsection()
        if section is None:
            return
        body = _join(text_lines)
        if section == "Overview":
            fields["overview"] = body
        elif section == "Consistency":
            fields["consistency"] = body
        elif section == "Discussion":
            fields["discussion"] = body
        elif section == "Models":
            fields["models"] = tuple(models)
            models = []
        elif section == "Variants":
            if body == NONE_YET and not variants:
                fields["variants"] = ()
            else:
                fields["variants"] = tuple(variants)
            variants = []
        elif section == "Consistency Restoration":
            if restoration:
                fields["restoration"] = RestorationSpec(
                    forward=restoration.get("forward", ""),
                    backward=restoration.get("backward", ""))
            else:
                fields["restoration"] = RestorationSpec(combined=body)
            restoration = {}
        elif section == "Properties":
            fields["properties"] = tuple(
                _parse_property(b) for b in bullets)
        elif section == "References":
            fields["references"] = tuple(
                _parse_reference(b) for b in bullets)
        elif section == "Authors":
            fields["authors"] = tuple(bullets)
        elif section == "Reviewers":
            fields["reviewers"] = tuple(bullets)
        elif section == "Comments":
            fields["comments"] = tuple(_parse_comment(b) for b in bullets)
        elif section == "Artefacts":
            fields["artefacts"] = tuple(
                _parse_artefact(b) for b in bullets)
        else:
            raise WikiSyncError(f"unknown section heading {section!r}")
        section = None
        text_lines = []
        bullets = []

    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        if in_code:
            if line == "[[/code]]":
                in_code = False
            else:
                code_lines.append(line)
            continue
        if line == "[[code]]":
            in_code = True
            continue
        title_match = _TITLE_RE.match(line)
        if title_match and not line.startswith("++"):
            fields["title"] = title_match.group(1).strip()
            continue
        meta_match = _META_RE.match(line)
        if meta_match:
            key, value = meta_match.group(1), meta_match.group(2).strip()
            if key == "Version":
                fields["version"] = Version.parse(value)
            elif key == "Type":
                fields["types"] = tuple(
                    EntryType(part.strip())
                    for part in value.split(",") if part.strip())
            else:
                raise WikiSyncError(f"unknown metadata row {key!r}")
            continue
        sub_match = _SUBSECTION_RE.match(line)
        if sub_match:
            close_subsection()
            subsection = sub_match.group(1).strip()
            continue
        section_match = _SECTION_RE.match(line)
        if section_match and not line.startswith("+++"):
            close_section()
            section = section_match.group(1).strip()
            continue
        if not line:
            if subsection is None and section is not None and text_lines:
                text_lines.append("")
            continue
        if line.startswith("* "):
            bullets.append(line[2:])
            continue
        if subsection is not None:
            model_desc_lines.append(line)
        elif line != NONE_YET:
            text_lines.append(line)
    close_section()
    if in_code:
        raise WikiSyncError("unterminated [[code]] block")
    if "title" not in fields:
        raise WikiSyncError("page has no '+ TITLE' heading")
    return fields


# ----------------------------------------------------------------------
# Normalisation and spaces for law checking.
# ----------------------------------------------------------------------

def _clean_text(text: str) -> str:
    """Single spaces, no reserved markers, stripped."""
    cleaned = re.sub(r"\s+", " ", text).strip()
    cleaned = cleaned.replace(" DOI ", " doi ").replace(" -- ", " - ")
    return cleaned


def normalise_entry(entry: ExampleEntry) -> ExampleEntry:
    """Canonicalise an entry into the round-trippable sublanguage.

    Collapses whitespace, strips reserved micro-syntax markers from free
    text, and drops empty list items.  ``parse_wikidot(render_wikidot(e))``
    recovers ``normalise_entry(e)`` exactly — the PutGet law on this
    sublanguage.
    """
    return replace(
        entry,
        title=_clean_text(entry.title),
        overview=_clean_text(entry.overview),
        consistency=_clean_text(entry.consistency),
        discussion=_clean_text(entry.discussion),
        models=tuple(
            ModelDescription(_clean_text(m.name), _clean_text(m.description),
                             m.metamodel.strip())
            for m in entry.models),
        restoration=RestorationSpec(
            forward=_clean_text(entry.restoration.forward),
            backward=_clean_text(entry.restoration.backward),
            combined=_clean_text(entry.restoration.combined)),
        properties=tuple(
            PropertyClaim(claim.name.lower(), claim.holds,
                          _clean_text(claim.note))
            for claim in entry.properties),
        variants=tuple(
            Variant(_clean_text(v.name), _clean_text(v.description))
            for v in entry.variants),
        references=tuple(
            Reference(_clean_text(r.text).rstrip("()"),
                      r.doi.strip(),
                      _clean_text(r.note).replace(")", "").replace("(", ""))
            for r in entry.references),
        authors=tuple(_clean_text(a) for a in entry.authors if a.strip()),
        reviewers=tuple(_clean_text(r) for r in entry.reviewers
                        if r.strip()),
        comments=tuple(
            Comment(_clean_text(c.author), _clean_text(c.date),
                    _clean_text(c.text))
            for c in entry.comments),
        artefacts=tuple(
            Artefact(_clean_text(a.name), _clean_text(a.kind),
                     a.locator.strip() or "missing",
                     _clean_text(a.description))
            for a in entry.artefacts),
    )


_WORDS = ("alpha", "beta", "gamma", "delta", "sync", "view", "model",
          "schema", "tree", "composer", "update", "merge")
_NAMES = ("Ada", "Barbara", "Edsger", "Grace", "Kurt", "Perdita")


def _random_entry(rng: random.Random) -> ExampleEntry:
    """A small random entry in the normalised sublanguage."""

    def words(count: int) -> str:
        return " ".join(rng.choice(_WORDS) for _ in range(count))

    title = words(2).upper()
    has_props = rng.random() < 0.7
    has_variants = rng.random() < 0.5
    entry = ExampleEntry(
        title=title,
        version=Version(rng.randint(0, 2), rng.randint(0, 9)),
        types=(rng.choice((EntryType.PRECISE, EntryType.SKETCH)),),
        overview=words(4) + ".",
        models=tuple(
            ModelDescription(f"M{index}", words(3) + ".",
                             metamodel="" if rng.random() < 0.5
                             else f"class {words(1)}")
            for index in range(rng.randint(1, 3))),
        consistency=words(5) + ".",
        restoration=RestorationSpec(forward=words(4) + ".",
                                    backward=words(4) + "."),
        properties=tuple(
            PropertyClaim(name, holds=rng.random() < 0.8)
            for name in rng.sample(
                ("correct", "hippocratic", "undoable", "simply matching"),
                k=rng.randint(1, 3))) if has_props else (),
        variants=tuple(
            Variant(f"choice {index}", words(3) + ".")
            for index in range(rng.randint(1, 2))) if has_variants else (),
        discussion=words(6) + ".",
        references=tuple(
            Reference(words(3), doi="10.1000/" + str(rng.randint(1, 999)))
            for _ in range(rng.randint(0, 2))),
        authors=tuple(rng.sample(_NAMES, k=rng.randint(1, 2))),
        reviewers=tuple(rng.sample(_NAMES, k=rng.randint(0, 1))),
        comments=tuple(
            Comment(rng.choice(_NAMES), "2014-03-28", words(3) + ".")
            for _ in range(rng.randint(0, 2))),
        artefacts=tuple(
            Artefact(words(1), "code", f"repro.catalogue.{words(1)}")
            for _ in range(rng.randint(0, 1))),
    )
    return normalise_entry(entry)


def entry_space(name: str = "entries") -> ModelSpace:
    """The space of normalised entries (law-checking source space)."""
    return PredicateSpace(
        predicate=lambda value: isinstance(value, ExampleEntry)
        and normalise_entry(value) == value,
        sampler=_random_entry,
        name=name,
        explain=lambda value: "not a normalised ExampleEntry")


def wikidot_space(name: str = "wikidot pages") -> ModelSpace:
    """The space of parseable wikidot pages (law-checking view space)."""

    def _is_page(value: Any) -> bool:
        if not isinstance(value, str):
            return False
        try:
            parse_wikidot(value)
        except WikiSyncError:
            return False
        return True

    return PredicateSpace(
        predicate=_is_page,
        sampler=lambda rng: render_wikidot(_random_entry(rng)),
        name=name,
        explain=lambda value: "not a parseable wikidot entry page")


class WikiSyncLens(Lens):
    """The §5.4 lens: structured entry (source) ↔ wikidot page (view).

    ``put`` parses the edited page and merges: any template section
    missing from the page keeps its value from the old entry.  ``create``
    parses with library defaults for anything missing (empty optional
    fields; required free-text fields become explicit placeholders so the
    result is visibly incomplete rather than silently wrong).
    """

    def __init__(self) -> None:
        self.name = "wiki-sync"
        self.source_space = entry_space()
        self.view_space = wikidot_space()

    def get(self, source: ExampleEntry) -> str:
        return render_wikidot(source)

    def put(self, view: str, source: ExampleEntry) -> ExampleEntry:
        fields = parse_wikidot(view)
        merged = replace(source, **fields)
        return normalise_entry(merged)

    def create(self, view: str) -> ExampleEntry:
        fields = parse_wikidot(view)
        defaults: dict[str, Any] = {
            "version": Version(0, 1),
            "types": (EntryType.SKETCH,),
            "overview": "(missing overview)",
            "models": (ModelDescription("M", "(missing description)"),),
            "consistency": "(missing consistency)",
            "restoration": RestorationSpec(combined="(missing)"),
            "discussion": "(missing discussion)",
            "authors": ("(unknown)",),
            "properties": (), "variants": (), "references": (),
            "reviewers": (), "comments": (), "artefacts": (),
        }
        defaults.update(fields)
        return normalise_entry(ExampleEntry(**defaults))


def make_wiki_sync_lens() -> WikiSyncLens:
    """Factory used by examples/benchmarks (stable public name)."""
    return WikiSyncLens()


def render_wiki_pages(store, query=None, *, cache=None) -> dict[str, str]:
    """Render the wikidot pages of a slice of the repository.

    The push half of §5.4 at collection scale: select entries through
    the unified query API (``query`` is a
    :class:`~repro.repository.query.Q` expression, a free-text string,
    or None for everything) and render each latest snapshot to its
    wiki page text, keyed by identifier.  On a pushdown-capable store
    (SQLite, a sharded cluster) only the matching snapshots are
    fetched.

    ``cache`` is an optional
    :class:`~repro.repository.render_cache.RenderCache` attached to
    this very store: with one, only identifiers written since the
    cache last rendered them are re-rendered (and for ``query=None``
    even the snapshot fetch is skipped for cached pages).
    """
    if cache is not None:
        if cache.service is not store:
            raise WikiSyncError(
                "render cache is attached to a different store")
        return cache.wiki_pages(query)
    from repro.repository.query import plan

    result = store.execute_query(plan(query, sort="identifier"))
    return {hit.identifier: render_wikidot(hit.entry)
            for hit in result.hits}


def apply_wiki_edit(store, identifier: str, page: str) -> ExampleEntry:
    """Put an edited wiki page back into the stored entry via the lens.

    The §5.4 synchronisation as one operation: parse the edited ``page``,
    merge it with the stored latest snapshot (sections the editor deleted
    are restored from the structured copy), keep the stored version (a
    wiki edit is not a curated revision — version bumps go through
    :class:`~repro.repository.curation.CuratedRepository`), and persist
    with ``replace_latest``.  Going through a
    :class:`~repro.repository.service.RepositoryService` keeps its cache
    and any attached search index coherent automatically.

    Returns the merged, stored entry.
    """
    lens = WikiSyncLens()
    current = store.get(identifier)
    merged = lens.put(page, normalise_entry(current))
    merged = replace(merged, version=current.version)
    store.replace_latest(merged)
    return merged
