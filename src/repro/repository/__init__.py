"""The curated repository of bx examples: the paper's primary contribution.

Template (§3), entries, validation, versioning (§3/§5.2), the three-level
curation workflow (§5.1), versioned storage with stable identifiers
(§5.2) behind pluggable backends and the :class:`RepositoryService`
facade, search, citations, markup export, the §5.4 wiki-sync bx, and the
glossary the Properties field links to.
"""

from repro.repository.backends import (
    BACKEND_SCHEMES,
    AntiEntropyReport,
    FileBackend,
    MemoryBackend,
    ReplicatedBackend,
    ShardedBackend,
    SQLiteBackend,
    StorageBackend,
    create_backend,
    shard_index,
)
from repro.repository.codec import (
    DecodeMemo,
    decode_entry,
    encode_entry,
)
from repro.repository.concurrency import ReadWriteLock
from repro.repository.faults import (
    FaultInjector,
    FlakyBackend,
    InjectedFault,
    SlowBackend,
)
from repro.repository.render_cache import RenderCache
from repro.repository.citation import (
    REPOSITORY_URL,
    archive_manuscript,
    cite_archive,
    cite_entry,
    cite_repository,
    entry_url,
)
from repro.repository.curation import (
    CuratedRepository,
    CurationPolicy,
    Role,
    User,
)
from repro.repository.entry import (
    Artefact,
    Comment,
    ExampleEntry,
    ModelDescription,
    PropertyClaim,
    Reference,
    RestorationSpec,
    Variant,
    slugify,
)
from repro.repository.export import (
    render_glossary_wikidot,
    render_markdown,
    render_repository_markdown,
    render_wikidot,
)
from repro.repository.glossary import (
    GlossaryTerm,
    define,
    glossary_terms,
    known_property_names,
)
from repro.repository.query import (
    Q,
    Query,
    QueryPlan,
    QueryResult,
    QueryStats,
    plan,
    plan_from_dict,
    plan_to_dict,
    query_from_dict,
    query_to_dict,
    result_from_dict,
    result_to_dict,
    stats_from_dict,
    stats_to_dict,
)
from repro.repository.resilience import (
    CircuitBreaker,
    Deadline,
    HealthProbe,
    RetryBudget,
    RetryPolicy,
    current_deadline,
    deadline_scope,
)
from repro.repository.search import SearchHit, SearchIndex, tokenize
from repro.repository.service import (
    API_METHODS,
    RepositoryAPI,
    RepositoryEvent,
    RepositoryService,
)
from repro.repository.aservice import AsyncRepositoryService
from repro.repository.client import HTTPBackend
from repro.repository.server import RepositoryServer
from repro.repository.store import FileStore, MemoryStore, RepositoryStore
from repro.repository.template import (
    TEMPLATE,
    EntryType,
    FieldSpec,
    field_names,
    field_spec,
)
from repro.repository.validation import (
    ValidationReport,
    require_valid,
    validate_entry,
)
from repro.repository.versioning import Version, VersionHistory
from repro.repository.wiki_sync import (
    WikiSyncLens,
    apply_wiki_edit,
    entry_space,
    make_wiki_sync_lens,
    normalise_entry,
    parse_wikidot,
    render_wiki_pages,
    wikidot_space,
)

__all__ = [
    # template
    "EntryType", "FieldSpec", "TEMPLATE", "field_spec", "field_names",
    # entry
    "ExampleEntry", "ModelDescription", "RestorationSpec", "PropertyClaim",
    "Variant", "Reference", "Comment", "Artefact", "slugify",
    # validation
    "ValidationReport", "validate_entry", "require_valid",
    # versioning
    "Version", "VersionHistory",
    # curation
    "Role", "User", "CurationPolicy", "CuratedRepository",
    # store (compatibility names)
    "RepositoryStore", "MemoryStore", "FileStore",
    # backends
    "StorageBackend", "MemoryBackend", "FileBackend", "SQLiteBackend",
    "BACKEND_SCHEMES", "create_backend",
    # scaling layer
    "ShardedBackend", "shard_index", "ReplicatedBackend",
    "AntiEntropyReport", "ReadWriteLock",
    # fault injection (the soak/chaos seam)
    "FaultInjector", "FlakyBackend", "InjectedFault", "SlowBackend",
    # resilience (deadlines, retries, breakers, probes)
    "Deadline", "deadline_scope", "current_deadline",
    "RetryBudget", "RetryPolicy", "CircuitBreaker", "HealthProbe",
    # service facade
    "RepositoryService", "RepositoryEvent", "RepositoryAPI", "API_METHODS",
    # the serving layer: async facade + HTTP server/client
    "AsyncRepositoryService", "RepositoryServer", "HTTPBackend",
    # the read path: codec + render cache
    "encode_entry", "decode_entry", "DecodeMemo", "RenderCache",
    # the unified query API
    "Q", "Query", "QueryPlan", "QueryResult", "QueryStats", "plan",
    # the query wire codec (what POST /query bodies carry)
    "query_to_dict", "query_from_dict", "plan_to_dict", "plan_from_dict",
    "result_to_dict", "result_from_dict", "stats_to_dict", "stats_from_dict",
    # search
    "SearchIndex", "SearchHit", "tokenize",
    # citation
    "REPOSITORY_URL", "cite_entry", "cite_repository", "cite_archive",
    "archive_manuscript", "entry_url",
    # export
    "render_wikidot", "render_markdown", "render_glossary_wikidot",
    "render_repository_markdown",
    # wiki sync
    "parse_wikidot", "normalise_entry", "entry_space", "wikidot_space",
    "WikiSyncLens", "make_wiki_sync_lens", "apply_wiki_edit",
    "render_wiki_pages",
    # glossary
    "GlossaryTerm", "glossary_terms", "known_property_names", "define",
]
