"""The §3 template for bx examples: fields, order, and optionality.

The paper proposes "the following standard fields and their order.
Optional fields are indicated by '?' in the fieldname; other fields should
be present, even if brief":

    Title, Version, Type, Overview, Models, Consistency,
    Consistency Restoration, Properties?, Variants?, Discussion,
    References?, Authors, Reviewers?, Comments, Artefacts?

This module renders that proposal as data: :data:`TEMPLATE` is the ordered
tuple of :class:`FieldSpec` values, and :class:`EntryType` enumerates the
§2 example classes (PRECISE, INDUSTRIAL, SKETCH — plus BENCHMARK, which the
paper agrees with the BenchmarX authors "may be seen as a distinct class
and therefore should be included").

The paper is deliberately non-prescriptive ("a suggested template but not a
barrier to varying it where good reasons to do so arise"), so validation
distinguishes *errors* (missing required fields, contradictory types) from
*warnings* (template divergences worth flagging); see
:mod:`repro.repository.validation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["EntryType", "FieldSpec", "TEMPLATE", "field_spec", "field_names"]


class EntryType(Enum):
    """The §2 classes of example, "because these classes may be quite
    different in character" (suggestion from the Banff 2013 meeting)."""

    #: Small, defined precisely, formalism-independent (§2: "the most
    #: useful entries").
    PRECISE = "PRECISE"

    #: Industrial-scale, explained via artefacts rather than full prose
    #: precision.
    INDUSTRIAL = "INDUSTRIAL"

    #: A situation where a bx clearly applies but details are not worked
    #: out; "of particular benefit to outsiders".
    SKETCH = "SKETCH"

    #: A benchmark, per the BenchmarX discussion ([1] in the paper).
    BENCHMARK = "BENCHMARK"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Type combinations the paper rules out: "PRECISE and SKETCH should be
#: mutually exclusive, but conceivably either might be combined with
#: INDUSTRIAL."
MUTUALLY_EXCLUSIVE_TYPES: frozenset[frozenset[EntryType]] = frozenset({
    frozenset({EntryType.PRECISE, EntryType.SKETCH}),
})


@dataclass(frozen=True)
class FieldSpec:
    """One template field: its name, position, optionality, and §3 gloss."""

    name: str
    required: bool
    description: str
    #: Attribute on :class:`repro.repository.entry.ExampleEntry` carrying
    #: the field's content.
    attribute: str

    @property
    def display_name(self) -> str:
        """The §3 field name, with '?' marking optional fields."""
        return self.name if self.required else f"{self.name}?"


#: The §3 template, in the paper's order.
TEMPLATE: tuple[FieldSpec, ...] = (
    FieldSpec(
        "Title", True,
        "A descriptive name, such as COMPOSERS, by which authors may "
        "refer to the example.",
        "title"),
    FieldSpec(
        "Version", True,
        "0.x for unreviewed examples.",
        "version"),
    FieldSpec(
        "Type", True,
        "For example, PRECISE, INDUSTRIAL, SKETCH.  PRECISE and SKETCH "
        "are mutually exclusive; either may combine with INDUSTRIAL.",
        "types"),
    FieldSpec(
        "Overview", True,
        "A thumbnail description of the example, not more than two or "
        "three sentences.",
        "overview"),
    FieldSpec(
        "Models", True,
        "Descriptions of the models, possibly with (formal) expressions "
        "of their meta-models.",
        "models"),
    FieldSpec(
        "Consistency", True,
        "Description of the consistency relationship between models, at "
        "least in natural language.",
        "consistency"),
    FieldSpec(
        "Consistency Restoration", True,
        "In which of the typically many possible ways inconsistencies "
        "are to be repaired; may be divided into forward and backward.",
        "restoration"),
    FieldSpec(
        "Properties", False,
        "Additional properties expected to hold of, or be exemplified "
        "by, the transformation; linked to the glossary.",
        "properties"),
    FieldSpec(
        "Variants", False,
        "Variation points: one base example in the main body, choice "
        "points described here.",
        "variants"),
    FieldSpec(
        "Discussion", True,
        "Origin, utility, interest, representativeness, related "
        "examples in the literature.",
        "discussion"),
    FieldSpec(
        "References", False,
        "Bibliographic data for the paper or papers from which the "
        "example is taken, or where it is discussed.",
        "references"),
    FieldSpec(
        "Authors", True,
        "Contributing author(s) of the example to the repository.",
        "authors"),
    FieldSpec(
        "Reviewers", False,
        "Examples remain provisional (version 0.x) until reviewed; "
        "reviewers are identified here for traceability and credit.",
        "reviewers"),
    FieldSpec(
        "Comments", True,
        "Where any member of the wiki can comment; comments may guide "
        "the development of a later version.",
        "comments"),
    FieldSpec(
        "Artefacts", False,
        "Formal descriptions, downloadable code, sample input and "
        "output, virtual machine instances, diagrams...",
        "artefacts"),
)


def field_spec(name: str) -> FieldSpec:
    """Look up a template field by its §3 name (without any '?')."""
    for spec in TEMPLATE:
        if spec.name == name:
            return spec
    known = ", ".join(spec.name for spec in TEMPLATE)
    raise KeyError(f"no template field {name!r}; template has: {known}")


def field_names(required_only: bool = False) -> list[str]:
    """The template field names in order."""
    return [spec.name for spec in TEMPLATE
            if spec.required or not required_only]
