"""Versioning for repository entries.

The paper's rules (§3 "Version", §5.2 "versioning and variation"):

* versions are "a linear sequence of numbered versions" on a single entry;
* "0.x for unreviewed examples" — an entry stays below 1.0 until it has
  been reviewed and approved;
* "keep old versions of examples available, so that old references can
  still be followed" — so a :class:`VersionHistory` never discards
  anything; and
* versioning (sequential evolution of one example) is distinguished from
  *variation* (related variants of similar examples), which lives in the
  entry's Variants field and in the catalogue's variant implementations —
  not here.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import VersioningError

__all__ = ["Version", "VersionHistory"]

_VERSION_RE = re.compile(r"^(\d+)\.(\d+)$")


@dataclass(frozen=True, order=True)
class Version:
    """A two-component version number, e.g. ``0.1`` or ``2.3``.

    Ordering is lexicographic on (major, minor), so ``0.9 < 0.10 < 1.0``.
    """

    major: int
    minor: int

    @staticmethod
    def parse(text: str) -> "Version":
        """Parse ``"major.minor"``; raises VersioningError on junk."""
        match = _VERSION_RE.match(text.strip())
        if not match:
            raise VersioningError(
                f"bad version {text!r}; expected 'major.minor' digits")
        return Version(int(match.group(1)), int(match.group(2)))

    @property
    def is_reviewed(self) -> bool:
        """True for 1.0 and above; "0.x for unreviewed examples"."""
        return self.major >= 1

    def next_minor(self) -> "Version":
        """The next version in the 0.x provisional line (or any line)."""
        return Version(self.major, self.minor + 1)

    def next_major(self) -> "Version":
        """The next major version (used when review approves an entry)."""
        return Version(self.major + 1, 0)

    def __str__(self) -> str:
        return f"{self.major}.{self.minor}"


class VersionHistory:
    """The linear, append-only sequence of versions of one entry.

    Each history item pairs a :class:`Version` with an opaque payload (the
    stored entry snapshot).  Old versions are never removed — the paper's
    promise that "old references can still be followed".
    """

    def __init__(self) -> None:
        self._items: list[tuple[Version, object]] = []

    def append(self, version: Version, payload: object) -> None:
        """Record a new version; must strictly increase."""
        if self._items and version <= self._items[-1][0]:
            raise VersioningError(
                f"version {version} does not increase on "
                f"{self._items[-1][0]} (versions form a linear sequence)")
        self._items.append((version, payload))

    def replace_latest(self, version: Version, payload: object) -> None:
        """Overwrite the latest payload without moving the version.

        The one sanctioned in-place change (comment attachment is not
        part of the versioned description); ``version`` must equal the
        current latest version.
        """
        self._require_nonempty()
        if version != self._items[-1][0]:
            raise VersioningError(
                "replace_latest must keep the version "
                f"({self._items[-1][0]}), got {version}")
        self._items[-1] = (version, payload)

    @property
    def latest_version(self) -> Version:
        self._require_nonempty()
        return self._items[-1][0]

    @property
    def latest(self) -> object:
        self._require_nonempty()
        return self._items[-1][1]

    def get(self, version: Version) -> object:
        """Retrieve the payload stored at an exact historical version."""
        for stored, payload in self._items:
            if stored == version:
                return payload
        raise VersioningError(
            f"no version {version} in history "
            f"(have: {', '.join(str(v) for v, _ in self._items)})")

    def versions(self) -> list[Version]:
        return [version for version, _payload in self._items]

    def __iter__(self) -> Iterator[tuple[Version, object]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def _require_nonempty(self) -> None:
        if not self._items:
            raise VersioningError("empty version history")
