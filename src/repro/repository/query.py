"""The unified query API: one typed, composable retrieval surface.

§5.2 of the paper asks whether people "will be able to find and refer
to relevant examples".  The answer grew in pieces — ranked free-text
``search()``, disconnected structured filters (``by_type``,
``by_property``, ``by_author``) — each materialising every entry in
Python regardless of backend.  This module replaces them with one
composable surface:

* a **query AST** built from :class:`Q` factories and combined with
  ``&`` / ``|`` / ``~``::

      Q.text("tree sync") & Q.type(EntryType.PRECISE) & ~Q.author("Ann")

* a **plan** (:func:`plan`) adding sort order and offset/limit
  pagination;
* a **result** (:class:`QueryResult`) carrying the page of ranked
  hits, the total match count, and facet counts over *all* matches;
* a shared, deterministic **evaluator** (:func:`evaluate_plan`) used by
  every backend that has no cheaper native plan, plus the merge logic
  (:func:`merge_results`) the sharded fan-out uses to reassemble
  globally correct pages from per-shard partial results;
* a **wire codec** (:func:`query_to_dict` / :func:`query_from_dict`,
  and the companion plan/stats/result pairs) turning every piece of a
  retrieval round-trip into JSON-ready plain dicts — what the HTTP
  serving layer (``repro.repository.server`` /
  ``repro.repository.client``) ships over the network.  The format is
  versioned implicitly by the ``op`` tags; an unknown tag fails loudly
  with :class:`~repro.core.errors.StorageError` instead of guessing.

Execution lives behind ``StorageBackend.execute_query`` so each backend
does the work where it is cheapest: SQLite compiles the filter tree to
SQL over indexed metadata tables and decodes only the page of payloads
it returns; the sharded backend fans out with *global* corpus
statistics and merge-sorts ranked partials; the replicated backend
routes to a healthy replica; everything else evaluates here, in Python,
over an inverted index.

Determinism is a design requirement: every backend must return the
*identical* :class:`QueryResult` for the same plan (the conformance
suite asserts it).  That pins down:

* **matching** — ``Q.text`` matches an entry containing *any* query
  term (OR, like the historical ``search()``); a text atom whose terms
  are all stopwords matches nothing; structured atoms match exactly
  (case-sensitive); ``~q`` matches the complement; ``&``/``|`` are
  boolean;
* **ranking** — only text atoms in *positive* position contribute
  score: the sum over their terms, in AST order, of
  ``idf(term) * weight(entry, term)`` where the weight is the
  field-boosted term frequency of :func:`entry_terms` and
  :func:`inverse_document_frequency` is computed from corpus-global
  statistics (:class:`QueryStats`) — the sharded path distributes the
  global stats so shard-local scores equal single-store scores;
* **order** — ``sort="relevance"`` is ``(-score, identifier)``;
  ``sort="identifier"`` is ascending identifier; ties cannot occur
  because identifiers are unique;
* **pagination** — ``offset``/``limit`` slice the sorted match list;
  ``total`` and ``facets`` always describe the full match set, so page
  ten of a result still reports the same totals as page one.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.errors import StorageError
from repro.repository.entry import ExampleEntry
from repro.repository.template import EntryType

__all__ = [
    "Q",
    "Query",
    "QueryPlan",
    "QueryResult",
    "QueryStats",
    "SearchHit",
    "SORT_ORDERS",
    "collect_positive_terms",
    "collect_terms",
    "entry_terms",
    "evaluate_plan",
    "inverse_document_frequency",
    "matches_entry",
    "merge_results",
    "plan",
    "plan_from_dict",
    "plan_to_dict",
    "query_from_dict",
    "query_to_dict",
    "result_from_dict",
    "result_to_dict",
    "stats_from_dict",
    "stats_to_dict",
    "tokenize",
]

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Words too common to be informative in this domain.
STOPWORDS = frozenset(
    "a an and are be been between by for from has have in is it its of on "
    "or that the this to we with".split()
)

#: Per-field score boosts: a title hit outranks a discussion hit.
FIELD_BOOSTS = (
    ("title", 4.0),
    ("overview", 2.0),
    ("models", 1.5),
    ("consistency", 1.0),
    ("discussion", 1.0),
)

#: The supported sort orders for a :class:`QueryPlan`.
SORT_ORDERS = ("relevance", "identifier")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens with stopwords removed."""
    return [
        token
        for token in _TOKEN_RE.findall(text.lower())
        if token not in STOPWORDS
    ]


def entry_terms(entry: ExampleEntry) -> dict[str, float]:
    """Aggregated, field-boosted term weights for one entry.

    This is the single definition of an entry's indexable text, shared
    by the in-memory :class:`~repro.repository.search.SearchIndex` and
    the SQLite terms table, so every execution path scores from
    identical weights.  Fields are visited in the fixed
    :data:`FIELD_BOOSTS` order, which also fixes the floating-point
    summation order.
    """
    fields = {
        "title": entry.title,
        "overview": entry.overview,
        "models": " ".join(
            f"{model.name} {model.description}" for model in entry.models
        ),
        "consistency": entry.consistency,
        "discussion": entry.discussion,
    }
    weights: dict[str, float] = {}
    for field_name, boost in FIELD_BOOSTS:
        for token in tokenize(fields[field_name]):
            weights[token] = weights.get(token, 0.0) + boost
    return weights


def inverse_document_frequency(document_frequency: int,
                               document_count: int) -> float:
    """Smoothed IDF: ubiquitous terms weigh ~1, rare terms weigh more.

    ``ln((N + 1) / (df + 1)) + 1`` — always positive, defined for
    ``df = 0``, and equal to 1.0 for a term present in every document,
    so a corpus-wide word (e.g. "model") can no longer dominate ranking
    the way raw term frequency let it.
    """
    return math.log((document_count + 1) / (document_frequency + 1)) + 1.0


# ----------------------------------------------------------------------
# The AST.
# ----------------------------------------------------------------------


class Query:
    """Base of the query AST; composes with ``&``, ``|`` and ``~``."""

    def __and__(self, other: "Query") -> "Query":
        return And((self, other))

    def __or__(self, other: "Query") -> "Query":
        return Or((self, other))

    def __invert__(self) -> "Query":
        return Not(self)


@dataclass(frozen=True)
class All(Query):
    """Matches every entry (the identity for ``&``)."""


@dataclass(frozen=True)
class Text(Query):
    """Free-text atom: matches entries containing *any* of the terms.

    The terms are the tokenized query string; an atom with no effective
    terms (all stopwords) matches nothing.  Text atoms are also what
    contributes relevance score — see the module docstring.
    """

    terms: tuple[str, ...]


@dataclass(frozen=True)
class TypeIs(Query):
    """Entries whose Type field includes the given class."""

    entry_type: EntryType


@dataclass(frozen=True)
class HasProperty(Query):
    """Entries claiming a property, optionally with a given polarity."""

    name: str
    holds: bool | None = None


@dataclass(frozen=True)
class ByAuthor(Query):
    """Entries a given author contributed (exact name match)."""

    author: str


@dataclass(frozen=True)
class IsReviewed(Query):
    """Entries at version >= 1.0 (``True``) or still 0.x (``False``)."""

    reviewed: bool = True


@dataclass(frozen=True)
class And(Query):
    parts: tuple[Query, ...]


@dataclass(frozen=True)
class Or(Query):
    parts: tuple[Query, ...]


@dataclass(frozen=True)
class Not(Query):
    part: Query


class Q:
    """Factory namespace for query atoms — the public spelling.

    >>> from repro.repository.template import EntryType
    >>> q = Q.text("composers") & Q.type(EntryType.PRECISE)
    >>> isinstance(q, Query)
    True
    """

    @staticmethod
    def all() -> Query:
        return All()

    @staticmethod
    def text(text: str) -> Query:
        return Text(tuple(tokenize(text)))

    @staticmethod
    def type(entry_type: EntryType) -> Query:
        return TypeIs(entry_type)

    @staticmethod
    def property(name: str, holds: bool | None = None) -> Query:
        return HasProperty(name, holds)

    @staticmethod
    def author(author: str) -> Query:
        return ByAuthor(author)

    @staticmethod
    def reviewed() -> Query:
        return IsReviewed(True)

    @staticmethod
    def provisional() -> Query:
        return IsReviewed(False)


def collect_terms(query: Query) -> list[str]:
    """Every text term in the tree, in AST order (with repeats)."""
    terms: list[str] = []
    _walk_terms(query, terms, positive_only=False, positive=True)
    return terms


def collect_positive_terms(query: Query) -> list[str]:
    """Text terms in *positive* position, in AST order (with repeats).

    These are the score-contributing terms: a term under an odd number
    of ``~`` only filters, it never ranks.
    """
    terms: list[str] = []
    _walk_terms(query, terms, positive_only=True, positive=True)
    return terms


def _walk_terms(query: Query, out: list[str], *, positive_only: bool,
                positive: bool) -> None:
    if isinstance(query, Text):
        if positive or not positive_only:
            out.extend(query.terms)
    elif isinstance(query, (And, Or)):
        for part in query.parts:
            _walk_terms(part, out, positive_only=positive_only,
                        positive=positive)
    elif isinstance(query, Not):
        _walk_terms(query.part, out, positive_only=positive_only,
                    positive=not positive)


# ----------------------------------------------------------------------
# Plans, stats, results.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QueryPlan:
    """One executable retrieval request: filter tree + order + page."""

    where: Query
    sort: str = "relevance"
    offset: int = 0
    limit: int | None = None

    def __post_init__(self) -> None:
        if self.sort not in SORT_ORDERS:
            raise StorageError(
                f"unknown sort order {self.sort!r}; "
                f"known: {', '.join(SORT_ORDERS)}")
        if self.offset < 0:
            raise StorageError(f"offset must be >= 0, got {self.offset}")
        if self.limit is not None and self.limit < 0:
            raise StorageError(f"limit must be >= 0, got {self.limit}")

    def page_end(self) -> int | None:
        """The exclusive end of the page, or None for unbounded."""
        if self.limit is None:
            return None
        return self.offset + self.limit


def plan(query: Query | str | None = None, *, sort: str = "relevance",
         offset: int = 0, limit: int | None = None) -> QueryPlan:
    """Build a :class:`QueryPlan`; a bare string means ``Q.text``."""
    if query is None:
        query = All()
    elif isinstance(query, str):
        query = Q.text(query)
    return QueryPlan(query, sort, offset, limit)


@dataclass(frozen=True)
class QueryStats:
    """Corpus-global statistics the ranker needs: N and per-term df.

    The sharded backend aggregates these across shards *before* fanning
    the plan out, so shard-local scoring uses global IDF and per-shard
    scores are directly comparable (and equal to a single store's).
    """

    document_count: int
    document_frequency: Mapping[str, int] = field(default_factory=dict)
    _idf_cache: dict = field(default_factory=dict, compare=False,
                             repr=False)

    def idf(self, term: str) -> float:
        cached = self._idf_cache.get(term)
        if cached is None:
            cached = inverse_document_frequency(
                self.document_frequency.get(term, 0), self.document_count)
            self._idf_cache[term] = cached
        return cached

    @staticmethod
    def merge(parts: "Iterable[QueryStats]") -> "QueryStats":
        """Sum stats from disjoint sub-corpora (shards)."""
        document_count = 0
        document_frequency: dict[str, int] = {}
        for part in parts:
            document_count += part.document_count
            for term, count in part.document_frequency.items():
                document_frequency[term] = (
                    document_frequency.get(term, 0) + count)
        return QueryStats(document_count, document_frequency)


@dataclass(frozen=True)
class SearchHit:
    """One ranked result: identifier, score, and the matched entry.

    (Historically defined in :mod:`repro.repository.search`, which
    still re-exports it.)
    """

    identifier: str
    score: float
    entry: ExampleEntry


#: The facet groups every result carries (possibly with empty dicts).
FACET_GROUPS = ("type", "property", "author", "review")


@dataclass(frozen=True)
class QueryResult:
    """One page of ranked hits plus whole-match-set statistics."""

    hits: tuple[SearchHit, ...]
    total: int
    facets: dict[str, dict[str, int]]

    @property
    def identifiers(self) -> list[str]:
        return [hit.identifier for hit in self.hits]

    @property
    def entries(self) -> list[ExampleEntry]:
        return [hit.entry for hit in self.hits]

    def __len__(self) -> int:
        return len(self.hits)

    def __iter__(self):
        return iter(self.hits)


def property_facet_label(name: str, holds: bool) -> str:
    """The facet bucket of one property claim: "correct" / "not undoable"."""
    return name if holds else f"not {name}"


def review_facet_label(reviewed: bool) -> str:
    """The facet bucket of a review state: "reviewed" / "provisional"."""
    return "reviewed" if reviewed else "provisional"


def facet_entry(facets: dict[str, dict[str, int]],
                entry: ExampleEntry) -> None:
    """Count one matching entry into every facet group.

    Each entry counts at most once per bucket (types, property claims
    and authors are de-duplicated), matching what the SQL path's
    primary-keyed metadata tables produce.
    """
    bucket = facets["type"]
    for entry_type in dict.fromkeys(entry.types):
        bucket[entry_type.value] = bucket.get(entry_type.value, 0) + 1
    bucket = facets["property"]
    labels = dict.fromkeys(property_facet_label(claim.name, claim.holds)
                           for claim in entry.properties)
    for label in labels:
        bucket[label] = bucket.get(label, 0) + 1
    bucket = facets["author"]
    for author in dict.fromkeys(entry.authors):
        bucket[author] = bucket.get(author, 0) + 1
    review = review_facet_label(entry.version.is_reviewed)
    facets["review"][review] = facets["review"].get(review, 0) + 1


def empty_facets() -> dict[str, dict[str, int]]:
    return {group: {} for group in FACET_GROUPS}


def merge_facets(parts: Iterable[dict[str, dict[str, int]]],
                 ) -> dict[str, dict[str, int]]:
    """Sum facet counts from disjoint sub-corpora (shards)."""
    merged = empty_facets()
    for part in parts:
        for group, buckets in part.items():
            target = merged.setdefault(group, {})
            for label, count in buckets.items():
                target[label] = target.get(label, 0) + count
    return merged


# ----------------------------------------------------------------------
# Matching and the shared evaluator.
# ----------------------------------------------------------------------


def matches_entry(query: Query, entry: ExampleEntry,
                  has_term: Callable[[str], bool]) -> bool:
    """Boolean evaluation of the filter tree over one entry.

    ``has_term(term)`` answers whether *this* entry contains the term
    (callers close over an inverted index or a per-entry weight map).
    """
    if isinstance(query, All):
        return True
    if isinstance(query, Text):
        return any(has_term(term) for term in query.terms)
    if isinstance(query, TypeIs):
        return query.entry_type in entry.types
    if isinstance(query, HasProperty):
        return any(
            claim.name == query.name
            and (query.holds is None or claim.holds == query.holds)
            for claim in entry.properties)
    if isinstance(query, ByAuthor):
        return query.author in entry.authors
    if isinstance(query, IsReviewed):
        return entry.version.is_reviewed == query.reviewed
    if isinstance(query, And):
        return all(matches_entry(part, entry, has_term)
                   for part in query.parts)
    if isinstance(query, Or):
        return any(matches_entry(part, entry, has_term)
                   for part in query.parts)
    if isinstance(query, Not):
        return not matches_entry(query.part, entry, has_term)
    raise StorageError(f"unknown query node {type(query).__name__}")


def score_entry(positive_terms: Sequence[str], stats: QueryStats,
                weights: Mapping[str, float]) -> float:
    """IDF-weighted score of one entry; summation order is fixed."""
    score = 0.0
    for term in positive_terms:
        weight = weights.get(term)
        if weight:
            score += stats.idf(term) * weight
    return score


class CorpusIndex:
    """The minimal searchable view the evaluator needs.

    ``SearchIndex`` implements the same three methods over its live
    postings; this class builds a throwaway one from raw entries for
    backends with no index of their own.
    """

    def __init__(self, entries: Iterable[ExampleEntry]) -> None:
        self._entries: dict[str, ExampleEntry] = {}
        self._postings: dict[str, dict[str, float]] = {}
        for entry in entries:
            identifier = entry.identifier
            self._entries[identifier] = entry
            for term, weight in entry_terms(entry).items():
                self._postings.setdefault(term, {})[identifier] = weight

    def document_count(self) -> int:
        return len(self._entries)

    def latest_entries(self) -> Mapping[str, ExampleEntry]:
        return self._entries

    def term_postings(self, term: str) -> Mapping[str, float]:
        return self._postings.get(term, {})


def corpus_stats(index, terms: Sequence[str]) -> QueryStats:
    """Document count and per-term document frequency from an index."""
    frequency = {term: len(index.term_postings(term))
                 for term in dict.fromkeys(terms)}
    return QueryStats(index.document_count(), frequency)


def evaluate_plan(index, query_plan: QueryPlan,
                  stats: QueryStats | None = None) -> QueryResult:
    """Execute a plan over any index-shaped object, deterministically.

    ``index`` needs ``document_count()``, ``latest_entries()`` and
    ``term_postings(term)`` — satisfied by both
    :class:`~repro.repository.search.SearchIndex` and
    :class:`CorpusIndex`.  ``stats`` defaults to this index's own
    corpus statistics; the sharded fan-out passes global ones instead.
    """
    positive_terms = collect_positive_terms(query_plan.where)
    if stats is None:
        stats = corpus_stats(index, collect_terms(query_plan.where))

    matched: list[tuple[float, str, ExampleEntry]] = []
    facets = empty_facets()
    for identifier, entry in index.latest_entries().items():
        def has_term(term: str, identifier: str = identifier) -> bool:
            return identifier in index.term_postings(term)

        if not matches_entry(query_plan.where, entry, has_term):
            continue
        weights = {term: index.term_postings(term).get(identifier, 0.0)
                   for term in dict.fromkeys(positive_terms)}
        matched.append((score_entry(positive_terms, stats, weights),
                        identifier, entry))
        facet_entry(facets, entry)

    matched.sort(key=_sort_key(query_plan.sort))
    page = matched[query_plan.offset:query_plan.page_end()]
    hits = tuple(SearchHit(identifier, score, entry)
                 for score, identifier, entry in page)
    return QueryResult(hits=hits, total=len(matched), facets=facets)


def _sort_key(sort: str):
    if sort == "identifier":
        return lambda item: item[1]
    return lambda item: (-item[0], item[1])


def merge_results(parts: Sequence[QueryResult],
                  query_plan: QueryPlan) -> QueryResult:
    """Reassemble per-shard partial results into one global page.

    Each part must have been produced for the *same* filter and sort
    with ``offset=0`` and a limit of at least this plan's
    ``offset + limit`` (or unbounded), so the global page is fully
    contained in the union of the partial pages.  Totals and facets are
    additive because shards hold disjoint identifiers.
    """
    pooled = [(hit.score, hit.identifier, hit.entry)
              for part in parts for hit in part.hits]
    pooled.sort(key=_sort_key(query_plan.sort))
    page = pooled[query_plan.offset:query_plan.page_end()]
    hits = tuple(SearchHit(identifier, score, entry)
                 for score, identifier, entry in page)
    return QueryResult(
        hits=hits,
        total=sum(part.total for part in parts),
        facets=merge_facets(part.facets for part in parts),
    )


# ----------------------------------------------------------------------
# The wire codec: every piece of a retrieval round-trip as plain dicts.
# ----------------------------------------------------------------------


def query_to_dict(query: Query) -> dict:
    """Serialise a filter tree to a JSON-ready dict (op-tagged nodes).

    The inverse of :func:`query_from_dict`; together they are the
    Q-AST wire format the HTTP serving layer ships in ``POST /query``
    bodies.  Every node carries an ``"op"`` tag; composites nest their
    children under ``"parts"`` / ``"part"``.
    """
    if isinstance(query, All):
        return {"op": "all"}
    if isinstance(query, Text):
        return {"op": "text", "terms": list(query.terms)}
    if isinstance(query, TypeIs):
        return {"op": "type", "type": query.entry_type.value}
    if isinstance(query, HasProperty):
        return {"op": "property", "name": query.name, "holds": query.holds}
    if isinstance(query, ByAuthor):
        return {"op": "author", "author": query.author}
    if isinstance(query, IsReviewed):
        return {"op": "reviewed", "reviewed": query.reviewed}
    if isinstance(query, And):
        return {"op": "and",
                "parts": [query_to_dict(part) for part in query.parts]}
    if isinstance(query, Or):
        return {"op": "or",
                "parts": [query_to_dict(part) for part in query.parts]}
    if isinstance(query, Not):
        return {"op": "not", "part": query_to_dict(query.part)}
    raise StorageError(f"unknown query node {type(query).__name__}")


def query_from_dict(data: object) -> Query:
    """Rebuild a filter tree from its wire form; loud on junk.

    Every malformed shape — a non-dict node, a missing or unknown
    ``op``, a bad entry-type value — raises
    :class:`~repro.core.errors.StorageError` so a server never
    half-executes a plan it misread.
    """
    if not isinstance(data, dict):
        raise StorageError(
            f"query node is not an object: {type(data).__name__}")
    op = data.get("op")
    try:
        if op == "all":
            return All()
        if op == "text":
            terms = data["terms"]
            # A bare string would iterate per character and silently
            # match garbage; the wire format is a list, full stop.
            if not isinstance(terms, list) or not all(
                    isinstance(term, str) for term in terms):
                raise StorageError("text terms must be a list of strings")
            return Text(tuple(terms))
        if op == "type":
            return TypeIs(EntryType(data["type"]))
        if op == "property":
            holds = data.get("holds")
            if holds is not None and not isinstance(holds, bool):
                raise StorageError("property 'holds' must be bool or null")
            name = data["name"]
            if not isinstance(name, str):
                raise StorageError("property 'name' must be a string")
            return HasProperty(name, holds)
        if op == "author":
            author = data["author"]
            if not isinstance(author, str):
                raise StorageError("author must be a string")
            return ByAuthor(author)
        if op == "reviewed":
            reviewed = data.get("reviewed", True)
            # bool() would turn the string "false" into True — the
            # exact silent misread the codec promises never to make.
            if not isinstance(reviewed, bool):
                raise StorageError("'reviewed' must be a boolean")
            return IsReviewed(reviewed)
        if op == "and":
            return And(tuple(query_from_dict(part)
                             for part in data["parts"]))
        if op == "or":
            return Or(tuple(query_from_dict(part)
                            for part in data["parts"]))
        if op == "not":
            return Not(query_from_dict(data["part"]))
    except StorageError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise StorageError(
            f"malformed query node for op {op!r}: {error}") from error
    raise StorageError(f"unknown query op {op!r}")


def plan_to_dict(query_plan: QueryPlan) -> dict:
    """One :class:`QueryPlan` as a JSON-ready dict (filter + page)."""
    return {
        "where": query_to_dict(query_plan.where),
        "sort": query_plan.sort,
        "offset": query_plan.offset,
        "limit": query_plan.limit,
    }


def plan_from_dict(data: object) -> QueryPlan:
    """Rebuild a plan; the QueryPlan validators re-run on the way in."""
    if not isinstance(data, dict):
        raise StorageError(
            f"query plan is not an object: {type(data).__name__}")
    offset = data.get("offset", 0)
    limit = data.get("limit")
    if not isinstance(offset, int) or isinstance(offset, bool):
        raise StorageError(f"plan offset must be an integer, got {offset!r}")
    if limit is not None and (not isinstance(limit, int)
                              or isinstance(limit, bool)):
        raise StorageError(f"plan limit must be an integer, got {limit!r}")
    return QueryPlan(
        where=query_from_dict(data.get("where", {"op": "all"})),
        sort=data.get("sort", "relevance"),
        offset=offset,
        limit=limit,
    )


def stats_to_dict(stats: QueryStats) -> dict:
    """Corpus statistics as a JSON-ready dict (counts only)."""
    return {
        "document_count": stats.document_count,
        "document_frequency": dict(stats.document_frequency),
    }


def stats_from_dict(data: object) -> QueryStats:
    """Rebuild :class:`QueryStats`; the IDF cache starts empty."""
    if not isinstance(data, dict):
        raise StorageError(
            f"query stats is not an object: {type(data).__name__}")
    try:
        count = int(data["document_count"])
        frequency = {str(term): int(df)
                     for term, df in data["document_frequency"].items()}
    except (KeyError, TypeError, ValueError) as error:
        raise StorageError(f"malformed query stats: {error}") from error
    return QueryStats(count, frequency)


def result_to_dict(result: QueryResult) -> dict:
    """A full :class:`QueryResult` as a JSON-ready dict.

    Hits carry the complete entry dict (scores survive the JSON float
    round-trip exactly: Python serialises the shortest repr that
    parses back to the same double).
    """
    return {
        "hits": [{"identifier": hit.identifier,
                  "score": hit.score,
                  "entry": hit.entry.to_dict()}
                 for hit in result.hits],
        "total": result.total,
        "facets": {group: dict(buckets)
                   for group, buckets in result.facets.items()},
    }


def result_from_dict(data: object) -> QueryResult:
    """Rebuild a :class:`QueryResult`, hydrating the hit entries."""
    if not isinstance(data, dict):
        raise StorageError(
            f"query result is not an object: {type(data).__name__}")
    try:
        hits = tuple(
            SearchHit(hit["identifier"], float(hit["score"]),
                      ExampleEntry.from_dict(hit["entry"]))
            for hit in data["hits"])
        total = int(data["total"])
        facets = {str(group): {str(label): int(count)
                               for label, count in buckets.items()}
                  for group, buckets in data["facets"].items()}
    except (KeyError, TypeError, ValueError) as error:
        raise StorageError(f"malformed query result: {error}") from error
    for group in FACET_GROUPS:
        facets.setdefault(group, {})
    return QueryResult(hits=hits, total=total, facets=facets)
