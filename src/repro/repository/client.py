"""HTTPBackend: the repository's own HTTP API as a StorageBackend.

The closing piece of the serving loop: the server
(:mod:`repro.repository.server`) exposes a
:class:`~repro.repository.service.RepositoryService` over HTTP, and
this client implements the full
:class:`~repro.repository.backends.StorageBackend` contract *against*
that API — so a remote repository plugs in anywhere a local backend
does.  That includes wrapping it in another ``RepositoryService`` (a
read-through cache in front of a remote store), sharding across several
servers, or handing it straight to the conformance suite: because the
interface is the same, ``tests/repository/test_backends.py`` holds the
whole wire round-trip to the storage contract without a single
HTTP-specific assertion.

Error fidelity is the point of the wire format: the server transmits
the exception's class name plus its structured arguments, and
:func:`_raise_remote_error` re-raises the *same*
:mod:`repro.core.errors` class the in-process backend would have
raised — ``EntryNotFound`` with its identifier and version,
``DuplicateEntry`` with its identifier, ``StorageError`` and friends
with their message.  An unrecognised error type degrades to
``StorageError`` rather than crossing the boundary as something
un-catchable.

Connections are keep-alive ``http.client.HTTPConnection`` objects, one
per calling thread (the connection object is not thread-safe; a
thread-local keeps the hot path allocation-free).  A connection idle
past ``idle_reuse_limit`` is replaced *before* reuse — servers close
idle connections, and that close often surfaces only at response time,
where a write cannot be safely retried.  Residual failures run under
the sanctioned :class:`~repro.repository.resilience.RetryPolicy`
(jittered backoff, a shared retry budget, ``Retry-After`` pacing, the
ambient deadline as a hard stop); *which* failures retry stays
phase-aware: a failed send retries for any method (the request never
reached the server), a failed response only for idempotent GETs and
for a clean ``RemoteDisconnected`` (the stale keep-alive signature:
the peer closed without sending so much as a status line, so the
request was not processed), and a 503 shed for any method (refused
before admission).  Any other response failure on a write raises as
:class:`~repro.core.errors.BackendUnavailableError`, because its fate
is genuinely unknown.  An ambient
:class:`~repro.repository.resilience.Deadline` caps every attempt's
socket timeout and rides the wire as ``X-Deadline-Ms``.

The wire itself is kept cheap in both directions (mirroring the
server's side of the protocol):

* **Conditional point reads** — every 200 from ``GET /entries/{id}``
  carries an ``ETag``; the client remembers ``path -> (etag, entry)``
  in a bounded validation cache and revalidates with
  ``If-None-Match``.  A 304 answer returns the cached snapshot with
  zero JSON decoded on either end.
* **Compression** — every request advertises ``Accept-Encoding:
  gzip`` and transparently inflates compressed responses; request
  bodies above the shared threshold are gzipped on the way out.
* **Streaming batches** — ``get_many``/``versions_many`` opt into the
  server's chunked NDJSON bodies (``Accept: application/x-ndjson``)
  and decode page by page; :meth:`HTTPBackend.iter_many` exposes the
  incremental form directly, yielding entries as chunks arrive so a
  10k-identifier bulk read never buffers the whole corpus here.  Warm
  reads skip decoding entirely through a byte-keyed
  :class:`~repro.repository.codec.LineMemo` (the codec is
  deterministic, so identical bytes are the same snapshot).  A server
  that answers plain JSON (no streaming support) is handled by
  falling back to the buffered decode, and ``stream_batches=False``
  pins that behaviour for comparison.
"""

from __future__ import annotations

import gzip
import http.client
import json
import socket
import threading
import time
import weakref
import zlib
from typing import Iterable, Iterator, Sequence
from urllib.parse import quote, urlsplit

from repro.core.errors import (
    BackendUnavailableError,
    CircuitOpenError,
    CurationError,
    DeadlineExceeded,
    DuplicateEntry,
    EntryNotFound,
    StorageError,
    TemplateError,
    VersioningError,
    WikiSyncError,
)
from repro.repository.backends.base import (
    GetRequest,
    StorageBackend,
    _split_request,
)
from repro.repository.codec import (
    GZIP_LEVEL,
    GZIP_MIN_BYTES,
    NDJSON_TYPE,
    LineMemo,
    decode_entry,
)
from repro.repository.codec import _KeyedLRU
from repro.repository.concurrency import Mutex
from repro.repository.entry import ExampleEntry
from repro.repository.query import (
    QueryPlan,
    QueryResult,
    QueryStats,
    plan_to_dict,
    result_from_dict,
    stats_from_dict,
    stats_to_dict,
)
from repro.repository.resilience import (
    Deadline,
    RetryBudget,
    RetryPolicy,
    current_deadline,
)
from repro.repository.versioning import Version

__all__ = ["HTTPBackend"]

#: Error classes the server may name; message-only constructors except
#: for the two reconstructed with their structured arguments below.
_ERROR_CLASSES = {
    cls.__name__: cls
    for cls in (
        StorageError,
        VersioningError,
        TemplateError,
        CurationError,
        WikiSyncError,
        DeadlineExceeded,
    )
}

def _raise_remote_error(status: int, payload: object) -> None:
    """Re-raise a wire error as the class the server named."""
    detail = payload.get("error") if isinstance(payload, dict) else None
    if not isinstance(detail, dict):
        raise StorageError(f"server returned HTTP {status} with no "
                           f"error detail: {payload!r}")
    name = detail.get("type")
    message = detail.get("message", f"HTTP {status}")
    if name == "EntryNotFound":
        raise EntryNotFound(
            detail.get("identifier", "?"), detail.get("version")
        )
    if name == "DuplicateEntry":
        raise DuplicateEntry(detail.get("identifier", "?"))
    # Reconstructed with their ``retry_after`` pacing hint intact, so a
    # retry policy on this side of the wire paces itself off the server's.
    if name == "CircuitOpenError":
        raise CircuitOpenError(message, retry_after=detail.get("retry_after"))
    if name == "BackendUnavailableError":
        raise BackendUnavailableError(
            message, retry_after=detail.get("retry_after")
        )
    raise _ERROR_CLASSES.get(name, StorageError)(message)


def _transport_error(phase: str, base_url: str, error: Exception,
                     deadline: Deadline | None) -> StorageError:
    """Classify one connection-level failure into the typed taxonomy.

    Raw ``ConnectionRefusedError`` / ``socket.timeout`` / HTTP protocol
    errors all become :class:`BackendUnavailableError` (tagged with the
    ``phase`` — send or response — that failed, which is what decides
    retryability), except a timeout that fired because the *ambient
    deadline* ran out: that is the caller's clock expiring, reported as
    :class:`DeadlineExceeded` and never retried.
    """
    if (isinstance(error, TimeoutError)
            and deadline is not None and deadline.expired):
        return DeadlineExceeded(
            f"deadline expired awaiting {base_url} ({phase}): {error}")
    if phase == "send":
        message = f"repository server unreachable at {base_url}: {error}"
    else:
        message = (f"no response from the repository server at "
                   f"{base_url}: {error}")
    wrapped = BackendUnavailableError(message)
    wrapped.phase = phase
    wrapped.disconnect = isinstance(error, http.client.RemoteDisconnected)
    return wrapped


def _shed_error(headers, raw: bytes) -> StorageError:
    """A 503: the server refused admission *before* doing any work.

    Safe to retry for any method (the request was never processed);
    the ``Retry-After`` header (or the error payload's ``retry_after``)
    becomes the policy's pacing hint.
    """
    retry_after: float | None = None
    header = headers.get("Retry-After")
    if header is not None:
        try:
            retry_after = float(header)
        except ValueError:
            retry_after = None
    message = "server refused admission (HTTP 503)"
    try:
        detail = json.loads(raw).get("error", {})
        message = detail.get("message", message)
        if retry_after is None:
            retry_after = detail.get("retry_after")
    except (ValueError, AttributeError):
        pass
    error = BackendUnavailableError(message, retry_after=retry_after)
    error.shed = True
    return error


class _ValidationCache(_KeyedLRU):
    """Conditional-read state: request path -> (etag, entry snapshot).

    The ETag embeds the server's change token, so this needs no
    invalidation protocol: any write — this client's or anyone
    else's — changes the token, the next revalidation misses (one full
    200), and the stale pair is replaced.  Entries are immutable value
    objects, so handing the cached snapshot back on a 304 is safe.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        super().__init__(maxsize)

    def get(self, path: str) -> "tuple[str, ExampleEntry] | None":
        return self._get(path)

    def put(self, path: str, etag: str, entry: ExampleEntry) -> None:
        self._put(path, (etag, entry))


class HTTPBackend(StorageBackend):
    """A remote repository server, spoken to through StorageBackend."""

    #: Query plans execute on the server (which pushes them further
    #: down or evaluates its own index) — never materialised here, so
    #: from this side of the wire the path is as "native" as SQLite's.
    supports_native_query = True

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 idle_reuse_limit: float = 25.0,
                 stream_batches: bool = True,
                 retry_policy: RetryPolicy | None = None) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise StorageError(
                f"HTTPBackend needs an http://host:port URL, "
                f"got {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self.host = split.hostname
        self.port = split.port or 80
        #: A path in the base URL (a reverse-proxy mount like
        #: ``http://host/repo``) is honoured: every request path is
        #: sent under it, rather than silently aimed at the root.
        self._prefix = split.path.rstrip("/")
        self.timeout = timeout
        #: A kept-alive connection idle longer than this is replaced
        #: *before* reuse.  Servers close idle connections (this
        #: repository's handler timeout is 30s), and the close race
        #: usually surfaces only at response time — where a write
        #: cannot be safely retried.  Refreshing proactively below the
        #: server's horizon keeps writes off that path entirely.
        self.idle_reuse_limit = idle_reuse_limit
        self._local = threading.local()
        #: Weak references to every live connection, so close() can
        #: drop them all (thread-locals only reach the closing thread's
        #: own).  Weak, not strong: a thread's death drops its
        #: thread-local — the sole strong reference — so the socket is
        #: freed then instead of pinned here until close() (a
        #: long-lived proxy serving many short-lived handler threads
        #: would otherwise leak one descriptor per thread).
        self._connections: weakref.WeakSet = weakref.WeakSet()
        self._connections_mutex = Mutex()
        self._closed = False
        #: Whether batch reads use the server's chunked NDJSON bodies
        #: (False pins the PR-5 buffered JSON path — the comparison
        #: baseline, and the escape hatch if a proxy mangles chunking).
        self.stream_batches = stream_batches
        #: path -> (etag, entry): the conditional-read state for get().
        self._validation = _ValidationCache()
        #: raw NDJSON line -> hydrated entry: the streamed-read decode
        #: fast path (byte-identical lines are the same snapshot).
        self._line_memo = LineMemo()
        #: The sanctioned retry mechanism (replacing the bespoke
        #: two-attempt loops this client used to carry): decorrelated
        #: jitter so synchronized clients do not re-storm the server,
        #: and a shared retry *budget* so a hard outage degrades to a
        #: trickle of retries instead of tripling every caller's
        #: traffic.  Which failures are retried at all stays
        #: phase-aware (:meth:`_retryable`).
        if retry_policy is None:
            retry_policy = RetryPolicy(
                max_attempts=3, base_delay=0.02, max_delay=1.0,
                budget=RetryBudget(capacity=16.0, refill_rate=0.2),
            )
        self.retry_policy = retry_policy

    # ------------------------------------------------------------------
    # The wire.
    # ------------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if (connection is not None
                and time.monotonic() - self._local.last_used
                > self.idle_reuse_limit):
            # The server has likely closed this idle connection; its
            # FIN only surfaces at response time, too late for a safe
            # write retry.  Replace it up front.
            self._drop_connection()
            connection = None
        if connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            # A request is two small writes (header block, body); with
            # Nagle on, the second stalls behind the server's delayed
            # ACK (~40ms each on loopback).  The server disables Nagle
            # on its side too.
            connection.connect()
            connection.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._local.connection = connection
            with self._connections_mutex:
                self._connections.add(connection)
        self._local.last_used = time.monotonic()
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None
            with self._connections_mutex:
                self._connections.discard(connection)

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> dict:
        status, _, raw = self._round_trip(method, path, payload)
        return self._decode(status, raw)

    @staticmethod
    def _prepare_body(payload: dict | None) -> "tuple[bytes | None, dict]":
        """Encode one request body, gzipping past the wire threshold."""
        headers = {"Accept-Encoding": "gzip"}
        if payload is None:
            return None, headers
        body = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
        if len(body) >= GZIP_MIN_BYTES:
            body = gzip.compress(body, compresslevel=GZIP_LEVEL)
            headers["Content-Encoding"] = "gzip"
        return body, headers

    def _round_trip(
        self, method: str, path: str, payload: dict | None = None,
        extra_headers: dict | None = None,
    ) -> "tuple[int, http.client.HTTPMessage, bytes]":
        """One buffered exchange: (status, headers, inflated body).

        Attempts run under :attr:`retry_policy` (jittered backoff, a
        shared retry budget, ``Retry-After`` pacing, the ambient
        deadline as a hard stop).  *Which* failures retry at all stays
        phase-aware, decided by :meth:`_retryable`:

        * connect/*send* failed — the request never reached the
          server, so a retry on a fresh connection is safe for any
          method;
        * *response* failed — idempotent GETs retry, and so does a
          clean ``RemoteDisconnected`` for any method: the peer closed
          without emitting even a status line, which is the signature
          of a keep-alive socket that went stale under us — the
          request was never processed.  Anything else on a write
          raises, because its fate is genuinely unknown;
        * the server *shed* the request (503 before admission) — never
          processed, so any method retries, paced by ``Retry-After``.
        """
        if self._closed:
            raise StorageError("HTTPBackend is closed")
        body, headers = self._prepare_body(payload)
        if extra_headers:
            headers.update(extra_headers)
        return self.retry_policy.call(
            lambda: self._exchange(method, path, body, headers),
            classify=lambda error: self._retryable(method, error),
        )

    def _exchange(
        self, method: str, path: str, body: "bytes | None", headers: dict,
    ) -> "tuple[int, http.client.HTTPMessage, bytes]":
        """One attempt: send, await the response, inflate the body.

        The ambient deadline, when one is set, caps the socket timeout
        for this attempt and rides the wire as ``X-Deadline-Ms`` so
        the server (and anything behind it) inherits the same clock.
        """
        deadline = current_deadline()
        if deadline is not None:
            deadline.check(f"{method} {path}")
            headers = dict(headers)
            headers["X-Deadline-Ms"] = str(
                max(1, int(deadline.remaining() * 1000)))
        try:
            connection = self._connection()
            # Per-attempt timeout: the deadline's remaining time when
            # one governs, the configured default otherwise (also
            # resets any tighter cap a previous attempt left behind).
            connection.sock.settimeout(
                deadline.cap(self.timeout) if deadline is not None
                else self.timeout)
            connection.request(method, self._prefix + path,
                               body=body, headers=headers)
        except (OSError, http.client.HTTPException) as error:
            self._drop_connection()
            raise _transport_error(
                "send", self.base_url, error, deadline) from error
        try:
            response = connection.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as error:
            self._drop_connection()
            raise _transport_error(
                "response", self.base_url, error, deadline) from error
        if response.status == 503:
            raise _shed_error(response.headers,
                              self._inflate(response, raw))
        return (response.status, response.headers,
                self._inflate(response, raw))

    @staticmethod
    def _retryable(method: str, error: BaseException) -> bool:
        """Phase-aware retry decision (see :meth:`_round_trip`)."""
        if not isinstance(error, BackendUnavailableError):
            return False
        if getattr(error, "shed", False):
            return True  # refused before admission: never processed
        phase = getattr(error, "phase", None)
        if phase == "send":
            return True
        if phase == "response":
            return method == "GET" or getattr(error, "disconnect", False)
        return False

    @staticmethod
    def _inflate(response, raw: bytes) -> bytes:
        """Undo the response's Content-Encoding (identity or gzip)."""
        coding = (response.headers.get("Content-Encoding") or "identity")
        coding = coding.strip().lower()
        if coding in ("", "identity") or not raw:
            return raw
        if coding != "gzip":
            raise StorageError(
                f"server sent unsupported Content-Encoding {coding!r}")
        try:
            return gzip.decompress(raw)
        except (OSError, zlib.error) as error:
            raise StorageError(
                f"server sent a bad gzip body: {error}") from error

    @staticmethod
    def _decode(status: int, raw: bytes) -> dict:
        try:
            payload = json.loads(raw) if raw else {}
        except ValueError as error:
            raise StorageError(
                f"server sent malformed JSON (HTTP {status}): "
                f"{error}") from error
        if status >= 400:
            _raise_remote_error(status, payload)
        if not isinstance(payload, dict):
            raise StorageError(
                f"server response is not an object: "
                f"{type(payload).__name__}")
        return payload

    @staticmethod
    def _entry_path(identifier: str, suffix: str = "") -> str:
        return f"/entries/{quote(identifier, safe='')}{suffix}"

    # ------------------------------------------------------------------
    # Point operations.
    # ------------------------------------------------------------------

    def identifiers(self) -> list[str]:
        return self._request("GET", "/entries")["identifiers"]

    def versions(self, identifier: str) -> list[Version]:
        payload = self._request(
            "GET", self._entry_path(identifier, "/versions")
        )
        return [Version.parse(text) for text in payload["versions"]]

    def get(self, identifier: str,
            version: Version | None = None) -> ExampleEntry:
        path = self._entry_path(identifier)
        if version is not None:
            path += f"?version={version}"
        # Conditional read: revalidate the cached snapshot by ETag.  A
        # 304 costs a header exchange — no JSON is encoded, shipped or
        # decoded on either end.
        cached = self._validation.get(path)
        conditional = ({"If-None-Match": cached[0]}
                       if cached is not None else None)
        status, headers, raw = self._round_trip("GET", path,
                                                extra_headers=conditional)
        if status == 304 and cached is not None:
            return cached[1]
        payload = self._decode(status, raw)
        entry = ExampleEntry.from_dict(payload["entry"])
        etag = headers.get("ETag")
        if etag:
            self._validation.put(path, etag, entry)
        return entry

    def has(self, identifier: str) -> bool:
        return self._request(
            "GET", self._entry_path(identifier, "/has")
        )["has"]

    def add(self, entry: ExampleEntry) -> None:
        self._request("POST", "/entries", {"entry": entry.to_dict()})

    def add_version(self, entry: ExampleEntry) -> None:
        self._request(
            "POST",
            self._entry_path(entry.identifier, "/versions"),
            {"entry": entry.to_dict()},
        )

    def replace_latest(self, entry: ExampleEntry) -> None:
        self._request(
            "PUT",
            self._entry_path(entry.identifier),
            {"entry": entry.to_dict()},
        )

    def entry_count(self) -> int:
        # GET /counter, not /stats: the stats payload recomputes the
        # full (composite-recursive) cache merge per call, and these
        # two integers sit on hot paths.
        return self._request("GET", "/counter")["entry_count"]

    # ------------------------------------------------------------------
    # Batch operations: one request each.
    # ------------------------------------------------------------------

    def add_many(self, entries: Iterable[ExampleEntry]) -> int:
        batch = [entry.to_dict() for entry in entries]
        return self._request("POST", "/entries", {"entries": batch})["count"]

    def get_many(self,
                 requests: Sequence[GetRequest]) -> list[ExampleEntry]:
        if self.stream_batches:
            return list(self.iter_many(requests))
        payload = self._request(
            "POST", "/batch/get", {"requests": self._wire_requests(requests)}
        )
        return [ExampleEntry.from_dict(data)
                for data in payload["entries"]]

    def iter_many(self,
                  requests: Sequence[GetRequest]) -> Iterator[ExampleEntry]:
        """Resolve many entries incrementally, in request order.

        Entries are yielded as the server's NDJSON chunks arrive — a
        10k-identifier bulk read holds one page of lines here, never
        the whole corpus as one JSON body.  Warm lines skip decoding
        through the byte-keyed :class:`LineMemo`.  Abandoning the
        iterator mid-stream drops the (now desynced) connection; the
        next request simply opens a fresh one.
        """
        payload = {"requests": self._wire_requests(requests)}
        for kind, value in self._stream_lines("/batch/get", payload):
            if kind == "payload":
                # A non-streaming server answered the buffered body.
                for data in value["entries"]:
                    yield ExampleEntry.from_dict(data)
                return
            entry = self._line_memo.get(value)
            if entry is None:
                entry = decode_entry(value)
                self._line_memo.put(value, entry)
            yield entry

    @staticmethod
    def _wire_requests(requests: Sequence[GetRequest]) -> list:
        wire = []
        for request in requests:
            identifier, version = _split_request(request)
            wire.append(
                [identifier, str(version) if version is not None else None]
            )
        return wire

    def versions_many(
            self, identifiers: Sequence[str]) -> dict[str, list[Version]]:
        if self.stream_batches:
            listing: dict[str, list[Version]] = {}
            for kind, value in self._stream_lines(
                    "/batch/versions", {"identifiers": list(identifiers)}):
                if kind == "payload":
                    listing = value["versions"]
                    return {
                        identifier: [Version.parse(text)
                                     for text in versions]
                        for identifier, versions in listing.items()
                    }
                data = json.loads(value)
                listing[data["identifier"]] = [
                    Version.parse(text) for text in data["versions"]
                ]
            return listing
        payload = self._request(
            "POST", "/batch/versions", {"identifiers": list(identifiers)}
        )
        return {
            identifier: [Version.parse(text) for text in versions]
            for identifier, versions in payload["versions"].items()
        }

    def _stream_lines(self, path: str, payload: dict):
        """POST one batch and yield its NDJSON data lines as they land.

        Yields ``("line", bytes)`` per data line; a server that does
        not stream yields one ``("payload", dict)`` instead (the
        buffered body, decoded).  The terminating frame protocol makes
        truncation detectable: a successful stream ends with
        ``{"_stream": "end", "count": n}`` whose count must match the
        lines seen; a server-side failure after the headers arrives as
        ``{"_stream": "error", ...}`` and re-raises exactly like a
        buffered error response; an EOF with neither is an error.
        """
        if self._closed:
            raise StorageError("HTTPBackend is closed")
        body, headers = self._prepare_body(payload)
        headers["Accept"] = NDJSON_TYPE
        # Only the prologue (send + status line) retries; once body
        # chunks may have been consumed a retry could replay lines.
        response = self.retry_policy.call(
            lambda: self._open_stream(path, body, headers),
            classify=lambda error: self._retryable("POST", error),
        )
        if response.status >= 400:
            raw = self._inflate(response, response.read())
            self._decode(response.status, raw)  # raises the wire error
            raise StorageError(  # pragma: no cover - decode always raises
                f"server answered HTTP {response.status}")
        content_type = response.headers.get("Content-Type", "")
        if NDJSON_TYPE not in content_type.lower():
            raw = self._inflate(response, response.read())
            yield ("payload", self._decode(response.status, raw))
            return
        coding = (response.headers.get("Content-Encoding")
                  or "identity").strip().lower()
        inflater = (zlib.decompressobj(16 + zlib.MAX_WBITS)
                    if coding == "gzip" else None)
        buffer = bytearray()
        lines_seen = 0
        end_count: int | None = None
        error_frame: dict | None = None
        complete = False
        try:
            while end_count is None and error_frame is None:
                chunk = response.read(65536)
                if not chunk:
                    break
                if inflater is not None:
                    chunk = inflater.decompress(chunk)
                buffer += chunk
                start = 0
                while end_count is None and error_frame is None:
                    newline = buffer.find(b"\n", start)
                    if newline < 0:
                        break
                    line = bytes(buffer[start:newline])
                    start = newline + 1
                    if not line:
                        continue
                    if line.startswith(b'{"_stream"'):
                        frame = json.loads(line)
                        marker = frame.get("_stream")
                        if marker == "end":
                            end_count = frame.get("count")
                        elif marker == "error":
                            error_frame = frame
                        else:
                            raise StorageError(
                                f"unknown stream frame: {line!r}")
                    else:
                        lines_seen += 1
                        yield ("line", line)
                del buffer[:start]
            # Drain to EOF: the chunked terminator must be consumed or
            # the keep-alive connection stays desynced.
            while response.read(65536):
                pass
            complete = True
        except (OSError, http.client.HTTPException, zlib.error) as error:
            raise StorageError(
                f"streamed batch read failed mid-stream: {error}"
            ) from error
        finally:
            if not complete:
                # Mid-stream failure OR an abandoned iterator: either
                # way unread chunks poison the connection for the next
                # request, so it is dropped, not reused.
                self._drop_connection()
        if error_frame is not None:
            _raise_remote_error(response.status, error_frame)
        if end_count is None:
            self._drop_connection()
            raise StorageError(
                "streamed batch response was truncated: the stream "
                "ended without an end frame")
        if end_count != lines_seen:
            raise StorageError(
                f"streamed batch response dropped lines: the end frame "
                f"counted {end_count}, {lines_seen} arrived")

    def _open_stream(self, path: str, body: "bytes | None",
                     headers: dict) -> http.client.HTTPResponse:
        """One streamed-POST attempt: send and await the status line."""
        deadline = current_deadline()
        if deadline is not None:
            deadline.check(f"POST {path}")
            headers = dict(headers)
            headers["X-Deadline-Ms"] = str(
                max(1, int(deadline.remaining() * 1000)))
        try:
            connection = self._connection()
            connection.sock.settimeout(
                deadline.cap(self.timeout) if deadline is not None
                else self.timeout)
            connection.request("POST", self._prefix + path,
                               body=body, headers=headers)
        except (OSError, http.client.HTTPException) as error:
            self._drop_connection()
            raise _transport_error(
                "send", self.base_url, error, deadline) from error
        try:
            response = connection.getresponse()
        except (OSError, http.client.HTTPException) as error:
            self._drop_connection()
            raise _transport_error(
                "response", self.base_url, error, deadline) from error
        if response.status == 503:
            raw = self._inflate(response, response.read())
            raise _shed_error(response.headers, raw)
        return response

    # ------------------------------------------------------------------
    # Queries: executed server-side, results rehydrated.
    # ------------------------------------------------------------------

    def execute_query(self, plan: QueryPlan,
                      stats: QueryStats | None = None) -> QueryResult:
        payload = {
            "plan": plan_to_dict(plan),
            "stats": stats_to_dict(stats) if stats is not None else None,
        }
        return result_from_dict(self._request("POST", "/query", payload))

    def query_stats(self, terms: Sequence[str]) -> QueryStats:
        return stats_from_dict(
            self._request("POST", "/stats/query", {"terms": list(terms)})
        )

    def change_counter(self) -> int | None:
        return self._request("GET", "/counter")["change_counter"]

    def change_token(self) -> str | None:
        """The server's change token (its ETags embed the same value).

        Overridden rather than derived from :meth:`change_counter`:
        the remote service overlays an epoch+sequence token when its
        backend has no durable counter, and that token — not a local
        reconstruction — is what the server's validators actually use.
        """
        return self._request("GET", "/counter").get("change_token")

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """The *server's* read-path counters, namespaced ``server:...``.

        The prefix keeps a local facade's own ``entry_cache`` (and any
        sibling backend's caches in a composite) from colliding with
        the remote service's identically named groups when
        ``RepositoryService.cache_stats()`` merges them.
        """
        remote = self._stats()["cache"]
        return {f"server:{name}": dict(counters)
                for name, counters in remote.items()}

    def wire_cache_stats(self) -> dict[str, dict[str, int]]:
        """Counters of this client's OWN wire caches.

        Deliberately not part of :meth:`cache_stats`: that method
        reports the remote server's read path (namespaced
        ``server:...``), and a composite merging several HTTPBackends
        must not conflate local validation hits with remote cache
        hits.
        """
        return {
            "validation": self._validation.stats(),
            "line_memo": self._line_memo.stats(),
        }

    def _stats(self) -> dict:
        return self._request("GET", "/stats")

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close every still-live connection this backend opened."""
        self._closed = True
        with self._connections_mutex:
            connections = list(self._connections)
            self._connections.clear()
        for connection in connections:
            connection.close()
