"""HTTPBackend: the repository's own HTTP API as a StorageBackend.

The closing piece of the serving loop: the server
(:mod:`repro.repository.server`) exposes a
:class:`~repro.repository.service.RepositoryService` over HTTP, and
this client implements the full
:class:`~repro.repository.backends.StorageBackend` contract *against*
that API — so a remote repository plugs in anywhere a local backend
does.  That includes wrapping it in another ``RepositoryService`` (a
read-through cache in front of a remote store), sharding across several
servers, or handing it straight to the conformance suite: because the
interface is the same, ``tests/repository/test_backends.py`` holds the
whole wire round-trip to the storage contract without a single
HTTP-specific assertion.

Error fidelity is the point of the wire format: the server transmits
the exception's class name plus its structured arguments, and
:func:`_raise_remote_error` re-raises the *same*
:mod:`repro.core.errors` class the in-process backend would have
raised — ``EntryNotFound`` with its identifier and version,
``DuplicateEntry`` with its identifier, ``StorageError`` and friends
with their message.  An unrecognised error type degrades to
``StorageError`` rather than crossing the boundary as something
un-catchable.

Connections are keep-alive ``http.client.HTTPConnection`` objects, one
per calling thread (the connection object is not thread-safe; a
thread-local keeps the hot path allocation-free).  A connection idle
past ``idle_reuse_limit`` is replaced *before* reuse — servers close
idle connections, and that close often surfaces only at response time,
where a write cannot be safely retried.  Residual failures retry once
for *any* method when the send itself failed (the request never
reached the server), but only for idempotent GETs once a response was
owed; a write whose fate is unknown is never blindly repeated.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import weakref
from typing import Iterable, Sequence
from urllib.parse import quote, urlsplit

from repro.core.errors import (
    CurationError,
    DuplicateEntry,
    EntryNotFound,
    StorageError,
    TemplateError,
    VersioningError,
    WikiSyncError,
)
from repro.repository.backends.base import (
    GetRequest,
    StorageBackend,
    _split_request,
)
from repro.repository.entry import ExampleEntry
from repro.repository.query import (
    QueryPlan,
    QueryResult,
    QueryStats,
    plan_to_dict,
    result_from_dict,
    stats_from_dict,
    stats_to_dict,
)
from repro.repository.versioning import Version

__all__ = ["HTTPBackend"]

#: Error classes the server may name; message-only constructors except
#: for the two reconstructed with their structured arguments below.
_ERROR_CLASSES = {
    cls.__name__: cls
    for cls in (
        StorageError,
        VersioningError,
        TemplateError,
        CurationError,
        WikiSyncError,
    )
}


def _raise_remote_error(status: int, payload: object) -> None:
    """Re-raise a wire error as the class the server named."""
    detail = payload.get("error") if isinstance(payload, dict) else None
    if not isinstance(detail, dict):
        raise StorageError(f"server returned HTTP {status} with no "
                           f"error detail: {payload!r}")
    name = detail.get("type")
    message = detail.get("message", f"HTTP {status}")
    if name == "EntryNotFound":
        raise EntryNotFound(
            detail.get("identifier", "?"), detail.get("version")
        )
    if name == "DuplicateEntry":
        raise DuplicateEntry(detail.get("identifier", "?"))
    raise _ERROR_CLASSES.get(name, StorageError)(message)


class HTTPBackend(StorageBackend):
    """A remote repository server, spoken to through StorageBackend."""

    #: Query plans execute on the server (which pushes them further
    #: down or evaluates its own index) — never materialised here, so
    #: from this side of the wire the path is as "native" as SQLite's.
    supports_native_query = True

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 idle_reuse_limit: float = 25.0) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise StorageError(
                f"HTTPBackend needs an http://host:port URL, "
                f"got {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self.host = split.hostname
        self.port = split.port or 80
        #: A path in the base URL (a reverse-proxy mount like
        #: ``http://host/repo``) is honoured: every request path is
        #: sent under it, rather than silently aimed at the root.
        self._prefix = split.path.rstrip("/")
        self.timeout = timeout
        #: A kept-alive connection idle longer than this is replaced
        #: *before* reuse.  Servers close idle connections (this
        #: repository's handler timeout is 30s), and the close race
        #: usually surfaces only at response time — where a write
        #: cannot be safely retried.  Refreshing proactively below the
        #: server's horizon keeps writes off that path entirely.
        self.idle_reuse_limit = idle_reuse_limit
        self._local = threading.local()
        #: Weak references to every live connection, so close() can
        #: drop them all (thread-locals only reach the closing thread's
        #: own).  Weak, not strong: a thread's death drops its
        #: thread-local — the sole strong reference — so the socket is
        #: freed then instead of pinned here until close() (a
        #: long-lived proxy serving many short-lived handler threads
        #: would otherwise leak one descriptor per thread).
        self._connections: weakref.WeakSet = weakref.WeakSet()
        self._connections_mutex = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # The wire.
    # ------------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if (connection is not None
                and time.monotonic() - self._local.last_used
                > self.idle_reuse_limit):
            # The server has likely closed this idle connection; its
            # FIN only surfaces at response time, too late for a safe
            # write retry.  Replace it up front.
            self._drop_connection()
            connection = None
        if connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            # A request is two small writes (header block, body); with
            # Nagle on, the second stalls behind the server's delayed
            # ACK (~40ms each on loopback).  The server disables Nagle
            # on its side too.
            connection.connect()
            connection.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._local.connection = connection
            with self._connections_mutex:
                self._connections.add(connection)
        self._local.last_used = time.monotonic()
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None
            with self._connections_mutex:
                self._connections.discard(connection)

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> dict:
        if self._closed:
            raise StorageError("HTTPBackend is closed")
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        # Retry policy, phase by phase.  The idle-reuse refresh in
        # _connection() keeps the common idle-close race off this path
        # entirely (an idle FIN often lets the send *succeed* into the
        # socket buffer and only fails at response time); what remains
        # is decided by which phase failed:
        #
        # * connect/*send* failed — the request never reached the
        #   server, so ONE retry on a fresh connection is safe for any
        #   method;
        # * *response* failed — the server may already have applied the
        #   request, so only idempotent GETs retry; a write raises,
        #   because its fate is genuinely unknown.
        for attempt in range(2):
            try:
                connection = self._connection()
                connection.request(method, self._prefix + path,
                                   body=body, headers=headers)
            except (OSError, http.client.HTTPException) as error:
                self._drop_connection()
                if attempt == 0:
                    continue
                raise StorageError(
                    f"repository server unreachable at "
                    f"{self.base_url}: {error}") from error
            try:
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as error:
                self._drop_connection()
                if attempt == 0 and method == "GET":
                    continue
                raise StorageError(
                    f"no response from the repository server at "
                    f"{self.base_url}: {error}") from error
            return self._decode(response.status, raw)
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _decode(status: int, raw: bytes) -> dict:
        try:
            payload = json.loads(raw) if raw else {}
        except ValueError as error:
            raise StorageError(
                f"server sent malformed JSON (HTTP {status}): "
                f"{error}") from error
        if status >= 400:
            _raise_remote_error(status, payload)
        if not isinstance(payload, dict):
            raise StorageError(
                f"server response is not an object: "
                f"{type(payload).__name__}")
        return payload

    @staticmethod
    def _entry_path(identifier: str, suffix: str = "") -> str:
        return f"/entries/{quote(identifier, safe='')}{suffix}"

    # ------------------------------------------------------------------
    # Point operations.
    # ------------------------------------------------------------------

    def identifiers(self) -> list[str]:
        return self._request("GET", "/entries")["identifiers"]

    def versions(self, identifier: str) -> list[Version]:
        payload = self._request(
            "GET", self._entry_path(identifier, "/versions")
        )
        return [Version.parse(text) for text in payload["versions"]]

    def get(self, identifier: str,
            version: Version | None = None) -> ExampleEntry:
        path = self._entry_path(identifier)
        if version is not None:
            path += f"?version={version}"
        payload = self._request("GET", path)
        return ExampleEntry.from_dict(payload["entry"])

    def has(self, identifier: str) -> bool:
        return self._request(
            "GET", self._entry_path(identifier, "/has")
        )["has"]

    def add(self, entry: ExampleEntry) -> None:
        self._request("POST", "/entries", {"entry": entry.to_dict()})

    def add_version(self, entry: ExampleEntry) -> None:
        self._request(
            "POST",
            self._entry_path(entry.identifier, "/versions"),
            {"entry": entry.to_dict()},
        )

    def replace_latest(self, entry: ExampleEntry) -> None:
        self._request(
            "PUT",
            self._entry_path(entry.identifier),
            {"entry": entry.to_dict()},
        )

    def entry_count(self) -> int:
        # GET /counter, not /stats: the stats payload recomputes the
        # full (composite-recursive) cache merge per call, and these
        # two integers sit on hot paths.
        return self._request("GET", "/counter")["entry_count"]

    # ------------------------------------------------------------------
    # Batch operations: one request each.
    # ------------------------------------------------------------------

    def add_many(self, entries: Iterable[ExampleEntry]) -> int:
        batch = [entry.to_dict() for entry in entries]
        return self._request("POST", "/entries", {"entries": batch})["count"]

    def get_many(self,
                 requests: Sequence[GetRequest]) -> list[ExampleEntry]:
        wire = []
        for request in requests:
            identifier, version = _split_request(request)
            wire.append(
                [identifier, str(version) if version is not None else None]
            )
        payload = self._request("POST", "/batch/get", {"requests": wire})
        return [ExampleEntry.from_dict(data)
                for data in payload["entries"]]

    def versions_many(
            self, identifiers: Sequence[str]) -> dict[str, list[Version]]:
        payload = self._request(
            "POST", "/batch/versions", {"identifiers": list(identifiers)}
        )
        return {
            identifier: [Version.parse(text) for text in versions]
            for identifier, versions in payload["versions"].items()
        }

    # ------------------------------------------------------------------
    # Queries: executed server-side, results rehydrated.
    # ------------------------------------------------------------------

    def execute_query(self, plan: QueryPlan,
                      stats: QueryStats | None = None) -> QueryResult:
        payload = {
            "plan": plan_to_dict(plan),
            "stats": stats_to_dict(stats) if stats is not None else None,
        }
        return result_from_dict(self._request("POST", "/query", payload))

    def query_stats(self, terms: Sequence[str]) -> QueryStats:
        return stats_from_dict(
            self._request("POST", "/stats/query", {"terms": list(terms)})
        )

    def change_counter(self) -> int | None:
        return self._request("GET", "/counter")["change_counter"]

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """The *server's* read-path counters, namespaced ``server:...``.

        The prefix keeps a local facade's own ``entry_cache`` (and any
        sibling backend's caches in a composite) from colliding with
        the remote service's identically named groups when
        ``RepositoryService.cache_stats()`` merges them.
        """
        remote = self._stats()["cache"]
        return {f"server:{name}": dict(counters)
                for name, counters in remote.items()}

    def _stats(self) -> dict:
        return self._request("GET", "/stats")

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close every still-live connection this backend opened."""
        self._closed = True
        with self._connections_mutex:
            connections = list(self._connections)
            self._connections.clear()
        for connection in connections:
            connection.close()
