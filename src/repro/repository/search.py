"""Search over repository entries: find the right example quickly.

§5.2 asks "Will people be able to find and refer to relevant examples?"
and notes that making the wiki indexable "goes a long way".  For the
local copy we provide the equivalent: a small inverted index with

* free-text ranked search over title, overview, discussion, consistency
  and model descriptions — term frequency with a field boost for titles,
  now **IDF-weighted** (:func:`repro.repository.query.
  inverse_document_frequency`), so ubiquitous domain words ("model",
  "update") no longer drown out the terms that actually discriminate;
* structured filters (entry type, claimed property with polarity,
  author, review status) — kept as thin conveniences over the unified
  query AST of :mod:`repro.repository.query`, which is the preferred
  retrieval surface (``RepositoryService.query``).

The index is rebuilt from a store explicitly (:meth:`SearchIndex.build`);
it does not watch a raw store, keeping the dependency one-directional.
When the store is a :class:`~repro.repository.service.RepositoryService`,
:meth:`SearchIndex.sync_with` builds once and then subscribes to the
service's change events, so each add/add_version/replace_latest costs one
incremental :meth:`SearchIndex.add_entry` instead of a full rebuild.

The index is also **persistent**: :meth:`SearchIndex.save` snapshots the
postings and entries to one JSON file, stamped with the storage
backend's change counter, and :meth:`SearchIndex.load` restores it —
but only if the stamp still matches the backend, so a snapshot can
never serve stale results.  A service constructed with ``index_path=``
does both automatically, which is what stops the index being rebuilt
(one full scan + tokenisation of every entry) in every new process.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Mapping

from repro.core.errors import BxError
from repro.repository.entry import ExampleEntry
from repro.repository.query import (
    Q,
    QueryPlan,
    SearchHit,
    entry_terms,
    evaluate_plan,
    tokenize,
)
from repro.repository.store import RepositoryStore
from repro.repository.template import EntryType

__all__ = ["SearchHit", "SearchIndex", "tokenize"]

#: Snapshot format version; bump when the on-disk layout changes.
_SNAPSHOT_FORMAT = 1


class SearchIndex:
    """An inverted index over the latest versions in a store."""

    def __init__(self) -> None:
        self._postings: dict[str, dict[str, float]] = {}
        self._entries: dict[str, ExampleEntry] = {}

    # ------------------------------------------------------------------
    # Building.
    # ------------------------------------------------------------------

    def build(self, store: RepositoryStore) -> "SearchIndex":
        """(Re)build the index from the latest version of every entry.

        Goes through the store's batch ``get_many`` (part of the
        :class:`~repro.repository.backends.StorageBackend` interface),
        so backends with a bulk path answer in one query.
        """
        self._postings.clear()
        self._entries.clear()
        for entry in store.get_many(store.identifiers()):
            self.add_entry(entry)
        return self

    def sync_with(self, service) -> "Callable[[], None]":
        """Build from a RepositoryService, then track it incrementally.

        Subscribes to the service's change events; every write upserts
        exactly the written entry.  Returns the unsubscribe function.
        """
        self.build(service)
        return service.subscribe(lambda event: self.add_entry(event.entry))

    def add_entry(self, entry: ExampleEntry) -> None:
        """Index one entry (replacing any previous version of it)."""
        identifier = entry.identifier
        if identifier in self._entries:
            self.remove_entry(identifier)
        self._entries[identifier] = entry
        for term, weight in entry_terms(entry).items():
            self._postings.setdefault(term, {})[identifier] = weight

    def remove_entry(self, identifier: str) -> None:
        self._entries.pop(identifier, None)
        for postings in self._postings.values():
            postings.pop(identifier, None)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # The query-evaluator protocol (see repro.repository.query).
    # ------------------------------------------------------------------

    def document_count(self) -> int:
        return len(self._entries)

    def latest_entries(self) -> Mapping[str, ExampleEntry]:
        return self._entries

    def term_postings(self, term: str) -> Mapping[str, float]:
        return self._postings.get(term, {})

    # ------------------------------------------------------------------
    # Persistence: snapshot keyed by the backend's change counter.
    # ------------------------------------------------------------------

    def save(self, path: str | Path, *, change_counter: int) -> None:
        """Snapshot the index to ``path``, stamped with the counter.

        The stamp must be the owning backend's
        :meth:`~repro.repository.backends.StorageBackend.change_counter`
        *at a moment when the index is in sync with the backend* (the
        service saves under its write lock for exactly this reason).
        The write is atomic (temp file + rename).
        """
        payload = {
            "format": _SNAPSHOT_FORMAT,
            "change_counter": change_counter,
            "entries": [entry.to_dict()
                        for _identifier, entry in sorted(
                            self._entries.items())],
            "postings": {term: postings
                         for term, postings in sorted(
                             self._postings.items())},
        }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(path.name + ".tmp")
        with temp.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
        temp.replace(path)

    @classmethod
    def load(cls, path: str | Path, *,
             expected_change_counter: int) -> "SearchIndex | None":
        """Restore a snapshot, or return None when it cannot be trusted.

        None (caller should rebuild) when the file is missing or
        unreadable, the format is unknown, or the stored change counter
        differs from ``expected_change_counter`` — i.e. the backend has
        been written since the snapshot was taken.
        """
        path = Path(path)
        try:
            with path.open(encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("format") != _SNAPSHOT_FORMAT:
            return None
        if payload.get("change_counter") != expected_change_counter:
            return None
        try:
            index = cls()
            for data in payload["entries"]:
                entry = ExampleEntry.from_dict(data)
                index._entries[entry.identifier] = entry
            index._postings = {
                term: {identifier: float(weight)
                       for identifier, weight in postings.items()}
                for term, postings in payload["postings"].items()}
        except (BxError, KeyError, TypeError, ValueError, AttributeError):
            # Malformed snapshot shapes (missing keys, junk weights,
            # entries that fail validation) mean "rebuild"; anything
            # else is a real bug and now propagates.
            return None
        return index

    # ------------------------------------------------------------------
    # Querying.
    # ------------------------------------------------------------------

    def search(self, query: str, limit: int = 10) -> list[SearchHit]:
        """Ranked free-text search; all query terms are optional (OR).

        Scores are IDF-weighted: each term contributes its smoothed
        inverse document frequency times the entry's field-boosted term
        frequency, so rare discriminating terms outrank corpus-wide
        filler.  A thin shim over the unified query evaluator.
        """
        result = evaluate_plan(self, QueryPlan(Q.text(query), limit=limit))
        return [hit for hit in result.hits if hit.score > 0.0]

    def query(self, query_plan: QueryPlan):
        """Execute a full :class:`~repro.repository.query.QueryPlan`."""
        return evaluate_plan(self, query_plan)

    def by_type(self, entry_type: EntryType) -> list[ExampleEntry]:
        """All entries of a given class, sorted by identifier."""
        return self._filter(Q.type(entry_type))

    def by_property(self, name: str,
                    holds: bool | None = None) -> list[ExampleEntry]:
        """Entries claiming a property (optionally with given polarity)."""
        return self._filter(Q.property(name, holds))

    def by_author(self, author: str) -> list[ExampleEntry]:
        """Entries a given author contributed."""
        return self._filter(Q.author(author))

    def reviewed(self) -> list[ExampleEntry]:
        """Entries at version 1.0 or above."""
        return self._filter(Q.reviewed())

    def provisional(self) -> list[ExampleEntry]:
        """Entries still at 0.x."""
        return self._filter(Q.provisional())

    def _filter(self, query) -> list[ExampleEntry]:
        result = evaluate_plan(self, QueryPlan(query, sort="identifier"))
        return [hit.entry for hit in result.hits]
