"""Search over repository entries: find the right example quickly.

§5.2 asks "Will people be able to find and refer to relevant examples?"
and notes that making the wiki indexable "goes a long way".  For the
local copy we provide the equivalent: a small inverted index with

* free-text ranked search over title, overview, discussion, consistency
  and model descriptions (term frequency with a field boost for titles);
* structured filters: entry type, claimed property (with polarity),
  author, and review status.

The index is rebuilt from a store explicitly (:meth:`SearchIndex.build`);
it does not watch a raw store, keeping the dependency one-directional.
When the store is a :class:`~repro.repository.service.RepositoryService`,
:meth:`SearchIndex.sync_with` builds once and then subscribes to the
service's change events, so each add/add_version/replace_latest costs one
incremental :meth:`SearchIndex.add_entry` instead of a full rebuild.
"""

from __future__ import annotations

import re
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Callable

from repro.repository.entry import ExampleEntry
from repro.repository.store import RepositoryStore
from repro.repository.template import EntryType

__all__ = ["SearchHit", "SearchIndex", "tokenize"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Words too common to be informative in this domain.
_STOPWORDS = frozenset(
    "a an and are be been between by for from has have in is it its of on "
    "or that the this to we with".split())

#: Per-field score boosts: a title hit outranks a discussion hit.
_FIELD_BOOST = {"title": 4.0, "overview": 2.0, "models": 1.5,
                "consistency": 1.0, "discussion": 1.0}


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens with stopwords removed."""
    return [token for token in _TOKEN_RE.findall(text.lower())
            if token not in _STOPWORDS]


@dataclass(frozen=True)
class SearchHit:
    """One ranked result: identifier, score, and the matched entry."""

    identifier: str
    score: float
    entry: ExampleEntry


class SearchIndex:
    """An inverted index over the latest versions in a store."""

    def __init__(self) -> None:
        self._postings: dict[str, dict[str, float]] = defaultdict(dict)
        self._entries: dict[str, ExampleEntry] = {}

    # ------------------------------------------------------------------
    # Building.
    # ------------------------------------------------------------------

    def build(self, store: RepositoryStore) -> "SearchIndex":
        """(Re)build the index from the latest version of every entry.

        Goes through the store's batch ``get_many`` (part of the
        :class:`~repro.repository.backends.StorageBackend` interface),
        so backends with a bulk path answer in one query.
        """
        self._postings.clear()
        self._entries.clear()
        for entry in store.get_many(store.identifiers()):
            self.add_entry(entry)
        return self

    def sync_with(self, service) -> "Callable[[], None]":
        """Build from a RepositoryService, then track it incrementally.

        Subscribes to the service's change events; every write upserts
        exactly the written entry.  Returns the unsubscribe function.
        """
        self.build(service)
        return service.subscribe(lambda event: self.add_entry(event.entry))

    def add_entry(self, entry: ExampleEntry) -> None:
        """Index one entry (replacing any previous version of it)."""
        identifier = entry.identifier
        if identifier in self._entries:
            self.remove_entry(identifier)
        self._entries[identifier] = entry
        fields = {
            "title": entry.title,
            "overview": entry.overview,
            "models": " ".join(f"{m.name} {m.description}"
                               for m in entry.models),
            "consistency": entry.consistency,
            "discussion": entry.discussion,
        }
        for field_name, text in fields.items():
            boost = _FIELD_BOOST[field_name]
            for token, count in Counter(tokenize(text)).items():
                previous = self._postings[token].get(identifier, 0.0)
                self._postings[token][identifier] = previous + boost * count

    def remove_entry(self, identifier: str) -> None:
        self._entries.pop(identifier, None)
        for postings in self._postings.values():
            postings.pop(identifier, None)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Querying.
    # ------------------------------------------------------------------

    def search(self, query: str, limit: int = 10) -> list[SearchHit]:
        """Ranked free-text search; all query terms are optional (OR)."""
        scores: dict[str, float] = defaultdict(float)
        for token in tokenize(query):
            for identifier, weight in self._postings.get(token, {}).items():
                scores[identifier] += weight
        ranked = sorted(scores.items(),
                        key=lambda pair: (-pair[1], pair[0]))
        return [SearchHit(identifier, score, self._entries[identifier])
                for identifier, score in ranked[:limit]]

    def by_type(self, entry_type: EntryType) -> list[ExampleEntry]:
        """All entries of a given class, sorted by identifier."""
        return [entry for _identifier, entry in sorted(self._entries.items())
                if entry_type in entry.types]

    def by_property(self, name: str,
                    holds: bool | None = None) -> list[ExampleEntry]:
        """Entries claiming a property (optionally with given polarity)."""
        matches = []
        for _identifier, entry in sorted(self._entries.items()):
            for claim in entry.properties:
                if claim.name != name:
                    continue
                if holds is None or claim.holds == holds:
                    matches.append(entry)
                    break
        return matches

    def by_author(self, author: str) -> list[ExampleEntry]:
        """Entries a given author contributed."""
        return [entry for _identifier, entry in sorted(self._entries.items())
                if author in entry.authors]

    def reviewed(self) -> list[ExampleEntry]:
        """Entries at version 1.0 or above."""
        return [entry for _identifier, entry in sorted(self._entries.items())
                if entry.version.is_reviewed]

    def provisional(self) -> list[ExampleEntry]:
        """Entries still at 0.x."""
        return [entry for _identifier, entry in sorted(self._entries.items())
                if not entry.version.is_reviewed]
