"""Resilience policies: deadlines, retry budgets, breakers, probes.

A repository serving heavy shared traffic degrades in four well-known
ways — a dependency goes away, a dependency slows down, the server
itself is overloaded, and a recovered node rejoins with stale state —
and each has one sanctioned mechanism here, shared by every layer so
their interactions stay legible:

* :class:`Deadline` — a monotonic point in time after which work is
  worthless.  Deadlines are *cooperative*: layers check the ambient
  deadline (``current_deadline()`` / ``deadline_scope()``) before and
  during work and fail fast with
  :class:`~repro.core.errors.DeadlineExceeded` instead of stalling the
  caller.  The HTTP transport propagates the remaining time over the
  wire as an ``X-Deadline-Ms`` header; the server re-establishes the
  scope around the handler, so a deadline set by the outermost caller
  bounds the whole distributed call tree.

* :class:`RetryPolicy` — exponential backoff with *decorrelated jitter*
  (AWS-style: each delay is drawn from ``[base, prev * 3]``, which
  spreads synchronized retry storms better than equal-jitter) and a
  per-operation retry *budget* (:class:`RetryBudget`): retries spend
  from a token bucket that successes replenish, so a hard outage decays
  to roughly ``refill_rate`` extra load instead of multiplying traffic
  by ``max_attempts``.  A ``retry_after`` hint on the caught error
  (the server's ``Retry-After``) overrides the computed delay.

* :class:`CircuitBreaker` — the classic closed/open/half-open state
  machine.  ``failure_threshold`` consecutive failures open it; after
  ``reset_timeout`` one trial call is admitted (half-open) and its
  outcome closes or re-opens the circuit.  Callers that are refused get
  :class:`~repro.core.errors.CircuitOpenError` without the dependency
  being touched at all.

* :class:`HealthProbe` — a background thread that runs a check at an
  interval and reports transitions.  ``check_now()`` runs one probe
  synchronously so tests and the soak harness can drive recovery
  deterministically without real time passing.

Everything takes injectable clocks/sleeps/rngs: the unit tests exercise
backoff schedules and breaker timeouts without sleeping.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar

from repro.core.errors import (
    BackendUnavailableError,
    CircuitOpenError,
    DeadlineExceeded,
)
from repro.repository.concurrency import Mutex

__all__ = [
    "Deadline",
    "deadline_scope",
    "current_deadline",
    "RetryBudget",
    "RetryPolicy",
    "CircuitBreaker",
    "HealthProbe",
]

T = TypeVar("T")

# ----------------------------------------------------------------------
# Deadlines.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Deadline:
    """An absolute point on the monotonic clock after which work is moot.

    Immutable, so one deadline can be shared down a call tree; derive
    per-attempt timeouts with :meth:`remaining`.  The ``clock`` is
    injectable for tests (defaults to :func:`time.monotonic`).
    """

    expires_at: float
    clock: Callable[[], float] = time.monotonic

    @classmethod
    def after(
        cls, seconds: float, *, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """The deadline ``seconds`` from now."""
        return cls(expires_at=clock() + seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left, clamped at zero."""
        return max(0.0, self.expires_at - self.clock())

    @property
    def expired(self) -> bool:
        return self.clock() >= self.expires_at

    def check(self, operation: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired:
            raise DeadlineExceeded(f"deadline expired before {operation}")

    def cap(self, timeout: float | None) -> float:
        """``timeout`` bounded by the time this deadline has left.

        ``None`` means "no other bound": the remaining time stands
        alone.  The result is floored at a small epsilon so socket
        layers given an already-tight deadline still get a positive
        timeout (the expiry check is the caller's job via
        :meth:`check`).
        """
        remaining = self.remaining()
        if timeout is not None:
            remaining = min(timeout, remaining)
        return max(0.001, remaining)


#: The ambient deadline for the current logical operation.  A context
#: variable rather than a parameter so the ``StorageBackend`` interface
#: (and every conformance-tested implementation) keeps its signature;
#: layers that hop threads (the sharded fan-out pool, the async
#: executors) re-bind it explicitly on the far side.
_DEADLINE: ContextVar[Deadline | None] = ContextVar("repro_deadline", default=None)


def current_deadline() -> Deadline | None:
    """The deadline governing the current operation, if any."""
    return _DEADLINE.get()


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Bind ``deadline`` as the ambient deadline for the ``with`` body.

    Passing ``None`` clears the scope (used by detached background work
    that must not inherit a request deadline).  Scopes nest; the
    innermost wins, which lets a layer tighten but also deliberately
    shed an outer deadline.
    """
    token = _DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _DEADLINE.reset(token)


# ----------------------------------------------------------------------
# Retry budget + policy.
# ----------------------------------------------------------------------


class RetryBudget:
    """A token bucket bounding retries to a fraction of real traffic.

    Each retry spends one token; each *first-attempt success* deposits
    ``refill_rate`` tokens (capped at ``capacity``).  Under a total
    outage the bucket drains and retries stop, so the extra load a
    client adds to a struggling server converges to ``refill_rate`` of
    its organic request rate instead of multiplying it.
    """

    def __init__(self, capacity: float = 10.0, refill_rate: float = 0.1) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self._tokens = float(capacity)
        self._mutex = Mutex()

    def try_spend(self) -> bool:
        """Take one token if available; False means "do not retry"."""
        with self._mutex:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def record_success(self) -> None:
        with self._mutex:
            self._tokens = min(self.capacity, self._tokens + self.refill_rate)

    @property
    def tokens(self) -> float:
        with self._mutex:
            return self._tokens


class RetryPolicy:
    """Exponential backoff with decorrelated jitter and a retry budget.

    ``call`` runs ``operation`` up to ``max_attempts`` times.  Whether a
    failure is retried is decided by ``classify`` (a predicate over the
    exception; default: retry ``BackendUnavailableError`` and plain
    ``ConnectionError``), then vetoed in turn by the budget, the ambient
    (or explicit) deadline, and the attempt count.  A ``retry_after``
    attribute on the error — the server's explicit pacing hint —
    replaces the computed jittered delay.

    The policy object is immutable-per-configuration and thread-safe:
    per-call state lives on the stack, shared state (the budget) guards
    itself.  ``rng``/``sleep`` are injectable so tests can pin the
    jitter sequence and run without real time passing.
    """

    def __init__(
        self,
        *,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        budget: RetryBudget | None = None,
        classify: Callable[[BaseException], bool] | None = None,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.budget = budget
        self._classify = classify if classify is not None else _default_classify
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self.retries = 0  # total retries issued (observability)
        self._mutex = Mutex()

    def next_delay(self, previous: float | None) -> float:
        """One step of the decorrelated-jitter schedule."""
        if previous is None:
            previous = self.base_delay
        high = max(self.base_delay, previous * 3.0)
        return min(self.max_delay, self._rng.uniform(self.base_delay, high))

    def call(
        self,
        operation: Callable[[], T],
        *,
        classify: Callable[[BaseException], bool] | None = None,
        deadline: Deadline | None = None,
        on_retry: Callable[[BaseException, int], None] | None = None,
    ) -> T:
        """Run ``operation`` under this policy, returning its result.

        ``classify`` overrides the policy default for this call (the
        HTTP transport passes a phase-aware predicate: send-phase
        failures retry for any method, response-phase only for
        idempotent ones).  ``on_retry`` is an observability hook called
        with (error, attempt) before each backoff sleep.
        """
        decide = classify if classify is not None else self._classify
        if deadline is None:
            deadline = current_deadline()
        delay: float | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                result = operation()
            except DeadlineExceeded:
                raise  # the whole operation is out of time; never retry
            except Exception as error:
                if attempt >= self.max_attempts or not decide(error):
                    raise
                if self.budget is not None and not self.budget.try_spend():
                    raise
                delay = self.next_delay(delay)
                hinted = getattr(error, "retry_after", None)
                if hinted is not None:
                    delay = min(self.max_delay, float(hinted))
                if deadline is not None:
                    if deadline.remaining() <= delay:
                        raise  # cannot fit another attempt; fail now
                with self._mutex:
                    self.retries += 1
                if on_retry is not None:
                    on_retry(error, attempt)
                if delay > 0:
                    self._sleep(delay)
            else:
                if attempt == 1 and self.budget is not None:
                    self.budget.record_success()
                return result
        raise AssertionError("unreachable: loop either returns or raises")


def _default_classify(error: BaseException) -> bool:
    return isinstance(error, (BackendUnavailableError, ConnectionError))


# ----------------------------------------------------------------------
# Circuit breaker.
# ----------------------------------------------------------------------


class CircuitBreaker:
    """Closed / open / half-open failure isolation for one dependency.

    * **closed** — calls flow; ``failure_threshold`` *consecutive*
      failures trip it open (a success resets the streak).
    * **open** — :meth:`allow` refuses (and :meth:`guard` raises
      :class:`CircuitOpenError`) until ``reset_timeout`` has elapsed.
    * **half-open** — exactly one trial call is admitted; its success
      closes the circuit, its failure re-opens it and restarts the
      timer.

    All transitions are mutex-guarded; ``clock`` is injectable so tests
    step time explicitly.  ``on_open``/``on_close`` hooks let owners
    (the replicated backend) react to state changes — they are called
    outside the mutex to keep the breaker deadlock-free under reentrant
    use.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
        on_open: Callable[["CircuitBreaker"], None] | None = None,
        on_close: Callable[["CircuitBreaker"], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.name = name
        self._clock = clock
        self._on_open = on_open
        self._on_close = on_close
        self._mutex = Mutex()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._trial_inflight = False
        self.opened_total = 0  # observability: times the circuit tripped

    @property
    def state(self) -> str:
        with self._mutex:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In half-open state only the first caller gets True (the trial);
        others are refused until the trial's outcome is recorded.
        """
        with self._mutex:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN and not self._trial_inflight:
                self._trial_inflight = True
                return True
            return False

    def guard(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        if not self.allow():
            label = f" {self.name!r}" if self.name else ""
            raise CircuitOpenError(
                f"circuit breaker{label} is {self._state}: failing fast",
                retry_after=self.reset_timeout,
            )

    def record_success(self) -> None:
        closed_now = False
        with self._mutex:
            self._maybe_half_open()
            if self._state in (self.HALF_OPEN, self.OPEN):
                closed_now = True
            self._state = self.CLOSED
            self._failures = 0
            self._trial_inflight = False
        if closed_now and self._on_close is not None:
            self._on_close(self)

    def record_failure(self) -> None:
        opened_now = False
        with self._mutex:
            self._maybe_half_open()
            if self._state == self.HALF_OPEN:
                opened_now = True  # failed trial: straight back to open
            else:
                self._failures += 1
                if self._state == self.CLOSED and (
                    self._failures >= self.failure_threshold
                ):
                    opened_now = True
            if opened_now:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._failures = 0
                self._trial_inflight = False
                self.opened_total += 1
        if opened_now and self._on_open is not None:
            self._on_open(self)

    def force_open(self) -> None:
        """Trip the breaker administratively (quarantine a child)."""
        opened_now = False
        with self._mutex:
            if self._state != self.OPEN:
                opened_now = True
                self.opened_total += 1
            self._state = self.OPEN
            self._opened_at = self._clock()
            self._failures = 0
            self._trial_inflight = False
        if opened_now and self._on_open is not None:
            self._on_open(self)

    def _maybe_half_open(self) -> None:
        # Caller holds the mutex.
        if self._state == self.OPEN and (
            self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = self.HALF_OPEN
            self._trial_inflight = False


# ----------------------------------------------------------------------
# Health probe.
# ----------------------------------------------------------------------


class HealthProbe:
    """Background health checking with a deterministic manual trigger.

    ``check`` returns True for healthy (raising counts as unhealthy).
    ``on_recover`` fires on the unhealthy→healthy transition — that is
    where the replicated backend hangs repair-then-reintegrate.  The
    thread is a daemon and wakes every ``interval`` seconds; tests and
    the soak harness skip the thread entirely and call
    :meth:`check_now`.
    """

    def __init__(
        self,
        check: Callable[[], bool],
        *,
        interval: float = 1.0,
        on_recover: Callable[[], None] | None = None,
        name: str = "health-probe",
    ) -> None:
        self._check = check
        self.interval = interval
        self._on_recover = on_recover
        self.name = name
        self._healthy = True
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._mutex = Mutex()

    @property
    def healthy(self) -> bool:
        return self._healthy

    def check_now(self) -> bool:
        """Run one probe synchronously; fires ``on_recover`` on a rise."""
        try:
            ok = bool(self._check())
        except Exception:  # noqa: BLE001 - any probe failure means unhealthy
            ok = False
        with self._mutex:
            recovered = ok and not self._healthy
            self._healthy = ok
        if recovered and self._on_recover is not None:
            self._on_recover()
        return ok

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=self.name, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.check_now()
