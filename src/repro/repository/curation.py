"""The three-level curatorial structure and review workflow (§5.1).

The paper: "we propose a three-level curatorial structure for the
repository.  Anyone with a wiki account will be able to comment on an
example ... each example will also have one or more named reviewers:
recognised members of the community whose name as reviewer indicates they
consider the example to be of usable quality.  Overall editorial control
of the repository is the responsibility of a small group of curators."

Mechanised here:

* :class:`Role` — ``VISITOR < MEMBER < REVIEWER < CURATOR``;
* :class:`User` — an account (the "barrier to entry, such as registration"
  §5.1: visitors cannot comment);
* :class:`CurationPolicy` — which role may do what;
* :class:`CuratedRepository` — the workflow object binding a
  :class:`~repro.repository.store.RepositoryStore` to the policy:
  submitting drafts, commenting, requesting/recording reviews, approving
  to version 1.0, and controlled edits that bump versions.

The state machine for an entry's review status::

    DRAFT --submit--> PROVISIONAL (0.x) --approve (reviewer)--> REVIEWED (1.0+)
                         |  ^
                         |  | revise (author/curator; bumps 0.x)
                         +--+

Versions only move forward; every state change appends to the entry's
:class:`~repro.repository.versioning.VersionHistory` in the store, so "old
references can still be followed".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.core.errors import CurationError, PermissionDenied
from repro.repository.entry import Comment, ExampleEntry
from repro.repository.service import RepositoryService
from repro.repository.store import RepositoryStore
from repro.repository.validation import require_valid
from repro.repository.versioning import Version

__all__ = ["Role", "User", "CurationPolicy", "CuratedRepository"]


class Role(IntEnum):
    """Curation roles, ordered by privilege."""

    VISITOR = 0   # can read only (no wiki account)
    MEMBER = 1    # has a wiki account: can comment, submit examples
    REVIEWER = 2  # recognised community member: can approve examples
    CURATOR = 3   # editorial control: can edit and administer

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


@dataclass(frozen=True)
class User:
    """An account: a display name and a role."""

    name: str
    role: Role = Role.MEMBER

    def at_least(self, role: Role) -> bool:
        return self.role >= role


@dataclass(frozen=True)
class CurationPolicy:
    """Minimum roles for each operation; defaults follow §5.1."""

    comment: Role = Role.MEMBER
    submit: Role = Role.MEMBER
    review: Role = Role.REVIEWER
    edit: Role = Role.CURATOR
    promote: Role = Role.CURATOR

    def require(self, user: User, operation: str, minimum: Role) -> None:
        if not user.at_least(minimum):
            raise PermissionDenied(user.name, operation, minimum.name)


class CuratedRepository:
    """The curated repository: a store governed by the curation policy.

    All mutating operations take the acting :class:`User` first, enforce
    the policy, and append a new version snapshot to the store — never
    editing history in place ("we do not wish to have uncontrolled editing
    of the example itself").

    Any :class:`RepositoryStore`/backend passed in is wrapped in a
    :class:`~repro.repository.service.RepositoryService`, so curated
    writes benefit from the snapshot cache and emit change events
    (keeping e.g. an attached search index fresh); ``self.store`` is
    always the service.  Consequently, if you keep a handle on the raw
    backend, write through ``repo.store`` — a direct backend write
    bypasses the facade and requires ``repo.store.invalidate()`` before
    the repository sees it.
    """

    def __init__(self, store: RepositoryStore,
                 policy: CurationPolicy | None = None) -> None:
        if isinstance(store, RepositoryService):
            self.store = store
        else:
            self.store = RepositoryService(store)
        self.policy = policy or CurationPolicy()

    # ------------------------------------------------------------------
    # Reading (open to everyone, including visitors).
    # ------------------------------------------------------------------

    def get(self, identifier: str,
            version: Version | None = None) -> ExampleEntry:
        return self.store.get(identifier, version)

    def identifiers(self) -> list[str]:
        return self.store.identifiers()

    def query(self, query=None, *, sort: str = "relevance",
              offset: int = 0, limit: int | None = None):
        """Faceted retrieval over the curated collection (open to all).

        Delegates to :meth:`RepositoryService.query` — reading is the
        one operation §5.1 grants even to visitors, so no acting user
        is required.  ``query`` is a
        :class:`~repro.repository.query.Q` expression, a bare string
        (free text), or None for everything.
        """
        return self.store.query(query, sort=sort, offset=offset,
                                limit=limit)

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------

    def submit(self, user: User, entry: ExampleEntry) -> ExampleEntry:
        """Submit a new example; it enters the repository as provisional.

        The entry must validate against the template, carry the submitting
        user among its authors, and start at a 0.x version.
        """
        self.policy.require(user, "submit an example", self.policy.submit)
        require_valid(entry)
        if user.name not in entry.authors:
            raise CurationError(
                f"submitting user {user.name!r} must be listed among the "
                f"entry's authors {list(entry.authors)}")
        if entry.version.is_reviewed:
            raise CurationError(
                "new submissions are provisional; version must be 0.x, "
                f"got {entry.version}")
        self.store.add(entry)
        return entry

    # ------------------------------------------------------------------
    # Commenting ("anyone with a wiki account").
    # ------------------------------------------------------------------

    def comment(self, user: User, identifier: str, date: str,
                text: str) -> ExampleEntry:
        """Attach a comment to the latest version of an entry.

        Commenting does not bump the version: comments "guide the
        development of a later version", they are not part of the curated
        description itself.
        """
        self.policy.require(user, "comment", self.policy.comment)
        current = self.store.get(identifier)
        updated = current.with_comment(Comment(user.name, date, text))
        self.store.replace_latest(updated)
        return updated

    # ------------------------------------------------------------------
    # Review and approval.
    # ------------------------------------------------------------------

    def approve(self, user: User, identifier: str) -> ExampleEntry:
        """A reviewer approves an entry: recorded by name, promoted to 1.0.

        "Examples remain provisional (version 0.x) until reviewed (and
        approved ...) by other members of the wiki" — so the reviewer must
        not be one of the entry's authors.
        """
        self.policy.require(user, "review an example", self.policy.review)
        current = self.store.get(identifier)
        if user.name in current.authors:
            raise CurationError(
                f"reviewer {user.name!r} is an author of {identifier!r}; "
                "review must come from other members")
        if current.version.is_reviewed:
            raise CurationError(
                f"{identifier!r} is already reviewed "
                f"(version {current.version})")
        approved = current.with_reviewer(user.name).with_version(
            current.version.next_major())
        require_valid(approved)
        self.store.add_version(approved)
        return approved

    # ------------------------------------------------------------------
    # Controlled editing.
    # ------------------------------------------------------------------

    def revise(self, user: User, entry: ExampleEntry) -> ExampleEntry:
        """Publish a revised description as the next version.

        Allowed for curators, and for authors of the entry (the "free
        discussion ... but versioning the descriptions" compromise).  The
        revision must keep the identifier and must move the version
        forward by exactly one step (minor, or major for re-approval).
        """
        current = self.store.get(entry.identifier)
        is_author = user.name in current.authors
        if not (is_author or user.at_least(self.policy.edit)):
            raise PermissionDenied(user.name, "revise the entry",
                                   self.policy.edit.name)
        allowed = {current.version.next_minor(), current.version.next_major()}
        if entry.version not in allowed:
            raise CurationError(
                f"revision must bump {current.version} by one step "
                f"({', '.join(sorted(str(v) for v in allowed))}); "
                f"got {entry.version}")
        if entry.version.is_reviewed and not entry.reviewers:
            raise CurationError(
                "cannot publish a reviewed (>= 1.0) version without "
                "named reviewers")
        require_valid(entry)
        self.store.add_version(entry)
        return entry

    # ------------------------------------------------------------------
    # Introspection used by examples and tests.
    # ------------------------------------------------------------------

    def review_status(self, identifier: str) -> str:
        """"provisional" (0.x) or "reviewed" (1.0+), per the paper."""
        entry = self.store.get(identifier)
        return "reviewed" if entry.version.is_reviewed else "provisional"

    def reviewers_of(self, identifier: str) -> tuple[str, ...]:
        return self.store.get(identifier).reviewers
