"""The canonical entry codec: one encode/decode pair for every backend.

Before this module each durable backend serialised entries its own way
(``FileBackend`` re-encoded ``entry.to_dict()`` with ``indent=2`` on
every write; ``SQLiteBackend`` had its own ``json.dumps`` calls), and
every read re-ran ``json.load`` + ``ExampleEntry.from_dict`` even for
bytes the same process had just produced.  Now:

* :func:`encode_entry` produces the single **compact wire format** —
  no indentation, sorted keys, a ``"_codec"`` version tag — used by the
  file and sqlite backends alike.  The tag rides *inside* the entry
  dict (``ExampleEntry.from_dict`` ignores unknown keys), so the file
  layout the seed pinned down (``entries/<id>/<version>.json`` holding
  the entry dict) is unchanged;
* :func:`decode_entry` hydrates any payload this library ever wrote:
  tagged compact payloads and legacy untagged ones (indented seed-era
  files, pre-codec sqlite rows) decode identically.  A payload tagged
  with a *newer* codec version fails loudly instead of guessing;
* :class:`DecodeMemo` is the **decode fast path**: a bounded LRU of
  hydrated entries keyed by ``(identifier, version, change_counter)``.
  Entries are immutable value objects, so a memoised snapshot is safe
  to share; keying by the backend's durable change counter means any
  write — including a foreign process's, which bumps the counter file /
  meta row — atomically orphans every stale key.  Backends prime the
  memo on their own writes (the bytes they just encoded came from an
  entry object they already hold) and consult it before every decode.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict

from repro.core.errors import StorageError
from repro.repository.entry import ExampleEntry

__all__ = [
    "CODEC_VERSION",
    "DecodeMemo",
    "decode_entry",
    "encode_entry",
]

#: Wire-format version; bump when the payload layout changes shape.
CODEC_VERSION = 1

#: The tag key carried inside the payload dict.  Underscore-prefixed so
#: it can never collide with a template field name.
_TAG_KEY = "_codec"


def encode_entry(entry: ExampleEntry) -> str:
    """Serialise one entry to the compact, tagged wire format.

    Deterministic (sorted keys, fixed separators), so identical entries
    encode to identical bytes on every backend — which is also what
    keeps replicated copies byte-comparable.
    """
    data = entry.to_dict()
    data[_TAG_KEY] = CODEC_VERSION
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def decode_entry(payload: str | bytes) -> ExampleEntry:
    """Hydrate one entry from any payload this library ever wrote.

    Accepts the tagged compact format and legacy untagged payloads
    (seed-era indented files, pre-codec database rows).  A payload
    tagged with a codec version newer than this build understands
    raises :class:`~repro.core.errors.StorageError` rather than
    decoding a shape it cannot vouch for.
    """
    data = json.loads(payload)
    if not isinstance(data, dict):
        raise StorageError(
            f"entry payload is not an object: {type(data).__name__}")
    tag = data.pop(_TAG_KEY, None)
    if tag is not None and tag > CODEC_VERSION:
        raise StorageError(
            f"entry payload uses codec version {tag}; this build "
            f"understands up to {CODEC_VERSION}")
    return ExampleEntry.from_dict(data)


class DecodeMemo:
    """A bounded LRU of hydrated entries, keyed by change counter.

    The key is ``(identifier, version, change_counter)``: the counter a
    backend reported *at fetch time*.  Because durable counters bump on
    every write, any write silently orphans every key minted under the
    old counter; orphans age out through the LRU bound.  That makes the
    memo safe without any invalidation protocol — the read-dominated
    workloads it exists for never pay more than one decode per snapshot
    between writes.  The one ordering subtlety lives with the backends:
    a write must leave its final counter value unseen by any reader who
    could still fetch the pre-write state (``FileBackend._write`` bumps
    once more after the content rename; SQLite commits payload and
    counter atomically).

    Internally locked: backends are shared across threads (the sharded
    fan-out), and LRU bookkeeping mutates state even on ``get``.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._mutex = threading.Lock()
        self._data: OrderedDict[tuple[str, str, int],
                                ExampleEntry] = OrderedDict()

    def get(self, identifier: str, version: str,
            change_counter: int) -> ExampleEntry | None:
        key = (identifier, version, change_counter)
        with self._mutex:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, identifier: str, version: str, change_counter: int,
            entry: ExampleEntry) -> None:
        if self.maxsize <= 0:
            return
        key = (identifier, version, change_counter)
        with self._mutex:
            self._data[key] = entry
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._mutex:
            self._data.clear()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._data)

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters for ``cache_stats()`` reporting."""
        with self._mutex:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "currsize": len(self._data),
                "maxsize": self.maxsize,
            }
