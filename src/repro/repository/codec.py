"""The canonical entry codec: one encode/decode pair for every backend.

Before this module each durable backend serialised entries its own way
(``FileBackend`` re-encoded ``entry.to_dict()`` with ``indent=2`` on
every write; ``SQLiteBackend`` had its own ``json.dumps`` calls), and
every read re-ran ``json.load`` + ``ExampleEntry.from_dict`` even for
bytes the same process had just produced.  Now:

* :func:`encode_entry` produces the single **compact wire format** —
  no indentation, sorted keys, a ``"_codec"`` version tag — used by the
  file and sqlite backends alike.  The tag rides *inside* the entry
  dict (``ExampleEntry.from_dict`` ignores unknown keys), so the file
  layout the seed pinned down (``entries/<id>/<version>.json`` holding
  the entry dict) is unchanged;
* :func:`decode_entry` hydrates any payload this library ever wrote:
  tagged compact payloads and legacy untagged ones (indented seed-era
  files, pre-codec sqlite rows) decode identically.  A payload tagged
  with a *newer* codec version fails loudly instead of guessing;
* :class:`DecodeMemo` is the **decode fast path**: a bounded LRU of
  hydrated entries keyed by ``(identifier, version, change_counter)``.
  Entries are immutable value objects, so a memoised snapshot is safe
  to share; keying by the backend's durable change counter means any
  write — including a foreign process's, which bumps the counter file /
  meta row — atomically orphans every stale key.  Backends prime the
  memo on their own writes (the bytes they just encoded came from an
  entry object they already hold) and consult it before every decode.

The wire-speed PR adds the two caches that make the HTTP layer as
cheap as the storage caches behind it:

* :class:`EncodeMemo` is the **encode fast path** on the serving side:
  the same LRU shape as :class:`DecodeMemo` but holding *encoded wire
  lines* keyed by ``(identifier, version, change_token)``.  A warm
  streaming batch read serves bytes straight from the memo — no entry
  fetch, no ``to_dict``, no ``json.dumps``.  Keys are minted under the
  service's change token, which bumps on every write, so stale lines
  are orphaned exactly like stale decodes;
* :class:`LineMemo` is its mirror on the client: raw NDJSON line bytes
  mapped to the hydrated entry.  The codec is deterministic (sorted
  keys, fixed separators), so identical bytes always denote the same
  snapshot — a repeated bulk read pays one dict probe per line instead
  of ``json.loads`` + ``from_dict``.
"""

from __future__ import annotations

import json
from collections import OrderedDict

from repro.core.errors import StorageError
from repro.repository.concurrency import Mutex
from repro.repository.entry import ExampleEntry

__all__ = [
    "CODEC_VERSION",
    "DecodeMemo",
    "EncodeMemo",
    "GZIP_LEVEL",
    "GZIP_MIN_BYTES",
    "LineMemo",
    "NDJSON_TYPE",
    "decode_entry",
    "encode_entry",
]

#: Wire-format version; bump when the payload layout changes shape.
CODEC_VERSION = 1

#: Sized wire bodies below this skip compression: gzip CPU on a few
#: hundred bytes costs more than the bytes it saves.  Shared by the
#: server (responses) and the client (request bodies).
GZIP_MIN_BYTES = 1024
#: Fast compression: level 1 already shrinks JSON ~4-5x, and the wire
#: layer optimises latency, not archive density.
GZIP_LEVEL = 1
#: The streamed-batch content type clients opt into via Accept.
NDJSON_TYPE = "application/x-ndjson"

#: The tag key carried inside the payload dict.  Underscore-prefixed so
#: it can never collide with a template field name.
_TAG_KEY = "_codec"


def encode_entry(entry: ExampleEntry) -> str:
    """Serialise one entry to the compact, tagged wire format.

    Deterministic (sorted keys, fixed separators), so identical entries
    encode to identical bytes on every backend — which is also what
    keeps replicated copies byte-comparable.
    """
    data = entry.to_dict()
    data[_TAG_KEY] = CODEC_VERSION
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def decode_entry(payload: str | bytes) -> ExampleEntry:
    """Hydrate one entry from any payload this library ever wrote.

    Accepts the tagged compact format and legacy untagged payloads
    (seed-era indented files, pre-codec database rows).  A payload
    tagged with a codec version newer than this build understands
    raises :class:`~repro.core.errors.StorageError` rather than
    decoding a shape it cannot vouch for.
    """
    data = json.loads(payload)
    if not isinstance(data, dict):
        raise StorageError(
            f"entry payload is not an object: {type(data).__name__}")
    tag = data.pop(_TAG_KEY, None)
    if tag is not None and tag > CODEC_VERSION:
        raise StorageError(
            f"entry payload uses codec version {tag}; this build "
            f"understands up to {CODEC_VERSION}")
    return ExampleEntry.from_dict(data)


class DecodeMemo:
    """A bounded LRU of hydrated entries, keyed by change counter.

    The key is ``(identifier, version, change_counter)``: the counter a
    backend reported *at fetch time*.  Because durable counters bump on
    every write, any write silently orphans every key minted under the
    old counter; orphans age out through the LRU bound.  That makes the
    memo safe without any invalidation protocol — the read-dominated
    workloads it exists for never pay more than one decode per snapshot
    between writes.  The one ordering subtlety lives with the backends:
    a write must leave its final counter value unseen by any reader who
    could still fetch the pre-write state (``FileBackend._write`` bumps
    once more after the content rename; SQLite commits payload and
    counter atomically).

    Internally locked: backends are shared across threads (the sharded
    fan-out), and LRU bookkeeping mutates state even on ``get``.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._mutex = Mutex()
        self._data: OrderedDict[tuple[str, str, int],
                                ExampleEntry] = OrderedDict()

    def get(self, identifier: str, version: str,
            change_counter: int) -> ExampleEntry | None:
        key = (identifier, version, change_counter)
        with self._mutex:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, identifier: str, version: str, change_counter: int,
            entry: ExampleEntry) -> None:
        if self.maxsize <= 0:
            return
        key = (identifier, version, change_counter)
        with self._mutex:
            self._data[key] = entry
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._mutex:
            self._data.clear()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._data)

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters for ``cache_stats()`` reporting."""
        with self._mutex:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "currsize": len(self._data),
                "maxsize": self.maxsize,
            }


class _KeyedLRU:
    """The locked LRU core shared by the wire-speed memos.

    Same accounting and eviction behaviour as :class:`DecodeMemo`, but
    generic over key and value — the serving-side :class:`EncodeMemo`
    keys encoded lines by ``(identifier, version, change_token)`` while
    the client-side :class:`LineMemo` keys hydrated entries by the raw
    line bytes themselves.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._mutex = Mutex()
        self._data: OrderedDict = OrderedDict()

    def _get(self, key):
        with self._mutex:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def _put(self, key, value) -> None:
        if self.maxsize <= 0:
            return
        with self._mutex:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._mutex:
            self._data.clear()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._data)

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters for ``cache_stats()`` reporting."""
        with self._mutex:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "currsize": len(self._data),
                "maxsize": self.maxsize,
            }


class EncodeMemo(_KeyedLRU):
    """Encoded wire lines keyed ``(identifier, version, change_token)``.

    The serving-side twin of :class:`DecodeMemo`: where the decode memo
    spares a backend re-hydrating bytes it has already decoded, this
    spares the HTTP server re-encoding entries it has already shipped.
    The token is the service's :meth:`change_token` — it changes on
    every write, so a write orphans every stale line and the LRU bound
    ages the orphans out.  A ``version`` of ``None`` marks the "latest"
    slot, exactly as in the service's LRU.

    Priming happens at *fetch* time with a token read *before* the
    fetch, so a racing write can at worst store a fresher line under an
    older token — never a stale line under a fresh one.
    """

    def __init__(self, maxsize: int = 8192) -> None:
        super().__init__(maxsize)

    def get(self, identifier: str, version: str | None,
            token: str) -> str | None:
        return self._get((identifier, version, token))

    def put(self, identifier: str, version: str | None, token: str,
            line: str) -> None:
        self._put((identifier, version, token), line)


class LineMemo(_KeyedLRU):
    """Hydrated entries keyed by the raw wire line that encoded them.

    The client side of the cheap wire: :func:`encode_entry` is
    deterministic, so byte-identical NDJSON lines always denote the
    same entry snapshot, and an immutable hydrated entry can be shared
    freely.  A warm bulk read therefore costs one dict probe per line
    instead of ``json.loads`` + ``from_dict`` — no invalidation
    protocol needed, because changed entries arrive as *different*
    bytes and stale lines age out through the LRU bound.
    """

    def __init__(self, maxsize: int = 8192) -> None:
        super().__init__(maxsize)

    def get(self, line: bytes) -> ExampleEntry | None:
        return self._get(line)

    def put(self, line: bytes, entry: ExampleEntry) -> None:
        self._put(line, entry)
