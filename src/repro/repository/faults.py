"""Fault injection: the seam the soak/chaos harness breaks things through.

A repository that serves millions of users will lose shards, watch
replicas drift, crash mid-write and get bounced under load — the soak
runner (:mod:`repro.harness.soak`) rehearses all of that, and this
module is the *mechanism*: a way to make a specific component fail on
demand, observably, without changing anything when no fault is armed.

Two pieces:

* :class:`FaultInjector` — a thread-safe registry of named fault
  points.  Arming a point makes :meth:`trip` raise there (once, or
  latched until :meth:`heal`); every firing is counted, so a test can
  assert a scheduled fault was observed **exactly once**.
* :class:`FlakyBackend` — a :class:`StorageBackend` wrapper that runs
  every operation through one injector point before delegating to the
  wrapped backend.  With nothing armed it is bit-identical to the bare
  backend (the conformance suite runs through it unchanged); armed, it
  models a dead shard or an unreachable replica.

The error raised, :class:`InjectedFault`, subclasses
:class:`ConnectionError` deliberately: it is an *infrastructure*
failure, so :class:`~repro.repository.backends.replicated.ReplicatedBackend`
fails reads over to a healthy copy and counts failed mirror writes for
``anti_entropy()`` repair — exactly what a real outage does.

:class:`~repro.repository.backends.file.FileBackend` exposes one more
seam of its own: ``fault_hook``, called (when set) between the
change-counter bump and the content rename inside a write — the one
window where a crash leaves an advanced counter with no new content.
The soak's file-crash fault arms an injector point there.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Sequence

from repro.repository.backends.base import GetRequest, StorageBackend
from repro.repository.concurrency import Mutex
from repro.repository.entry import ExampleEntry
from repro.repository.query import QueryPlan, QueryResult, QueryStats
from repro.repository.versioning import Version

__all__ = ["FaultInjector", "FlakyBackend", "InjectedFault", "SlowBackend"]


class InjectedFault(ConnectionError):
    """A deliberately injected infrastructure failure.

    ``ConnectionError`` (not :class:`~repro.core.errors.BxError`), so
    every layer treats it as an outage: replicated reads fail over,
    mirror writes are counted for repair, and the service facade
    propagates it to the caller like any other infra error.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


class FaultInjector:
    """A registry of named fault points, armed one-shot or latched.

    Components call :meth:`trip(point)` at their fault points; the call
    is a no-op unless that point is armed.  ``mode="once"`` disarms
    after the first firing (a crash happens once); ``mode="latched"``
    keeps firing until :meth:`heal` (an outage lasts until repaired).
    :meth:`fired` counts firings per point, which is what lets a test
    assert a fault was observed exactly once.
    """

    _ONCE = "once"
    _LATCHED = "latched"

    def __init__(self) -> None:
        self._mutex = Mutex()
        self._armed: dict[str, str] = {}
        self._fired: dict[str, int] = {}

    def arm(self, point: str, *, mode: str = "once") -> None:
        if mode not in (self._ONCE, self._LATCHED):
            raise ValueError(f"unknown fault mode {mode!r}")
        with self._mutex:
            self._armed[point] = mode

    def heal(self, point: str) -> None:
        """Disarm a point (no-op if it is not armed)."""
        with self._mutex:
            self._armed.pop(point, None)

    def trip(self, point: str) -> None:
        """Raise :class:`InjectedFault` if ``point`` is armed."""
        with self._mutex:
            mode = self._armed.get(point)
            if mode is None:
                return
            self._fired[point] = self._fired.get(point, 0) + 1
            if mode == self._ONCE:
                del self._armed[point]
        raise InjectedFault(point)

    def observe(self, point: str) -> bool:
        """Count a firing if ``point`` is armed, without raising.

        The non-failing twin of :meth:`trip`, for faults that degrade
        rather than break (a brownout slows calls down instead of
        failing them — :class:`SlowBackend`).  One-shot arming still
        disarms after the first observation.
        """
        with self._mutex:
            mode = self._armed.get(point)
            if mode is None:
                return False
            self._fired[point] = self._fired.get(point, 0) + 1
            if mode == self._ONCE:
                del self._armed[point]
        return True

    def hook(self, point: str) -> Callable[[str], None]:
        """An adapter for single-callable seams (``FileBackend.fault_hook``).

        The seam passes its own sub-point name (e.g. ``"pre-rename"``);
        the armed/counted identity stays the injector point, so the
        scheduling side never needs to know the seam's internals.
        """
        def fire(_sub_point: str) -> None:
            self.trip(point)
        return fire

    def armed(self, point: str) -> bool:
        with self._mutex:
            return point in self._armed

    def fired(self, point: str) -> int:
        """How many times ``point`` has fired since construction."""
        with self._mutex:
            return self._fired.get(point, 0)

    def fired_counts(self) -> dict[str, int]:
        with self._mutex:
            return dict(self._fired)


class FlakyBackend(StorageBackend):
    """A delegating wrapper that can be made to fail like a dead node.

    Every operation trips the injector at this wrapper's point first,
    then delegates verbatim — so with the point unarmed the wrapper is
    observationally identical to the wrapped backend (the conformance
    suite holds it to that), and with the point latched the backend is
    down for reads *and* writes, the way a crashed shard or partitioned
    replica is.
    """

    def __init__(self, inner: StorageBackend, injector: FaultInjector,
                 point: str) -> None:
        self.inner = inner
        self.injector = injector
        self.point = point

    def _trip(self) -> None:
        """The single seam every operation passes through.

        Subclasses override this to change what an armed point *does*
        (fail here; delay in :class:`SlowBackend`) without re-touching
        the twenty delegating methods.
        """
        self.injector.trip(self.point)

    # -- convenience controls (sugar over the injector) ----------------

    def kill(self) -> None:
        """Latch the fault: every operation fails until :meth:`revive`."""
        self.injector.arm(self.point, mode="latched")

    def revive(self) -> None:
        self.injector.heal(self.point)

    # -- reads ----------------------------------------------------------

    def identifiers(self) -> list[str]:
        self._trip()
        return self.inner.identifiers()

    def versions(self, identifier: str) -> list[Version]:
        self._trip()
        return self.inner.versions(identifier)

    def versions_many(
            self, identifiers: Sequence[str]) -> dict[str, list[Version]]:
        self._trip()
        return self.inner.versions_many(identifiers)

    def has(self, identifier: str) -> bool:
        self._trip()
        return self.inner.has(identifier)

    def entry_count(self) -> int:
        self._trip()
        return self.inner.entry_count()

    def latest_version(self, identifier: str) -> Version:
        self._trip()
        return self.inner.latest_version(identifier)

    def get(self, identifier: str,
            version: Version | None = None) -> ExampleEntry:
        self._trip()
        return self.inner.get(identifier, version)

    def get_many(self,
                 requests: Sequence[GetRequest]) -> list[ExampleEntry]:
        self._trip()
        return self.inner.get_many(requests)

    # -- writes ---------------------------------------------------------

    def add(self, entry: ExampleEntry) -> None:
        self._trip()
        self.inner.add(entry)

    def add_version(self, entry: ExampleEntry) -> None:
        self._trip()
        self.inner.add_version(entry)

    def replace_latest(self, entry: ExampleEntry) -> None:
        self._trip()
        self.inner.replace_latest(entry)

    def add_many(self, entries: Iterable[ExampleEntry]) -> int:
        self._trip()
        return self.inner.add_many(entries)

    # -- queries / introspection ---------------------------------------

    @property
    def supports_native_query(self) -> bool:  # type: ignore[override]
        return self.inner.supports_native_query

    def execute_query(self, plan: QueryPlan,
                      stats: QueryStats | None = None) -> QueryResult:
        self._trip()
        return self.inner.execute_query(plan, stats)

    def query_stats(self, terms: Sequence[str]) -> QueryStats:
        self._trip()
        return self.inner.query_stats(terms)

    def change_counter(self) -> int | None:
        self._trip()
        return self.inner.change_counter()

    def change_token(self) -> str | None:
        self._trip()
        return self.inner.change_token()

    def cache_stats(self) -> dict[str, dict[str, int]]:
        # Introspection stays up during an outage: counters are local
        # bookkeeping, not a remote call.
        return self.inner.cache_stats()

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self.inner.close()

    def __getattr__(self, name: str):
        # Backend-specific extras (``anti_entropy``, ``shard_for``, ...)
        # pass straight through; only the storage interface is flaky.
        return getattr(self.inner, name)

class SlowBackend(FlakyBackend):
    """A delegating wrapper that models a *brownout*: slow, not dead.

    The nastier cousin of :class:`FlakyBackend` — a browned-out node
    still answers, just late, so failover logic keyed on errors never
    triggers and only deadlines save the caller.  While the point is
    armed every operation sleeps ``delay`` seconds before delegating
    (and the firing is counted via :meth:`FaultInjector.observe`);
    unarmed, the wrapper is observationally identical to the wrapped
    backend.  ``sleep`` is injectable so unit tests can assert the
    delay without paying it.
    """

    def __init__(self, inner: StorageBackend, injector: FaultInjector,
                 point: str, *, delay: float = 0.2,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        super().__init__(inner, injector, point)
        self.delay = delay
        self._sleep = sleep

    def _trip(self) -> None:
        if self.injector.observe(self.point):
            self._sleep(self.delay)

    # -- convenience controls (sugar over the injector) ----------------

    def brownout(self) -> None:
        """Latch the slowdown: every operation delays until :meth:`restore`."""
        self.injector.arm(self.point, mode="latched")

    def restore(self) -> None:
        self.injector.heal(self.point)
