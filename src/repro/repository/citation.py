"""Citation support: "recommend a format for citations to examples".

§5.2: "it seems like a good idea to recommend a format for citations to
examples (including versions) or to the repository itself", because
"readers seeing the reference need to be able to identify exactly the
example referred to".

Three things are citable:

* an example **at a version** (:func:`cite_entry`) — the stable reference
  a paper should use;
* the repository itself (:func:`cite_repository`);
* the archival snapshot (:func:`cite_archive`) — the paper's idea of
  collecting "the most recent versions of all of the examples ... into a
  manuscript (with all authors and reviewers named)" once the repository
  matures; :func:`archive_manuscript` assembles exactly that author list.

Supported styles: ``"plain"`` (running text) and ``"bibtex"``.
"""

from __future__ import annotations

from repro.core.errors import CitationError
from repro.repository.entry import ExampleEntry
from repro.repository.store import RepositoryStore

__all__ = [
    "REPOSITORY_URL",
    "cite_entry",
    "cite_repository",
    "cite_archive",
    "archive_manuscript",
    "entry_url",
]

#: Where the paper hosts the repository.
REPOSITORY_URL = "http://bx-community.wikidot.com/examples:home"

_STYLES = ("plain", "bibtex")


def entry_url(entry: ExampleEntry) -> str:
    """The stable URL of an entry page (wikidot category:page convention)."""
    return f"http://bx-community.wikidot.com/examples:{entry.identifier}"


def _authors_text(authors: tuple[str, ...]) -> str:
    if not authors:
        raise CitationError("cannot cite an entry with no authors")
    if len(authors) == 1:
        return authors[0]
    return ", ".join(authors[:-1]) + " and " + authors[-1]


def _check_style(style: str) -> None:
    if style not in _STYLES:
        raise CitationError(
            f"unknown citation style {style!r}; supported: "
            f"{', '.join(_STYLES)}")


def cite_entry(entry: ExampleEntry, style: str = "plain",
               year: str = "2014") -> str:
    """Cite one example at its exact version.

    The version is part of the citation — that is the §5.2 point: the
    identifier plus version pins "exactly the example referred to".
    """
    _check_style(style)
    authors = _authors_text(entry.authors)
    if style == "plain":
        return (f"{authors}. “{entry.title}”, version "
                f"{entry.version}. In: The Bx Examples Repository. "
                f"{entry_url(entry)}")
    key = f"bx-example-{entry.identifier}-{entry.version}"
    return "\n".join([
        f"@misc{{{key},",
        f"  author = {{{' and '.join(entry.authors)}}},",
        f"  title = {{{entry.title} (version {entry.version})}},",
        "  howpublished = {Entry in the Bx Examples Repository},",
        f"  url = {{{entry_url(entry)}}},",
        f"  year = {{{year}}},",
        "}",
    ])


def cite_repository(style: str = "plain") -> str:
    """Cite the repository as a whole (the paper is its canonical
    literature reference)."""
    _check_style(style)
    if style == "plain":
        return ("James Cheney, James McKinna, Perdita Stevens and Jeremy "
                "Gibbons. “Towards a Repository of Bx Examples”. "
                "In: Workshop Proceedings of the EDBT/ICDT 2014 Joint "
                "Conference, pp. 87–91, 2014. Repository at "
                f"{REPOSITORY_URL}")
    return "\n".join([
        "@inproceedings{bx-examples-repository,",
        "  author = {James Cheney and James McKinna and Perdita Stevens"
        " and Jeremy Gibbons},",
        "  title = {Towards a Repository of Bx Examples},",
        "  booktitle = {Workshop Proceedings of the EDBT/ICDT 2014 Joint"
        " Conference},",
        "  pages = {87--91},",
        "  year = {2014},",
        f"  url = {{{REPOSITORY_URL}}},",
        "}",
    ])


def archive_manuscript(store: RepositoryStore,
                       query=None) -> dict[str, object]:
    """Assemble the archival snapshot the paper anticipates (§5.2).

    "Collect the most recent versions of all of the examples in it into a
    manuscript (with all authors and reviewers named)".  Returns a dict
    with the sorted contributor lists and the latest entry snapshots,
    ready for rendering or citation.

    ``query`` optionally narrows the manuscript to a slice of the
    collection via the unified query API (e.g. ``Q.reviewed()`` for an
    archive of only the approved examples); selection is in identifier
    order, matching the unfiltered listing.
    """
    if query is None:
        entries = store.get_many(store.identifiers())
    else:
        from repro.repository.query import plan

        entries = [hit.entry
                   for hit in store.execute_query(
                       plan(query, sort="identifier")).hits]
    authors = sorted({name for entry in entries for name in entry.authors})
    reviewers = sorted({name for entry in entries
                        for name in entry.reviewers})
    return {
        "title": "The Bx Examples Repository: Archival Snapshot",
        "authors": authors,
        "reviewers": reviewers,
        "entries": entries,
        "entry_count": len(entries),
    }


def cite_archive(store: RepositoryStore, style: str = "plain",
                 year: str = "2014") -> str:
    """Cite the archival snapshot of the whole repository."""
    _check_style(style)
    manuscript = archive_manuscript(store)
    authors = _authors_text(tuple(manuscript["authors"]))  # type: ignore[arg-type]
    count = manuscript["entry_count"]
    if style == "plain":
        return (f"{authors}. “{manuscript['title']}” "
                f"({count} examples). {REPOSITORY_URL}")
    return "\n".join([
        "@techreport{bx-examples-archive,",
        f"  author = {{{' and '.join(manuscript['authors'])}}},",  # type: ignore[arg-type]
        f"  title = {{{manuscript['title']}}},",
        f"  note = {{{count} examples}},",
        f"  url = {{{REPOSITORY_URL}}},",
        f"  year = {{{year}}},",
        "}",
    ])
