"""In-memory storage backend: a dict of version histories."""

from __future__ import annotations

from repro.core.errors import (
    DuplicateEntry,
    EntryNotFound,
    StorageError,
    VersioningError,
)
from repro.repository.backends.base import StorageBackend
from repro.repository.entry import ExampleEntry
from repro.repository.versioning import Version, VersionHistory

__all__ = ["MemoryBackend"]


class MemoryBackend(StorageBackend):
    """Ephemeral backend for tests and in-process composition."""

    def __init__(self) -> None:
        self._histories: dict[str, VersionHistory] = {}

    def identifiers(self) -> list[str]:
        return sorted(self._histories)

    def versions(self, identifier: str) -> list[Version]:
        return self._history(identifier).versions()

    def get(self, identifier: str, version: Version | None = None) -> ExampleEntry:
        history = self._history(identifier)
        if version is None:
            return history.latest  # type: ignore[return-value]
        try:
            return history.get(version)  # type: ignore[return-value]
        except VersioningError:
            raise EntryNotFound(identifier, str(version)) from None

    def has(self, identifier: str) -> bool:
        return identifier in self._histories

    def add(self, entry: ExampleEntry) -> None:
        if entry.identifier in self._histories:
            raise DuplicateEntry(entry.identifier)
        history = VersionHistory()
        history.append(entry.version, entry)
        self._histories[entry.identifier] = history

    def add_version(self, entry: ExampleEntry) -> None:
        history = self._history(entry.identifier)
        if entry.version <= history.latest_version:
            raise StorageError(
                f"version {entry.version} does not increase on "
                f"{history.latest_version} for {entry.identifier!r}"
            )
        history.append(entry.version, entry)

    def replace_latest(self, entry: ExampleEntry) -> None:
        history = self._history(entry.identifier)
        if entry.version != history.latest_version:
            raise StorageError(
                "replace_latest must keep the version "
                f"({history.latest_version}), got {entry.version}"
            )
        history.replace_latest(entry.version, entry)

    def entry_count(self) -> int:
        return len(self._histories)

    # change_counter: inherits the base's None.  An in-process counter
    # would be worse than none: a fresh process starts a fresh
    # MemoryBackend at the same count, so a snapshot stamped by a
    # previous process would be trusted against a different corpus.
    # None makes snapshot reuse impossible, which for an ephemeral
    # backend is the only safe answer.

    def _history(self, identifier: str) -> VersionHistory:
        history = self._histories.get(identifier)
        if history is None:
            raise EntryNotFound(identifier)
        return history
