"""Sharded backend: hash-route identifiers across N child backends.

The first horizontal-scaling layer over the ``StorageBackend`` seam.  Each
identifier is routed to exactly one child backend by a *stable* hash
(CRC-32 of the identifier bytes, modulo the shard count — stable across
processes and Python versions, unlike the builtin ``hash``), so point
operations cost exactly one child call and the batch operations fan out
over a thread pool, one sub-batch per shard touched.

Fan-out parallelism is real work, not bookkeeping: each SQLite shard holds
its own connections (and releases the GIL inside the C library), and each
file shard does its own I/O, so ``get_many`` over four sqlite shards runs
four queries concurrently.

Guarantees and their limits:

* every per-identifier guarantee of the interface (stable identifiers,
  append-only strictly-increasing histories, pinned ``replace_latest``)
  holds, because one identifier always lives on one shard;
* ``add_many`` is atomic *per shard* when the children are transactional
  (SQLite), but not across shards — a failing sub-batch on one shard
  leaves other shards' sub-batches stored, matching the documented
  non-atomic default of the base interface.

Sharding composes with replication: a
:class:`~repro.repository.backends.replicated.ReplicatedBackend` can use a
sharded primary, and shards can themselves be replicated.
"""

from __future__ import annotations

import dataclasses
import zlib
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Iterable, Sequence, TypeVar

from repro.core.errors import DeadlineExceeded, StorageError
from repro.repository.backends.base import (
    GetRequest,
    StorageBackend,
    _split_request,
    merge_cache_stats,
)
from repro.repository.entry import ExampleEntry
from repro.repository.query import (
    QueryPlan,
    QueryResult,
    QueryStats,
    collect_positive_terms,
    collect_terms,
    merge_results,
)
from repro.repository.resilience import (
    Deadline,
    current_deadline,
    deadline_scope,
)
from repro.repository.versioning import Version

__all__ = ["ShardedBackend", "shard_index"]

_T = TypeVar("_T")


def shard_index(identifier: str, shard_count: int) -> int:
    """The shard an identifier routes to: stable across processes."""
    return zlib.crc32(identifier.encode("utf-8")) % shard_count


class ShardedBackend(StorageBackend):
    """Route identifiers across children; fan batches out in parallel."""

    def __init__(
        self,
        shards: Sequence[StorageBackend],
        *,
        max_workers: int | None = None,
        shard_timeout: float | None = None,
    ) -> None:
        self.shards = tuple(shards)
        if not self.shards:
            raise StorageError("ShardedBackend needs at least one shard")
        #: Per-shard *read* bound, in seconds (None: unbounded).  Reads
        #: touching a shard that has browned out — slow, not dead, so
        #: failover logic keyed on errors never fires — fail that
        #: key-range fast with DeadlineExceeded instead of stalling the
        #: whole fan-out behind the one slow child.  An ambient
        #: resilience.Deadline tightens (never loosens) this bound.
        #: Writes are never abandoned mid-flight; they only fail fast
        #: when the deadline is already gone before they start.
        self.shard_timeout = shard_timeout
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers or len(self.shards),
            thread_name_prefix="shard",
        )

    @classmethod
    def create(
        cls,
        scheme: str,
        root: str | Path,
        *,
        shard_count: int = 4,
    ) -> "ShardedBackend":
        """Build ``shard_count`` durable children under one root.

        ``scheme`` is ``"file"`` (``<root>/shard-NN/`` directories) or
        ``"sqlite"`` (``<root>/shard-NN.db`` databases).
        """
        from repro.repository.backends import create_backend

        if shard_count <= 0:
            raise StorageError("shard_count must be positive")
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        if scheme == "sqlite":
            names = [f"shard-{index:02d}.db" for index in range(shard_count)]
        elif scheme == "file":
            names = [f"shard-{index:02d}" for index in range(shard_count)]
        else:
            message = f"cannot build sharded {scheme!r} children"
            raise StorageError(message + "; use 'file' or 'sqlite'")
        return cls([create_backend(scheme, root / name) for name in names])

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_for(self, identifier: str) -> StorageBackend:
        """The child backend an identifier lives on."""
        return self.shards[shard_index(identifier, len(self.shards))]

    def shard_sizes(self) -> list[int]:
        """Entry count per shard (balance introspection)."""
        return self._fan_out(self.shards, lambda shard: shard.entry_count())

    # ------------------------------------------------------------------
    # Point operations: one child call each.
    # ------------------------------------------------------------------

    def identifiers(self) -> list[str]:
        per_shard = self._fan_out(self.shards, lambda s: s.identifiers())
        merged: list[str] = []
        for listing in per_shard:
            merged.extend(listing)
        return sorted(merged)

    def versions(self, identifier: str) -> list[Version]:
        shard = self.shard_for(identifier)
        return self._bounded(
            lambda: shard.versions(identifier), "sharded versions")

    def get(
        self,
        identifier: str,
        version: Version | None = None,
    ) -> ExampleEntry:
        shard = self.shard_for(identifier)
        return self._bounded(
            lambda: shard.get(identifier, version), "sharded get")

    def has(self, identifier: str) -> bool:
        shard = self.shard_for(identifier)
        return self._bounded(lambda: shard.has(identifier), "sharded has")

    def add(self, entry: ExampleEntry) -> None:
        self._write_check("sharded add")
        self.shard_for(entry.identifier).add(entry)

    def add_version(self, entry: ExampleEntry) -> None:
        self._write_check("sharded add_version")
        self.shard_for(entry.identifier).add_version(entry)

    def replace_latest(self, entry: ExampleEntry) -> None:
        self._write_check("sharded replace_latest")
        self.shard_for(entry.identifier).replace_latest(entry)

    def entry_count(self) -> int:
        return sum(self.shard_sizes())

    # ------------------------------------------------------------------
    # Batch operations: group by shard, fan out, reassemble.
    # ------------------------------------------------------------------

    def add_many(self, entries: Iterable[ExampleEntry]) -> int:
        self._write_check("sharded add_many")
        batch = list(entries)
        grouped: dict[int, list[ExampleEntry]] = {}
        for entry in batch:
            index = shard_index(entry.identifier, len(self.shards))
            grouped.setdefault(index, []).append(entry)

        def load(index: int) -> int:
            return self.shards[index].add_many(grouped[index])

        return sum(self._fan_out(sorted(grouped), load, bounded=False))

    def get_many(self, requests: Sequence[GetRequest]) -> list[ExampleEntry]:
        split = [_split_request(request) for request in requests]
        grouped: dict[int, list[int]] = {}
        for position, (identifier, _version) in enumerate(split):
            index = shard_index(identifier, len(self.shards))
            grouped.setdefault(index, []).append(position)

        def fetch(index: int) -> list[ExampleEntry]:
            sub = [split[position] for position in grouped[index]]
            return self.shards[index].get_many(sub)

        order = sorted(grouped)
        per_shard = self._fan_out(order, fetch)
        results: list[ExampleEntry | None] = [None] * len(split)
        for index, fetched in zip(order, per_shard, strict=True):
            for position, entry in zip(grouped[index], fetched,
                                       strict=True):
                results[position] = entry
        return results  # type: ignore[return-value]

    def versions_many(
        self,
        identifiers: Sequence[str],
    ) -> dict[str, list[Version]]:
        grouped: dict[int, list[str]] = {}
        for identifier in identifiers:
            index = shard_index(identifier, len(self.shards))
            grouped.setdefault(index, []).append(identifier)

        def fetch(index: int) -> dict[str, list[Version]]:
            return self.shards[index].versions_many(grouped[index])

        merged: dict[str, list[Version]] = {}
        for listing in self._fan_out(sorted(grouped), fetch):
            merged.update(listing)
        # Answer in request order (dicts preserve insertion order).
        return {identifier: merged[identifier] for identifier in identifiers}

    # ------------------------------------------------------------------
    # Query fan-out: global stats first, then merge-sorted partials.
    # ------------------------------------------------------------------

    @property
    def supports_native_query(self) -> bool:  # type: ignore[override]
        """Native when every shard is (the fan-out only re-sorts)."""
        return all(shard.supports_native_query for shard in self.shards)

    def change_counter(self) -> int | None:
        """Sum of the shard counters (None if any shard lacks one)."""
        counters = self._fan_out(self.shards,
                                 lambda shard: shard.change_counter())
        if any(counter is None for counter in counters):
            return None
        return sum(counters)

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """The shards' read-cache counters, summed per cache."""
        return merge_cache_stats(
            shard.cache_stats() for shard in self.shards)

    def query_stats(self, terms: Sequence[str]) -> QueryStats:
        """Corpus-global statistics: the shard stats summed.

        Identifiers are disjoint across shards, so document counts and
        per-term document frequencies are additive.
        """
        return QueryStats.merge(self._fan_out(
            self.shards, lambda shard: shard.query_stats(terms)))

    def execute_query(self, plan: QueryPlan,
                      stats: QueryStats | None = None) -> QueryResult:
        """Fan the plan out and reassemble one globally correct page.

        Two phases: aggregate corpus-global ranking statistics (unless
        a parent composite already supplied them), then run the same
        filter on every shard *with those stats*, each shard returning
        its own top ``offset + limit`` hits.  The merge re-sorts the
        partials and cuts the global page, so pagination is exact —
        shard-local scores are comparable precisely because the IDF
        inputs were globalised first.

        A plan with no scoring terms (pure structured filters, or only
        negated text) skips the statistics phase: every score is 0.0
        regardless, and over non-native shards the phase would
        materialise each shard's corpus a second time for nothing.
        """
        if stats is None and collect_positive_terms(plan.where):
            stats = self.query_stats(collect_terms(plan.where))
        elif stats is None:
            stats = QueryStats(0)
        child_plan = dataclasses.replace(
            plan, offset=0, limit=plan.page_end())
        partials = self._fan_out(
            self.shards,
            lambda shard: shard.execute_query(child_plan, stats))
        return merge_results(partials, plan)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        for shard in self.shards:
            shard.close()

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _read_deadline(self) -> Deadline | None:
        """The bound on one read: the ambient deadline, tightened (never
        loosened) by ``shard_timeout``."""
        ambient = current_deadline()
        if self.shard_timeout is None:
            return ambient
        local = Deadline.after(self.shard_timeout)
        if ambient is None or local.remaining() < ambient.remaining():
            return local
        return ambient

    def _write_check(self, label: str) -> None:
        # Writes fail fast *before* touching a shard, never midway: an
        # abandoned half-applied batch is worse than a late one.
        deadline = current_deadline()
        if deadline is not None:
            deadline.check(label)

    @staticmethod
    def _scoped(
        deadline: Deadline,
        operation: Callable[..., _T],
        *args: object,
    ) -> _T:
        # ContextVars do not cross into pool threads; re-bind the
        # deadline so child backends (e.g. a nested fan-out) see it.
        with deadline_scope(deadline):
            return operation(*args)

    def _bounded(self, operation: Callable[[], _T], label: str) -> _T:
        """Run one point read under the effective deadline.

        With no deadline active this is an inline call — zero overhead
        beyond one ContextVar lookup.  Under a deadline the call runs on
        the pool so the caller can stop waiting when time is up; the
        worker may still finish late, but its result is discarded and
        the operation is read-only, so a straggler is harmless.
        """
        deadline = self._read_deadline()
        if deadline is None:
            return operation()
        deadline.check(label)
        future = self._pool.submit(self._scoped, deadline, operation)
        try:
            return future.result(timeout=deadline.remaining())
        except _FuturesTimeout:
            future.cancel()
            raise DeadlineExceeded(
                f"{label} exceeded its deadline; the shard may be "
                "browned out") from None

    def _fan_out(
        self,
        items: Iterable[_T],
        operation: Callable[[_T], object],
        *,
        bounded: bool = True,
    ) -> list:
        """Run ``operation`` over items in parallel, preserving order.

        A single-item fan-out runs inline (no pool round-trip) unless a
        read deadline is active.  Without a deadline all futures are
        awaited even when one fails, so no child operation is still
        running when the exception propagates; under a deadline that
        guarantee is deliberately traded away — the caller gets
        :class:`DeadlineExceeded` on time and read-only stragglers are
        left to finish on the pool.  ``bounded=False`` (the write path)
        opts out of deadline enforcement entirely.
        """
        materialised = list(items)
        deadline = self._read_deadline() if bounded else None
        if deadline is None:
            if len(materialised) == 1:
                return [operation(materialised[0])]
            futures = [
                self._pool.submit(operation, item) for item in materialised
            ]
            results = []
            first_error: BaseException | None = None
            for future in futures:
                try:
                    results.append(future.result())
                except BaseException as error:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = error
            if first_error is not None:
                raise first_error
            return results
        deadline.check("sharded fan-out")
        futures = [
            self._pool.submit(self._scoped, deadline, operation, item)
            for item in materialised
        ]
        results = []
        first_error = None
        for future in futures:
            try:
                results.append(future.result(timeout=deadline.remaining()))
            except _FuturesTimeout:
                for pending in futures:
                    pending.cancel()
                raise DeadlineExceeded(
                    "sharded fan-out exceeded its deadline; a shard may "
                    "be browned out") from None
            except BaseException as error:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return results
