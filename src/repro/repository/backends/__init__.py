"""Pluggable storage backends for the repository.

The stable access API lives in :class:`StorageBackend`; the storage
mechanics are interchangeable:

* :class:`MemoryBackend` — dict of histories (tests, composition);
* :class:`FileBackend` — directory of JSON files (the §5.4 local copy);
* :class:`SQLiteBackend` — single indexed database file (bulk loads,
  indexed lookups).

Two *composite* backends scale across any of the above (they wrap
existing backends rather than naming a storage medium, so they are
constructed programmatically, not through the scheme registry):

* :class:`ShardedBackend` — hash-routes identifiers across N child
  backends and fans batch operations out over a thread pool;
* :class:`ReplicatedBackend` — mirrors writes from a primary into
  replicas, reads with failover, and repairs divergence with
  ``anti_entropy()``.

:func:`create_backend` builds a leaf backend from a short scheme name,
for config files and command lines;
:meth:`ShardedBackend.create` builds a durable shard set under one
root directory.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.errors import StorageError
from repro.repository.backends.base import StorageBackend
from repro.repository.backends.file import FileBackend
from repro.repository.backends.memory import MemoryBackend
from repro.repository.backends.replicated import (
    AntiEntropyReport,
    ReplicatedBackend,
)
from repro.repository.backends.sharded import ShardedBackend, shard_index
from repro.repository.backends.sqlite import SQLiteBackend

__all__ = [
    "StorageBackend",
    "MemoryBackend",
    "FileBackend",
    "SQLiteBackend",
    "ShardedBackend",
    "ReplicatedBackend",
    "AntiEntropyReport",
    "shard_index",
    "BACKEND_SCHEMES",
    "create_backend",
]

#: Scheme name -> backend factory; "memory" needs no path.
BACKEND_SCHEMES = {
    "memory": MemoryBackend,
    "file": FileBackend,
    "sqlite": SQLiteBackend,
}


def create_backend(scheme: str, path: str | Path | None = None) -> StorageBackend:
    """Build a backend from a scheme name and (for durable ones) a path.

    >>> create_backend("memory")            # doctest: +ELLIPSIS
    <repro.repository.backends.memory.MemoryBackend object at ...>
    """
    factory = BACKEND_SCHEMES.get(scheme)
    if factory is None:
        known = ", ".join(sorted(BACKEND_SCHEMES))
        raise StorageError(f"unknown storage backend {scheme!r}; known: {known}")
    if scheme == "memory":
        return factory()
    if path is None:
        raise StorageError(f"backend {scheme!r} needs a path")
    return factory(path)
