"""Pluggable storage backends for the repository.

The stable access API lives in :class:`StorageBackend`; the storage
mechanics are interchangeable:

* :class:`MemoryBackend` — dict of histories (tests, composition);
* :class:`FileBackend` — directory of JSON files (the §5.4 local copy);
* :class:`SQLiteBackend` — single indexed database file (bulk loads,
  indexed lookups).

:func:`create_backend` builds one from a short scheme name, for config
files and command lines.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.errors import StorageError
from repro.repository.backends.base import StorageBackend
from repro.repository.backends.file import FileBackend
from repro.repository.backends.memory import MemoryBackend
from repro.repository.backends.sqlite import SQLiteBackend

__all__ = [
    "StorageBackend",
    "MemoryBackend",
    "FileBackend",
    "SQLiteBackend",
    "BACKEND_SCHEMES",
    "create_backend",
]

#: Scheme name -> backend factory; "memory" needs no path.
BACKEND_SCHEMES = {
    "memory": MemoryBackend,
    "file": FileBackend,
    "sqlite": SQLiteBackend,
}


def create_backend(scheme: str,
                   path: str | Path | None = None) -> StorageBackend:
    """Build a backend from a scheme name and (for durable ones) a path.

    >>> create_backend("memory")            # doctest: +ELLIPSIS
    <repro.repository.backends.memory.MemoryBackend object at ...>
    """
    factory = BACKEND_SCHEMES.get(scheme)
    if factory is None:
        known = ", ".join(sorted(BACKEND_SCHEMES))
        raise StorageError(
            f"unknown storage backend {scheme!r}; known: {known}")
    if scheme == "memory":
        return factory()
    if path is None:
        raise StorageError(f"backend {scheme!r} needs a path")
    return factory(path)
