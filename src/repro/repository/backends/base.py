"""The storage backend interface: the seam the repository scales through.

§5.2's usability commitments (stable references, versions that stay
resolvable, a wiki-independent local copy) are *access* guarantees, not
storage decisions — so the access API is pinned down here once, and the
storage mechanics live behind it in interchangeable backends:

* :class:`~repro.repository.backends.memory.MemoryBackend` — dict of
  version histories (tests, ephemeral composition);
* :class:`~repro.repository.backends.file.FileBackend` — directory of
  JSON snapshots (the durable, wiki-independent local copy);
* :class:`~repro.repository.backends.sqlite.SQLiteBackend` — a single
  indexed database file with transactional batch writes (the first step
  towards serving the collection at scale);
* :class:`~repro.repository.backends.sharded.ShardedBackend` /
  :class:`~repro.repository.backends.replicated.ReplicatedBackend` —
  composites that scale horizontally across child backends (hash
  routing with parallel fan-out; primary/replica mirroring with
  anti-entropy repair).

Consumers should normally not talk to a backend directly but through the
:class:`~repro.repository.service.RepositoryService` facade, which adds
caching, batching and change events on top of any backend.

Batch operations (``add_many``, ``get_many``, ``versions_many``) have
straightforward loop defaults here; backends override them when the
medium offers something better (a single SQLite transaction, one shared
directory scan).  The default ``add_many`` is **not** atomic — a failing
entry leaves earlier ones stored; transactional backends document
stronger guarantees.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence, Union

from repro.core.errors import EntryNotFound
from repro.repository.entry import ExampleEntry
from repro.repository.query import (
    CorpusIndex,
    Query,
    QueryPlan,
    QueryResult,
    QueryStats,
    corpus_stats,
    evaluate_plan,
    plan as build_plan,
)
from repro.repository.versioning import Version

__all__ = ["StorageBackend", "GetRequest", "merge_cache_stats"]

#: One ``get_many`` request: an identifier (latest) or (identifier, version).
GetRequest = Union[str, "tuple[str, Version | None]"]


class StorageBackend(ABC):
    """Interface for versioned entry storage.

    The contract every backend honours:

    * identifiers are stable — once assigned they always resolve;
    * version histories are append-only and strictly increasing;
    * ``replace_latest`` is the single sanctioned in-place overwrite
      (comment attachment), and must keep the stored latest version.
    """

    # ------------------------------------------------------------------
    # Required point operations.
    # ------------------------------------------------------------------

    @abstractmethod
    def identifiers(self) -> list[str]:
        """All stored identifiers, sorted."""

    @abstractmethod
    def versions(self, identifier: str) -> list[Version]:
        """All stored versions of one entry, oldest first."""

    @abstractmethod
    def get(self, identifier: str, version: Version | None = None) -> ExampleEntry:
        """The entry at ``version`` (default: latest)."""

    @abstractmethod
    def add(self, entry: ExampleEntry) -> None:
        """Store a brand-new entry; fails if the identifier exists."""

    @abstractmethod
    def add_version(self, entry: ExampleEntry) -> None:
        """Append a new version of an existing entry (must increase)."""

    @abstractmethod
    def replace_latest(self, entry: ExampleEntry) -> None:
        """Overwrite the latest snapshot without a version bump.

        Only two consumers use this, both keeping the curated version
        history intact: comment attachment (comments are not part of
        the versioned description) and the §5.4 wiki synchronisation
        (the wiki page and the local copy are two renderings of the
        *same* version).  The entry's version must equal the stored
        latest version.
        """

    # ------------------------------------------------------------------
    # Existence: override with a direct check (don't list everything).
    # ------------------------------------------------------------------

    def has(self, identifier: str) -> bool:
        """Whether the identifier resolves.

        The default enumerates every identifier; every shipped backend
        overrides it with a direct O(1)/indexed membership check.
        """
        return identifier in self.identifiers()

    # ------------------------------------------------------------------
    # Batch operations (loop defaults; backends may do better).
    # ------------------------------------------------------------------

    def add_many(self, entries: Iterable[ExampleEntry]) -> int:
        """Store many brand-new entries; returns the count stored.

        Non-atomic by default: entries are added one by one and a
        failure leaves the earlier ones in place.  Transactional
        backends (SQLite) override this with all-or-nothing semantics.
        """
        count = 0
        for entry in entries:
            self.add(entry)
            count += 1
        return count

    @contextmanager
    def write_group(self) -> Iterator["StorageBackend"]:
        """Group adjacent writes into one commit unit (group commit).

        Writes issued inside the ``with`` block — by the *same* thread —
        are allowed to share whatever per-write overhead the medium
        charges: SQLite runs the whole group in a single transaction
        with one deferred dirty-flush and bumps the change counter once
        at commit; the file backend batches its counter-file writes the
        same way (two durable counter updates per group instead of two
        per entry).  Semantics that callers may rely on:

        * a failing write inside the group raises at that write and
          affects only itself — earlier writes in the group remain
          staged (transactional backends commit them together at exit);
        * the change counter / change token observed *after* the group
          reflects exactly one logical change, so memo/cache
          invalidation is per group, not per entry;
        * nesting a group inside an active group on the same thread
          joins the outer group.

        The default is a no-op pass-through: backends with no per-write
        commit cost (memory) inherit it unchanged, which keeps the
        conformance suite uniform.  Groups are single-writer: the block
        must not be shared across threads.
        """
        yield self

    def get_many(self, requests: Sequence[GetRequest]) -> list[ExampleEntry]:
        """Resolve many entries in request order.

        Each request is either an identifier (meaning: latest version)
        or an ``(identifier, version)`` pair (``version=None`` again
        meaning latest).
        """
        results = []
        for request in requests:
            identifier, version = _split_request(request)
            results.append(self.get(identifier, version))
        return results

    def versions_many(self, identifiers: Sequence[str]) -> dict[str, list[Version]]:
        """Version lists for many identifiers at once."""
        return {identifier: self.versions(identifier) for identifier in identifiers}

    # ------------------------------------------------------------------
    # The query capability protocol (see repro.repository.query).
    # ------------------------------------------------------------------

    #: Whether :meth:`execute_query` is cheaper than materialising the
    #: corpus in Python — SQLite compiles the plan to SQL; composites
    #: inherit the capability from their children.  The service facade
    #: pushes plans down when this is True and otherwise evaluates them
    #: over its own (persistent, incrementally maintained) index.
    supports_native_query = False

    def change_counter(self) -> int | None:
        """A persisted counter that increases on every write, or None.

        The search-index snapshot is stamped with this value so a later
        process can tell whether the snapshot still reflects the
        backend (see :meth:`SearchIndex.load`).  Backends that cannot
        provide a durable counter return None, which disables snapshot
        reuse but nothing else.
        """
        return None

    def change_token(self) -> str | None:
        """An opaque validator that changes on every write, or None.

        The wire layer's currency: HTTP ``ETag`` values, the server's
        encode memo and the client's validation cache are all keyed by
        this token.  The default derives it from the durable
        :meth:`change_counter` (``"c<n>"``), so any backend with a
        persisted counter — including one written by a foreign
        process — validates for free.  Backends with no counter return
        None; the service facade overlays an in-process epoch+sequence
        token so a served repository always has a validator (see
        :meth:`RepositoryService.change_token`).
        """
        counter = self.change_counter()
        return f"c{counter}" if counter is not None else None

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss/eviction counters of this backend's read caches.

        Keys name a cache (``"decode_memo"``, ``"listing"``); values are
        counter dicts.  The default is empty — ``MemoryBackend`` stores
        live objects and decodes nothing.  Composites merge their
        children's counters (:func:`merge_cache_stats`), and
        ``RepositoryService.cache_stats()`` folds the backend's counters
        in next to its own LRU's.
        """
        return {}

    def query_stats(self, terms: Sequence[str]) -> QueryStats:
        """Corpus statistics for the ranker: N and per-term df.

        The default materialises the corpus; indexed backends answer
        from their term tables, and the sharded composite sums its
        children — which is how fan-out scoring stays equal to
        single-store scoring.
        """
        index = CorpusIndex(self.get_many(self.identifiers()))
        return corpus_stats(index, terms)

    def execute_query(
        self, plan: QueryPlan, stats: QueryStats | None = None
    ) -> QueryResult:
        """Execute one query plan; every backend answers identically.

        The default builds a throwaway in-Python index over the latest
        snapshots and runs the shared evaluator — always correct, never
        fast.  Backends with a cheaper native path (SQL pushdown,
        sharded fan-out, replica routing) override this and set
        :attr:`supports_native_query`; ``stats`` lets a composite
        impose corpus-global ranking statistics on its children.
        """
        index = CorpusIndex(self.get_many(self.identifiers()))
        return evaluate_plan(index, plan, stats)

    def query(
        self,
        query: Query | str | None = None,
        *,
        sort: str = "relevance",
        offset: int = 0,
        limit: int | None = None,
    ) -> QueryResult:
        """Execute one composable query; the single retrieval surface.

        ``query`` is a :class:`~repro.repository.query.Q` expression
        (``Q.text("tree") & Q.type(...)``), a bare string (shorthand
        for ``Q.text``), or None for everything.  Returns a
        :class:`~repro.repository.query.QueryResult`: the requested
        page of ranked hits plus the total match count and facet
        counts over the full match set.

        A concrete convenience over :meth:`execute_query`, shared by
        every layer of the stack (backends, the service facade, the
        async variant, the HTTP client) — part of the
        :class:`~repro.repository.service.RepositoryAPI` contract, so
        it composes the plan here and lets each layer's
        ``execute_query`` decide where the work runs (SQL pushdown,
        sharded fan-out, the service's lazily enabled index, a remote
        server).
        """
        return self.execute_query(
            build_plan(query, sort=sort, offset=offset, limit=limit)
        )

    # ------------------------------------------------------------------
    # Conveniences shared by implementations.
    # ------------------------------------------------------------------

    def latest_version(self, identifier: str) -> Version:
        stored = self.versions(identifier)
        if not stored:
            raise EntryNotFound(identifier)
        return stored[-1]

    def entry_count(self) -> int:
        return len(self.identifiers())

    # ------------------------------------------------------------------
    # Lifecycle (meaningful for connection-holding backends).
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release any held resources; a closed backend may reject calls."""

    def __enter__(self) -> "StorageBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _split_request(request: GetRequest) -> tuple[str, Version | None]:
    if isinstance(request, str):
        return request, None
    identifier, version = request
    return identifier, version


def merge_cache_stats(
    parts: Iterable[dict[str, dict[str, int]]],
) -> dict[str, dict[str, int]]:
    """Sum per-cache counters across child backends (composites)."""
    merged: dict[str, dict[str, int]] = {}
    for part in parts:
        for group, counters in part.items():
            target = merged.setdefault(group, {})
            for name, value in counters.items():
                target[name] = target.get(name, 0) + value
    return merged
