"""SQLite backend: one indexed database file, transactional batch writes.

The first scaling step past directory-of-JSON: snapshots live in a
single ``entries`` table keyed (and therefore indexed) by
``(identifier, major, minor)``, so point lookups and existence checks
are index probes instead of directory scans, and ``add_many`` commits a
whole bulk load in one transaction instead of one rename per snapshot.

``":memory:"`` (the default) gives an ephemeral database useful for
tests and benchmarks; any path gives a durable single-file store in WAL
mode.

Thread safety — the backend is safe to share across threads, which the
sharded fan-out path relies on:

* **durable databases** use one *write* connection serialised on an
  internal lock plus one read-only connection **per reader thread**
  (created lazily, ``PRAGMA query_only=ON``).  WAL mode lets those
  readers run genuinely in parallel with each other and with the single
  writer, and a reader can never observe an uncommitted transaction
  because it never shares the writer's connection;
* **":memory:" databases** exist only on their one connection, so every
  operation — reads included — serialises on the internal lock, as
  before.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from typing import Iterable

from repro.core.errors import (
    DuplicateEntry,
    EntryNotFound,
    StorageError,
)
from repro.repository.backends.base import StorageBackend, _split_request
from repro.repository.entry import ExampleEntry
from repro.repository.versioning import Version

__all__ = ["SQLiteBackend"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    identifier TEXT    NOT NULL,
    major      INTEGER NOT NULL,
    minor      INTEGER NOT NULL,
    payload    TEXT    NOT NULL,
    PRIMARY KEY (identifier, major, minor)
)
"""


class SQLiteBackend(StorageBackend):
    """Versioned entry storage in a single SQLite database."""

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        self._memory = self.path == ":memory:"
        self._lock = threading.Lock()
        self._closed = False
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._local = threading.local()
        self._read_conns: list[sqlite3.Connection] = []
        self._conns_lock = threading.Lock()
        if not self._memory:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.execute(_SCHEMA)

    # ------------------------------------------------------------------
    # Read plumbing.  Durable databases: one read-only connection per
    # thread (WAL readers run in parallel with the writer).  ":memory:"
    # databases exist only on the write connection, so reads serialise
    # on the lock there.
    # ------------------------------------------------------------------

    def _read_conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            if self._closed:
                raise StorageError(f"backend for {self.path!r} is closed")
            # check_same_thread=False so close() may run from any thread.
            conn = sqlite3.connect(self.path, check_same_thread=False)
            conn.execute("PRAGMA query_only=ON")
            self._local.conn = conn
            with self._conns_lock:
                self._read_conns.append(conn)
        return conn

    def _run_read(self, operation):
        if self._memory:
            with self._lock:
                return operation(self._conn)
        return operation(self._read_conn())

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------

    def identifiers(self) -> list[str]:
        rows = self._run_read(lambda conn: conn.execute(
            "SELECT DISTINCT identifier FROM entries "
            "ORDER BY identifier").fetchall())
        return [identifier for (identifier,) in rows]

    def versions(self, identifier: str) -> list[Version]:
        rows = self._run_read(lambda conn: conn.execute(
            "SELECT major, minor FROM entries WHERE identifier = ? "
            "ORDER BY major, minor", (identifier,)).fetchall())
        if not rows:
            raise EntryNotFound(identifier)
        return [Version(major, minor) for major, minor in rows]

    def get(self, identifier: str,
            version: Version | None = None) -> ExampleEntry:
        row = self._run_read(
            lambda conn: self._get_row(conn, identifier, version))
        return ExampleEntry.from_dict(json.loads(row[0]))

    def get_many(self, requests) -> list[ExampleEntry]:
        """Resolve many entries with one latest-version query.

        Latest-version requests are answered by a single correlated
        query per chunk of identifiers instead of one SELECT each;
        explicit-version requests fall back to point lookups.
        """
        split = [_split_request(request) for request in requests]
        latest_wanted = sorted({identifier
                                for identifier, version in split
                                if version is None})

        def fetch(conn) -> list[ExampleEntry]:
            latest: dict[str, str] = {}
            for chunk_start in range(0, len(latest_wanted), 400):
                chunk = latest_wanted[chunk_start:chunk_start + 400]
                marks = ",".join("?" * len(chunk))
                rows = conn.execute(
                    "SELECT e.identifier, e.payload FROM entries e "
                    f"WHERE e.identifier IN ({marks}) AND NOT EXISTS ("
                    "  SELECT 1 FROM entries f "
                    "  WHERE f.identifier = e.identifier "
                    "  AND (f.major > e.major OR "
                    "       (f.major = e.major AND f.minor > e.minor)))",
                    chunk).fetchall()
                latest.update(rows)
            results = []
            for identifier, version in split:
                if version is None:
                    payload = latest.get(identifier)
                    if payload is None:
                        raise EntryNotFound(identifier)
                else:
                    payload = self._get_row(conn, identifier, version)[0]
                results.append(ExampleEntry.from_dict(json.loads(payload)))
            return results

        return self._run_read(fetch)

    def has(self, identifier: str) -> bool:
        return self._run_read(
            lambda conn: self._has(conn, identifier))

    def entry_count(self) -> int:
        (count,) = self._run_read(lambda conn: conn.execute(
            "SELECT COUNT(DISTINCT identifier) FROM entries").fetchone())
        return count

    # ------------------------------------------------------------------
    # Writes (serialised; each is one transaction).
    # ------------------------------------------------------------------

    def add(self, entry: ExampleEntry) -> None:
        with self._lock, self._conn:
            if self._has(self._conn, entry.identifier):
                raise DuplicateEntry(entry.identifier)
            self._insert(entry)

    def add_version(self, entry: ExampleEntry) -> None:
        with self._lock, self._conn:
            latest = self._latest_row(entry.identifier)
            if latest is None:
                raise EntryNotFound(entry.identifier)
            if entry.version <= Version(*latest):
                raise StorageError(
                    f"version {entry.version} does not increase on "
                    f"{Version(*latest)} for {entry.identifier!r}")
            self._insert(entry)

    def replace_latest(self, entry: ExampleEntry) -> None:
        with self._lock, self._conn:
            latest = self._latest_row(entry.identifier)
            if latest is None:
                raise EntryNotFound(entry.identifier)
            if entry.version != Version(*latest):
                raise StorageError(
                    "replace_latest must keep the version "
                    f"({Version(*latest)}), got {entry.version}")
            self._conn.execute(
                "UPDATE entries SET payload = ? WHERE identifier = ? "
                "AND major = ? AND minor = ?",
                (json.dumps(entry.to_dict(), sort_keys=True),
                 entry.identifier, entry.version.major,
                 entry.version.minor))

    def add_many(self, entries: Iterable[ExampleEntry]) -> int:
        """Bulk-load brand-new entries in a single transaction.

        All-or-nothing: if any entry's identifier already exists (in the
        store or earlier in the batch), nothing is stored.
        """
        batch = list(entries)
        with self._lock, self._conn:
            seen: set[str] = set()
            for entry in batch:
                if entry.identifier in seen:
                    raise DuplicateEntry(entry.identifier)
                seen.add(entry.identifier)
            ordered = sorted(seen)
            for chunk_start in range(0, len(ordered), 400):
                chunk = ordered[chunk_start:chunk_start + 400]
                marks = ",".join("?" * len(chunk))
                clash = self._conn.execute(
                    "SELECT identifier FROM entries "
                    f"WHERE identifier IN ({marks}) LIMIT 1",
                    chunk).fetchone()
                if clash is not None:
                    raise DuplicateEntry(clash[0])
            self._conn.executemany(
                "INSERT INTO entries (identifier, major, minor, payload) "
                "VALUES (?, ?, ?, ?)",
                [(entry.identifier, entry.version.major,
                  entry.version.minor,
                  json.dumps(entry.to_dict(), sort_keys=True))
                 for entry in batch])
        return len(batch)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        with self._conns_lock:
            readers, self._read_conns = self._read_conns, []
        for conn in readers:
            conn.close()
        self._conn.close()

    # ------------------------------------------------------------------
    # Internals (writers hold the lock and pass the write connection;
    # readers pass their per-thread connection).
    # ------------------------------------------------------------------

    def _has(self, conn: sqlite3.Connection, identifier: str) -> bool:
        row = conn.execute(
            "SELECT 1 FROM entries WHERE identifier = ? LIMIT 1",
            (identifier,)).fetchone()
        return row is not None

    def _get_row(self, conn: sqlite3.Connection, identifier: str,
                 version: Version | None) -> tuple[str]:
        if version is None:
            row = conn.execute(
                "SELECT payload FROM entries WHERE identifier = ? "
                "ORDER BY major DESC, minor DESC LIMIT 1",
                (identifier,)).fetchone()
            if row is None:
                raise EntryNotFound(identifier)
        else:
            row = conn.execute(
                "SELECT payload FROM entries WHERE identifier = ? "
                "AND major = ? AND minor = ?",
                (identifier, version.major, version.minor)).fetchone()
            if row is None:
                if not self._has(conn, identifier):
                    raise EntryNotFound(identifier)
                raise EntryNotFound(identifier, str(version))
        return row

    def _insert(self, entry: ExampleEntry) -> None:
        self._conn.execute(
            "INSERT INTO entries (identifier, major, minor, payload) "
            "VALUES (?, ?, ?, ?)",
            (entry.identifier, entry.version.major, entry.version.minor,
             json.dumps(entry.to_dict(), sort_keys=True)))

    def _latest_row(self, identifier: str) -> tuple[int, int] | None:
        return self._conn.execute(
            "SELECT major, minor FROM entries WHERE identifier = ? "
            "ORDER BY major DESC, minor DESC LIMIT 1",
            (identifier,)).fetchone()
