"""SQLite backend: one indexed database file, transactional batch writes.

The first scaling step past directory-of-JSON: snapshots live in a
single ``entries`` table keyed (and therefore indexed) by
``(identifier, major, minor)``, so point lookups and existence checks
are index probes instead of directory scans, and ``add_many`` commits a
whole bulk load in one transaction instead of one rename per snapshot.

``":memory:"`` (the default) gives an ephemeral database useful for
tests and benchmarks; any path gives a durable single-file store in WAL
mode.  The connection is created with ``check_same_thread=False`` and
every operation — reads included — serialises on an internal lock, so a
service can be shared across worker threads and a reader can never
observe another thread's uncommitted transaction on the shared
connection.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from typing import Iterable

from repro.core.errors import (
    DuplicateEntry,
    EntryNotFound,
    StorageError,
)
from repro.repository.backends.base import StorageBackend, _split_request
from repro.repository.entry import ExampleEntry
from repro.repository.versioning import Version

__all__ = ["SQLiteBackend"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    identifier TEXT    NOT NULL,
    major      INTEGER NOT NULL,
    minor      INTEGER NOT NULL,
    payload    TEXT    NOT NULL,
    PRIMARY KEY (identifier, major, minor)
)
"""


class SQLiteBackend(StorageBackend):
    """Versioned entry storage in a single SQLite database."""

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        if self.path != ":memory:":
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.execute(_SCHEMA)

    # ------------------------------------------------------------------
    # Reads (locked: the shared connection must never expose another
    # thread's open transaction).
    # ------------------------------------------------------------------

    def identifiers(self) -> list[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT identifier FROM entries "
                "ORDER BY identifier").fetchall()
        return [identifier for (identifier,) in rows]

    def versions(self, identifier: str) -> list[Version]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT major, minor FROM entries WHERE identifier = ? "
                "ORDER BY major, minor", (identifier,)).fetchall()
        if not rows:
            raise EntryNotFound(identifier)
        return [Version(major, minor) for major, minor in rows]

    def get(self, identifier: str,
            version: Version | None = None) -> ExampleEntry:
        with self._lock:
            row = self._get_row(identifier, version)
        return ExampleEntry.from_dict(json.loads(row[0]))

    def get_many(self, requests) -> list[ExampleEntry]:
        """Resolve many entries with one latest-version query.

        Latest-version requests are answered by a single correlated
        query per chunk of identifiers instead of one SELECT each;
        explicit-version requests fall back to point lookups.
        """
        split = [_split_request(request) for request in requests]
        latest_wanted = sorted({identifier
                                for identifier, version in split
                                if version is None})
        with self._lock:
            latest: dict[str, str] = {}
            for chunk_start in range(0, len(latest_wanted), 400):
                chunk = latest_wanted[chunk_start:chunk_start + 400]
                marks = ",".join("?" * len(chunk))
                rows = self._conn.execute(
                    f"SELECT e.identifier, e.payload FROM entries e "
                    f"WHERE e.identifier IN ({marks}) AND NOT EXISTS ("
                    f"  SELECT 1 FROM entries f "
                    f"  WHERE f.identifier = e.identifier "
                    f"  AND (f.major > e.major OR "
                    f"       (f.major = e.major AND f.minor > e.minor)))",
                    chunk).fetchall()
                latest.update(rows)
            results = []
            for identifier, version in split:
                if version is None:
                    payload = latest.get(identifier)
                    if payload is None:
                        raise EntryNotFound(identifier)
                else:
                    payload = self._get_row(identifier, version)[0]
                results.append(ExampleEntry.from_dict(json.loads(payload)))
        return results

    def has(self, identifier: str) -> bool:
        with self._lock:
            return self._has(identifier)

    def entry_count(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(DISTINCT identifier) FROM entries"
            ).fetchone()
        return count

    # ------------------------------------------------------------------
    # Writes (serialised; each is one transaction).
    # ------------------------------------------------------------------

    def add(self, entry: ExampleEntry) -> None:
        with self._lock, self._conn:
            if self._has(entry.identifier):
                raise DuplicateEntry(entry.identifier)
            self._insert(entry)

    def add_version(self, entry: ExampleEntry) -> None:
        with self._lock, self._conn:
            latest = self._latest_row(entry.identifier)
            if latest is None:
                raise EntryNotFound(entry.identifier)
            if entry.version <= Version(*latest):
                raise StorageError(
                    f"version {entry.version} does not increase on "
                    f"{Version(*latest)} for {entry.identifier!r}")
            self._insert(entry)

    def replace_latest(self, entry: ExampleEntry) -> None:
        with self._lock, self._conn:
            latest = self._latest_row(entry.identifier)
            if latest is None:
                raise EntryNotFound(entry.identifier)
            if entry.version != Version(*latest):
                raise StorageError(
                    f"replace_latest must keep the version "
                    f"({Version(*latest)}), got {entry.version}")
            self._conn.execute(
                "UPDATE entries SET payload = ? WHERE identifier = ? "
                "AND major = ? AND minor = ?",
                (json.dumps(entry.to_dict(), sort_keys=True),
                 entry.identifier, entry.version.major,
                 entry.version.minor))

    def add_many(self, entries: Iterable[ExampleEntry]) -> int:
        """Bulk-load brand-new entries in a single transaction.

        All-or-nothing: if any entry's identifier already exists (in the
        store or earlier in the batch), nothing is stored.
        """
        batch = list(entries)
        with self._lock, self._conn:
            seen: set[str] = set()
            for entry in batch:
                if entry.identifier in seen:
                    raise DuplicateEntry(entry.identifier)
                seen.add(entry.identifier)
            ordered = sorted(seen)
            for chunk_start in range(0, len(ordered), 400):
                chunk = ordered[chunk_start:chunk_start + 400]
                marks = ",".join("?" * len(chunk))
                clash = self._conn.execute(
                    f"SELECT identifier FROM entries "
                    f"WHERE identifier IN ({marks}) LIMIT 1",
                    chunk).fetchone()
                if clash is not None:
                    raise DuplicateEntry(clash[0])
            self._conn.executemany(
                "INSERT INTO entries (identifier, major, minor, payload) "
                "VALUES (?, ?, ?, ?)",
                [(entry.identifier, entry.version.major,
                  entry.version.minor,
                  json.dumps(entry.to_dict(), sort_keys=True))
                 for entry in batch])
        return len(batch)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    # ------------------------------------------------------------------
    # Internals (callers hold the lock).
    # ------------------------------------------------------------------

    def _has(self, identifier: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM entries WHERE identifier = ? LIMIT 1",
            (identifier,)).fetchone()
        return row is not None

    def _get_row(self, identifier: str,
                 version: Version | None) -> tuple[str]:
        if version is None:
            row = self._conn.execute(
                "SELECT payload FROM entries WHERE identifier = ? "
                "ORDER BY major DESC, minor DESC LIMIT 1",
                (identifier,)).fetchone()
            if row is None:
                raise EntryNotFound(identifier)
        else:
            row = self._conn.execute(
                "SELECT payload FROM entries WHERE identifier = ? "
                "AND major = ? AND minor = ?",
                (identifier, version.major, version.minor)).fetchone()
            if row is None:
                if not self._has(identifier):
                    raise EntryNotFound(identifier)
                raise EntryNotFound(identifier, str(version))
        return row

    def _insert(self, entry: ExampleEntry) -> None:
        self._conn.execute(
            "INSERT INTO entries (identifier, major, minor, payload) "
            "VALUES (?, ?, ?, ?)",
            (entry.identifier, entry.version.major, entry.version.minor,
             json.dumps(entry.to_dict(), sort_keys=True)))

    def _latest_row(self, identifier: str) -> tuple[int, int] | None:
        return self._conn.execute(
            "SELECT major, minor FROM entries WHERE identifier = ? "
            "ORDER BY major DESC, minor DESC LIMIT 1",
            (identifier,)).fetchone()
