"""SQLite backend: one indexed database file, transactional batch writes.

The first scaling step past directory-of-JSON: snapshots live in a
single ``entries`` table keyed (and therefore indexed) by
``(identifier, major, minor)``, so point lookups and existence checks
are index probes instead of directory scans, and ``add_many`` commits a
whole bulk load in one transaction instead of one rename per snapshot.

``":memory:"`` (the default) gives an ephemeral database useful for
tests and benchmarks; any path gives a durable single-file store in WAL
mode.

Query pushdown — the backend natively executes
:class:`~repro.repository.query.QueryPlan` trees
(``supports_native_query = True``).  Alongside the snapshots it
maintains a set of **latest-version metadata tables**:

* ``latest`` — one row per identifier (its latest major/minor and
  review flag), the base relation queries filter;
* ``latest_types`` / ``latest_properties`` / ``latest_authors`` —
  indexed structured metadata;
* ``latest_terms`` — an FTS-style terms table holding the
  field-boosted term weights of
  :func:`repro.repository.query.entry_terms`.

``execute_query`` compiles the filter AST to SQL over these tables
(``EXISTS`` probes combined with ``AND``/``OR``/``NOT``), computes
facets and ranking-term weights from the metadata tables alone, and
decodes JSON payloads **only for the page of hits it returns** — which
is what makes a selective query over a big store cheap.

Metadata maintenance is **deferred with precise dirty tracking**: each
write transaction records the written identifier in a ``dirty`` table
(one tiny insert, so bulk loads keep their bulk-load speed) and every
query path first re-indexes exactly the dirty identifiers.  The marks
commit with the write, so a crash can never lose index maintenance —
at worst the next query redoes it.  A ``meta`` table carries the
durable change counter that stamps search-index snapshots.  Databases
written before these tables existed are adopted on open by marking
their unindexed identifiers dirty.

Thread safety — the backend is safe to share across threads, which the
sharded fan-out path relies on:

* **durable databases** use one *write* connection serialised on an
  internal lock plus one read-only connection **per reader thread**
  (created lazily, ``PRAGMA query_only=ON``).  WAL mode lets those
  readers run genuinely in parallel with each other and with the single
  writer, and a reader can never observe an uncommitted transaction
  because it never shares the writer's connection;
* **":memory:" databases** exist only on their one connection, so every
  operation — reads included — serialises on the internal lock, as
  before.
"""

from __future__ import annotations

import sqlite3
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.core.errors import (
    DuplicateEntry,
    EntryNotFound,
    StorageError,
)
from repro.repository.backends.base import StorageBackend, _split_request
from repro.repository.codec import DecodeMemo, decode_entry, encode_entry
from repro.repository.concurrency import Mutex
from repro.repository.entry import ExampleEntry
from repro.repository.query import (
    All,
    And,
    ByAuthor,
    HasProperty,
    IsReviewed,
    Not,
    Or,
    QueryPlan,
    QueryResult,
    QueryStats,
    SearchHit,
    Text,
    TypeIs,
    collect_positive_terms,
    empty_facets,
    entry_terms,
    property_facet_label,
    review_facet_label,
    score_entry,
)
from repro.repository.versioning import Version

__all__ = ["SQLiteBackend"]


class _WriteGroup:
    """Mutable state of one open write group (or standalone write).

    ``owner`` is the thread that opened it — writes from that thread
    join the group's transaction; ``entries`` collects every snapshot
    staged so the decode memo can be primed once, at the counter the
    group commits under.  ``counter`` stays None until the commit-time
    bump, which doubles as the committed/rolled-back flag.
    """

    __slots__ = ("owner", "entries", "counter")

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self.entries: list[ExampleEntry] = []
        self.counter: int | None = None

    def stage(self, entry: ExampleEntry) -> None:
        self.entries.append(entry)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    identifier TEXT    NOT NULL,
    major      INTEGER NOT NULL,
    minor      INTEGER NOT NULL,
    payload    TEXT    NOT NULL,
    PRIMARY KEY (identifier, major, minor)
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS latest (
    identifier TEXT PRIMARY KEY,
    major      INTEGER NOT NULL,
    minor      INTEGER NOT NULL,
    reviewed   INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS latest_types (
    identifier TEXT NOT NULL,
    type       TEXT NOT NULL,
    PRIMARY KEY (identifier, type)
);
CREATE INDEX IF NOT EXISTS latest_types_by_type
    ON latest_types (type, identifier);
CREATE TABLE IF NOT EXISTS latest_properties (
    identifier TEXT    NOT NULL,
    name       TEXT    NOT NULL,
    holds      INTEGER NOT NULL,
    PRIMARY KEY (identifier, name, holds)
);
CREATE INDEX IF NOT EXISTS latest_properties_by_name
    ON latest_properties (name, holds, identifier);
CREATE TABLE IF NOT EXISTS latest_authors (
    identifier TEXT NOT NULL,
    author     TEXT NOT NULL,
    PRIMARY KEY (identifier, author)
);
CREATE INDEX IF NOT EXISTS latest_authors_by_author
    ON latest_authors (author, identifier);
CREATE TABLE IF NOT EXISTS latest_terms (
    identifier TEXT NOT NULL,
    term       TEXT NOT NULL,
    weight     REAL NOT NULL,
    PRIMARY KEY (term, identifier)
);
CREATE INDEX IF NOT EXISTS latest_terms_by_identifier
    ON latest_terms (identifier);
CREATE TABLE IF NOT EXISTS dirty (
    identifier TEXT PRIMARY KEY
);
"""

_AUX_TABLES = (
    "latest",
    "latest_types",
    "latest_properties",
    "latest_authors",
    "latest_terms",
)


class SQLiteBackend(StorageBackend):
    """Versioned entry storage in a single SQLite database."""

    supports_native_query = True

    def __init__(self, path: str | Path = ":memory:",
                 durability: str = "normal") -> None:
        if durability not in ("normal", "full"):
            raise StorageError(
                f"durability must be 'normal' or 'full', not {durability!r}")
        self.path = str(path)
        self._memory = self.path == ":memory:"
        #: ``"normal"`` rides WAL's synchronous=NORMAL (commits survive
        #: application crashes, not power loss); ``"full"`` fsyncs every
        #: commit — the configuration where group commit earns its keep,
        #: because N grouped writes pay one fsync instead of N.
        self.durability = durability
        self._lock = Mutex()
        self._group: _WriteGroup | None = None
        self._closed = False
        self._memo = DecodeMemo()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._local = threading.local()
        self._read_conns: list[sqlite3.Connection] = []
        self._conns_lock = Mutex()
        if not self._memory:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(
                "PRAGMA synchronous=FULL" if durability == "full"
                else "PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) "
                "VALUES ('change_counter', 0)"
            )
            self._migrate_latest_tables()

    def _migrate_latest_tables(self) -> None:
        """Adopt a pre-pushdown database: mark unindexed rows dirty.

        A database written before the query tables existed has
        snapshots but no ``latest`` rows; marking those identifiers
        dirty folds the migration into the ordinary deferred-indexing
        flush — the first query re-indexes them.  A no-op for
        databases this version has maintained.
        """
        self._conn.execute(
            "INSERT OR REPLACE INTO dirty "
            "SELECT DISTINCT identifier FROM entries e "
            "WHERE NOT EXISTS ("
            "  SELECT 1 FROM latest l WHERE l.identifier = e.identifier)"
        )

    # ------------------------------------------------------------------
    # Read plumbing.  Durable databases: one read-only connection per
    # thread (WAL readers run in parallel with the writer).  ":memory:"
    # databases exist only on the write connection, so reads serialise
    # on the lock there.
    # ------------------------------------------------------------------

    def _read_conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            if self._closed:
                raise StorageError(f"backend for {self.path!r} is closed")
            # check_same_thread=False so close() may run from any thread.
            conn = sqlite3.connect(self.path, check_same_thread=False)
            conn.execute("PRAGMA query_only=ON")
            self._local.conn = conn
            with self._conns_lock:
                self._read_conns.append(conn)
        return conn

    def _run_read(self, operation):
        group = self._group
        if group is not None and group.owner == threading.get_ident():
            # The thread owning an open write group already holds the
            # lock; read on the open transaction (and see the group's
            # own staged writes).  For durable databases the per-thread
            # WAL reader could not see the uncommitted transaction; for
            # ":memory:" taking the lock again would deadlock.
            return operation(self._conn)
        if self._memory:
            with self._lock:
                return operation(self._conn)
        return operation(self._read_conn())

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------

    def identifiers(self) -> list[str]:
        rows = self._run_read(
            lambda conn: conn.execute(
                "SELECT DISTINCT identifier FROM entries ORDER BY identifier"
            ).fetchall()
        )
        return [identifier for (identifier,) in rows]

    def versions(self, identifier: str) -> list[Version]:
        rows = self._run_read(
            lambda conn: conn.execute(
                "SELECT major, minor FROM entries WHERE identifier = ? "
                "ORDER BY major, minor",
                (identifier,),
            ).fetchall()
        )
        if not rows:
            raise EntryNotFound(identifier)
        return [Version(major, minor) for major, minor in rows]

    def get(self, identifier: str, version: Version | None = None) -> ExampleEntry:
        def fetch(conn) -> ExampleEntry:
            counter = self._counter_on(conn)
            major, minor, payload = self._get_row(conn, identifier, version)
            return self._hydrate(identifier, Version(major, minor), payload, counter)

        return self._run_read(fetch)

    def get_many(self, requests) -> list[ExampleEntry]:
        """Resolve many entries with one latest-version query.

        Latest-version requests are answered by a single correlated
        query per chunk of identifiers instead of one SELECT each;
        explicit-version requests fall back to point lookups.  Each
        snapshot hydrates through the decode memo, so a payload this
        process has seen (or written) since the last write is never
        JSON-decoded again.
        """
        split = [_split_request(request) for request in requests]
        latest_wanted = sorted(
            {identifier for identifier, version in split if version is None}
        )

        def fetch(conn) -> list[ExampleEntry]:
            counter = self._counter_on(conn)
            latest = self._latest_payloads(conn, latest_wanted)
            results = []
            for identifier, version in split:
                if version is None:
                    row = latest.get(identifier)
                    if row is None:
                        raise EntryNotFound(identifier)
                else:
                    row = self._get_row(conn, identifier, version)
                major, minor, payload = row
                results.append(
                    self._hydrate(identifier, Version(major, minor), payload, counter)
                )
            return results

        return self._run_read(fetch)

    def has(self, identifier: str) -> bool:
        return self._run_read(lambda conn: self._has(conn, identifier))

    def entry_count(self) -> int:
        (count,) = self._run_read(
            lambda conn: conn.execute(
                "SELECT COUNT(DISTINCT identifier) FROM entries"
            ).fetchone()
        )
        return count

    def change_counter(self) -> int:
        """Durable write counter (bumped once per write transaction)."""
        return self._run_read(self._counter_on)

    def _counter_on(self, conn: sqlite3.Connection) -> int:
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'change_counter'"
        ).fetchone()
        return int(row[0]) if row is not None else 0

    def _hydrate(
        self, identifier: str, version: Version, payload: str, counter: int
    ) -> ExampleEntry:
        """Decode one payload through the memo (at most once per write)."""
        cached = self._memo.get(identifier, str(version), counter)
        if cached is not None:
            return cached
        entry = decode_entry(payload)
        self._memo.put(identifier, str(version), counter, entry)
        return entry

    def cache_stats(self) -> dict[str, dict[str, int]]:
        return {"decode_memo": self._memo.stats()}

    # ------------------------------------------------------------------
    # Query pushdown.
    # ------------------------------------------------------------------

    def query_stats(self, terms: Sequence[str]) -> QueryStats:
        """N and per-term df straight from the terms table."""
        self._flush_index()
        return self._run_read(lambda conn: self._stats_on(conn, terms))

    def execute_query(
        self, plan: QueryPlan, stats: QueryStats | None = None
    ) -> QueryResult:
        """Compile the plan to SQL; decode payloads only for the page.

        Flushes deferred index maintenance first, then the compiled
        filter runs exactly once (one scan of ``latest`` with indexed
        ``EXISTS`` probes); facet counts and ranking-term weights are
        gathered with chunked ``IN`` probes over the matched
        identifiers, and the JSON snapshots are decoded exactly
        ``len(hits)`` times.
        """
        self._flush_index()
        where_sql, where_params = _compile(plan.where)
        positive_terms = collect_positive_terms(plan.where)

        def fetch(conn) -> QueryResult:
            ranking_stats = stats
            if ranking_stats is None:
                ranking_stats = self._stats_on(conn, positive_terms)
            match_rows = conn.execute(
                f"SELECT m.identifier, m.reviewed FROM latest m WHERE {where_sql}",
                where_params,
            ).fetchall()
            matched = [identifier for identifier, _reviewed in match_rows]
            facets = self._facets_on(conn, match_rows)
            weights = self._term_weights_on(conn, positive_terms, matched)
            scored = [
                (
                    score_entry(
                        positive_terms, ranking_stats, weights.get(identifier, {})
                    ),
                    identifier,
                )
                for identifier in matched
            ]
            if plan.sort == "identifier":
                scored.sort(key=lambda item: item[1])
            else:
                scored.sort(key=lambda item: (-item[0], item[1]))
            page = scored[plan.offset : plan.page_end()]
            counter = self._counter_on(conn)
            payloads = self._latest_payloads(
                conn, [identifier for _score, identifier in page]
            )
            hits = tuple(
                SearchHit(
                    identifier,
                    score,
                    self._hydrate(
                        identifier,
                        Version(*payloads[identifier][:2]),
                        payloads[identifier][2],
                        counter,
                    ),
                )
                for score, identifier in page
            )
            return QueryResult(hits=hits, total=len(matched), facets=facets)

        return self._run_read(fetch)

    def _stats_on(self, conn, terms: Sequence[str]) -> QueryStats:
        unique = list(dict.fromkeys(terms))
        (count,) = conn.execute("SELECT COUNT(*) FROM latest").fetchone()
        frequency = dict.fromkeys(unique, 0)
        if unique:
            marks = ",".join("?" * len(unique))
            frequency.update(
                conn.execute(
                    "SELECT term, COUNT(*) FROM latest_terms "
                    f"WHERE term IN ({marks}) GROUP BY term",
                    unique,
                )
            )
        return QueryStats(count, frequency)

    def _facets_on(self, conn, match_rows: list) -> dict[str, dict[str, int]]:
        facets = empty_facets()
        review = facets["review"]
        for _identifier, reviewed in match_rows:
            label = review_facet_label(bool(reviewed))
            review[label] = review.get(label, 0) + 1
        matched = [identifier for identifier, _reviewed in match_rows]
        for chunk in _chunks(matched):
            marks = ",".join("?" * len(chunk))
            bucket = facets["type"]
            for value, count in conn.execute(
                "SELECT type, COUNT(*) FROM latest_types "
                f"WHERE identifier IN ({marks}) GROUP BY type",
                chunk,
            ):
                bucket[value] = bucket.get(value, 0) + count
            bucket = facets["property"]
            for name, holds, count in conn.execute(
                "SELECT name, holds, COUNT(*) FROM latest_properties "
                f"WHERE identifier IN ({marks}) GROUP BY name, holds",
                chunk,
            ):
                label = property_facet_label(name, bool(holds))
                bucket[label] = bucket.get(label, 0) + count
            bucket = facets["author"]
            for author, count in conn.execute(
                "SELECT author, COUNT(*) FROM latest_authors "
                f"WHERE identifier IN ({marks}) GROUP BY author",
                chunk,
            ):
                bucket[author] = bucket.get(author, 0) + count
        return facets

    def _term_weights_on(
        self, conn, terms: Sequence[str], matched: list
    ) -> dict[str, dict[str, float]]:
        """Per-entry weights of the scoring terms, matching rows only."""
        unique = list(dict.fromkeys(terms))
        if not unique:
            return {}
        term_marks = ",".join("?" * len(unique))
        weights: dict[str, dict[str, float]] = {}
        for chunk in _chunks(matched):
            marks = ",".join("?" * len(chunk))
            for identifier, term, weight in conn.execute(
                "SELECT identifier, term, weight FROM latest_terms "
                f"WHERE term IN ({term_marks}) AND identifier IN ({marks})",
                [*unique, *chunk],
            ):
                weights.setdefault(identifier, {})[term] = weight
        return weights

    def _latest_payloads(
        self, conn, identifiers: Sequence[str]
    ) -> dict[str, tuple[int, int, str]]:
        """Latest ``(major, minor, payload)`` per identifier, in chunked
        bulk queries — the version rides along so callers can probe the
        decode memo before parsing the payload."""
        wanted = list(identifiers)
        latest: dict[str, tuple[int, int, str]] = {}
        for chunk_start in range(0, len(wanted), 400):
            chunk = wanted[chunk_start : chunk_start + 400]
            marks = ",".join("?" * len(chunk))
            rows = conn.execute(
                "SELECT e.identifier, e.major, e.minor, e.payload "
                "FROM entries e "
                f"WHERE e.identifier IN ({marks}) AND NOT EXISTS ("
                "  SELECT 1 FROM entries f "
                "  WHERE f.identifier = e.identifier "
                "  AND (f.major > e.major OR "
                "       (f.major = e.major AND f.minor > e.minor)))",
                chunk,
            ).fetchall()
            latest.update(
                (identifier, (major, minor, payload))
                for identifier, major, minor, payload in rows
            )
        return latest

    # ------------------------------------------------------------------
    # Writes (serialised; each is one transaction, unless an open
    # write group on the same thread absorbs it — see write_group()).
    # ------------------------------------------------------------------

    @contextmanager
    def _write_txn(self) -> Iterator[_WriteGroup]:
        """One write's transactional context: standalone or grouped.

        Standalone: take the writer lock, run the body in its own
        transaction, bump the counter once, then prime the decode memo
        for whatever the body staged.  Inside an open group owned by
        the calling thread: just hand the body the group — the group
        already holds the lock and the open transaction, and it bumps
        the counter and primes the memo once, at commit.
        """
        group = self._group
        if group is not None and group.owner == threading.get_ident():
            yield group
            return
        staged = _WriteGroup(threading.get_ident())
        with self._lock, self._conn:
            yield staged
            staged.counter = self._bump_counter()
        self._prime_memo(staged.entries, staged.counter)

    @contextmanager
    def write_group(self) -> Iterator["SQLiteBackend"]:
        """Group commit: every write in the block shares one transaction.

        The group takes the writer lock once, stages each write's
        inserts and dirty marks in a single transaction, bumps the
        change counter once at exit and primes the decode memo with
        every staged snapshot at that one counter.  A write that fails
        mid-group (duplicate identifier, non-increasing version) raises
        before touching the database and poisons only itself — the
        rest of the group still commits.  If the block itself raises,
        the whole transaction rolls back and the memo is left unprimed.
        Re-entering on the owning thread joins the open group.
        """
        existing = self._group
        if existing is not None and existing.owner == threading.get_ident():
            yield self
            return
        group = _WriteGroup(threading.get_ident())
        with self._lock:
            self._group = group
            try:
                with self._conn:
                    yield self
                    group.counter = self._bump_counter()
            finally:
                self._group = None
        if group.counter is not None:
            self._prime_memo(group.entries, group.counter)

    def add(self, entry: ExampleEntry) -> None:
        with self._write_txn() as txn:
            if self._has(self._conn, entry.identifier):
                raise DuplicateEntry(entry.identifier)
            self._insert(entry)
            self._mark_dirty([entry.identifier])
            txn.stage(entry)

    def add_version(self, entry: ExampleEntry) -> None:
        with self._write_txn() as txn:
            latest = self._latest_row(entry.identifier)
            if latest is None:
                raise EntryNotFound(entry.identifier)
            if entry.version <= Version(*latest):
                raise StorageError(
                    f"version {entry.version} does not increase on "
                    f"{Version(*latest)} for {entry.identifier!r}"
                )
            self._insert(entry)
            self._mark_dirty([entry.identifier])
            txn.stage(entry)

    def replace_latest(self, entry: ExampleEntry) -> None:
        with self._write_txn() as txn:
            latest = self._latest_row(entry.identifier)
            if latest is None:
                raise EntryNotFound(entry.identifier)
            if entry.version != Version(*latest):
                raise StorageError(
                    "replace_latest must keep the version "
                    f"({Version(*latest)}), got {entry.version}"
                )
            self._conn.execute(
                "UPDATE entries SET payload = ? WHERE identifier = ? "
                "AND major = ? AND minor = ?",
                (
                    encode_entry(entry),
                    entry.identifier,
                    entry.version.major,
                    entry.version.minor,
                ),
            )
            self._mark_dirty([entry.identifier])
            txn.stage(entry)

    def add_many(self, entries: Iterable[ExampleEntry]) -> int:
        """Bulk-load brand-new entries in a single transaction.

        All-or-nothing: if any entry's identifier already exists (in the
        store or earlier in the batch), nothing is stored.  Inside an
        open write group the batch joins the group's transaction
        instead (and a clash then poisons only this batch, not the
        group).
        """
        batch = list(entries)
        with self._write_txn() as txn:
            seen: set[str] = set()
            for entry in batch:
                if entry.identifier in seen:
                    raise DuplicateEntry(entry.identifier)
                seen.add(entry.identifier)
            ordered = sorted(seen)
            for chunk_start in range(0, len(ordered), 400):
                chunk = ordered[chunk_start : chunk_start + 400]
                marks = ",".join("?" * len(chunk))
                clash = self._conn.execute(
                    "SELECT identifier FROM entries "
                    f"WHERE identifier IN ({marks}) LIMIT 1",
                    chunk,
                ).fetchone()
                if clash is not None:
                    raise DuplicateEntry(clash[0])
            self._conn.executemany(
                "INSERT INTO entries (identifier, major, minor, payload) "
                "VALUES (?, ?, ?, ?)",
                [
                    (
                        entry.identifier,
                        entry.version.major,
                        entry.version.minor,
                        encode_entry(entry),
                    )
                    for entry in batch
                ],
            )
            self._mark_dirty([entry.identifier for entry in batch])
            for entry in batch:
                txn.stage(entry)
        return len(batch)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        with self._conns_lock:
            readers, self._read_conns = self._read_conns, []
        for conn in readers:
            conn.close()
        self._conn.close()

    # ------------------------------------------------------------------
    # Internals (writers hold the lock and pass the write connection;
    # readers pass their per-thread connection).
    # ------------------------------------------------------------------

    def _has(self, conn: sqlite3.Connection, identifier: str) -> bool:
        row = conn.execute(
            "SELECT 1 FROM entries WHERE identifier = ? LIMIT 1",
            (identifier,),
        ).fetchone()
        return row is not None

    def _get_row(
        self, conn: sqlite3.Connection, identifier: str, version: Version | None
    ) -> tuple[int, int, str]:
        if version is None:
            row = conn.execute(
                "SELECT major, minor, payload FROM entries "
                "WHERE identifier = ? "
                "ORDER BY major DESC, minor DESC LIMIT 1",
                (identifier,),
            ).fetchone()
            if row is None:
                raise EntryNotFound(identifier)
        else:
            row = conn.execute(
                "SELECT major, minor, payload FROM entries "
                "WHERE identifier = ? AND major = ? AND minor = ?",
                (identifier, version.major, version.minor),
            ).fetchone()
            if row is None:
                if not self._has(conn, identifier):
                    raise EntryNotFound(identifier)
                raise EntryNotFound(identifier, str(version))
        return row

    def _insert(self, entry: ExampleEntry) -> None:
        self._conn.execute(
            "INSERT INTO entries (identifier, major, minor, payload) "
            "VALUES (?, ?, ?, ?)",
            (
                entry.identifier,
                entry.version.major,
                entry.version.minor,
                encode_entry(entry),
            ),
        )

    def _latest_row(self, identifier: str) -> tuple[int, int] | None:
        return self._conn.execute(
            "SELECT major, minor FROM entries WHERE identifier = ? "
            "ORDER BY major DESC, minor DESC LIMIT 1",
            (identifier,),
        ).fetchone()

    def _mark_dirty(self, identifiers: Sequence[str]) -> None:
        """Record identifiers whose metadata rows are now stale.

        Runs inside the caller's write transaction, so a write and its
        dirty mark commit (or roll back) together — the deferred flush
        can never miss a committed write, even across a crash.
        """
        self._conn.executemany(
            "INSERT OR REPLACE INTO dirty (identifier) VALUES (?)",
            [(identifier,) for identifier in identifiers],
        )

    def _flush_index(self) -> None:
        """Re-index every dirty identifier's latest-version metadata.

        The deferred half of index maintenance: writes only mark
        identifiers dirty (a single tiny insert, so bulk loads stay
        bulk-load fast); the first query pays the indexing cost for
        whatever accumulated, in one transaction.  Idempotent and
        crash-safe — dirty marks clear only when their rows commit.

        Multi-process safety: the transaction's *first* statement
        deletes exactly the marks being flushed — never a blanket
        ``DELETE FROM dirty`` — so a mark committed by another process
        after our snapshot of the list survives to the next flush.
        That first delete also takes SQLite's single-writer lock, so
        the payloads indexed below cannot be superseded by a foreign
        commit before ours lands (a writer that is blocked on us will
        re-mark its identifier dirty when it proceeds).
        """
        group = self._group
        if group is not None and group.owner == threading.get_ident():
            # A query issued by the thread owning an open write group:
            # flush inside the group's transaction (the lock is already
            # held; the marks commit or roll back with the group).
            rows = self._conn.execute("SELECT identifier FROM dirty").fetchall()
            self._flush_rows([identifier for (identifier,) in rows])
            return
        with self._lock:
            rows = self._conn.execute("SELECT identifier FROM dirty").fetchall()
            dirty = [identifier for (identifier,) in rows]
            if not dirty:
                return
            with self._conn:
                self._flush_rows(dirty)

    def _flush_rows(self, dirty: list) -> None:
        """Re-index the given identifiers on the open write connection."""
        if not dirty:
            return
        for chunk in _chunks(dirty):
            marks = ",".join("?" * len(chunk))
            self._conn.execute(
                f"DELETE FROM dirty WHERE identifier IN ({marks})",
                chunk,
            )
            for table in _AUX_TABLES:
                self._conn.execute(
                    f"DELETE FROM {table} WHERE identifier IN ({marks})",
                    chunk,
                )
        counter = self._counter_on(self._conn)
        payloads = self._latest_payloads(self._conn, dirty)
        self._index_latest_batch(
            [
                self._hydrate(identifier, Version(major, minor), payload, counter)
                for identifier, (major, minor, payload) in payloads.items()
            ]
        )

    def _index_latest_batch(self, batch: Sequence[ExampleEntry]) -> None:
        """Insert metadata rows for entries with no current rows —
        one statement per table (callers delete stale rows first)."""
        self._conn.executemany(
            "INSERT OR REPLACE INTO latest "
            "(identifier, major, minor, reviewed) VALUES (?, ?, ?, ?)",
            [
                (
                    entry.identifier,
                    entry.version.major,
                    entry.version.minor,
                    1 if entry.version.is_reviewed else 0,
                )
                for entry in batch
            ],
        )
        self._conn.executemany(
            "INSERT OR IGNORE INTO latest_types (identifier, type) VALUES (?, ?)",
            [
                (entry.identifier, entry_type.value)
                for entry in batch
                for entry_type in entry.types
            ],
        )
        self._conn.executemany(
            "INSERT OR IGNORE INTO latest_properties "
            "(identifier, name, holds) VALUES (?, ?, ?)",
            [
                (entry.identifier, claim.name, 1 if claim.holds else 0)
                for entry in batch
                for claim in entry.properties
            ],
        )
        self._conn.executemany(
            "INSERT OR IGNORE INTO latest_authors (identifier, author) "
            "VALUES (?, ?)",
            [
                (entry.identifier, author)
                for entry in batch
                for author in entry.authors
            ],
        )
        self._conn.executemany(
            "INSERT INTO latest_terms (identifier, term, weight) VALUES (?, ?, ?)",
            [
                (entry.identifier, term, weight)
                for entry in batch
                for term, weight in entry_terms(entry).items()
            ],
        )

    def _bump_counter(self) -> int:
        self._conn.execute(
            "UPDATE meta SET value = value + 1 WHERE key = 'change_counter'"
        )
        return self._counter_on(self._conn)

    def _prime_memo(self, entries: Sequence[ExampleEntry], counter: int) -> None:
        """After a committed write, memoise the just-encoded entries.

        The payload bytes came from these very objects, so the next
        read (or deferred index flush) skips the decode entirely.  Runs
        *after* the transaction commits — a rolled-back write must not
        leave phantom snapshots in the memo.
        """
        for entry in entries:
            self._memo.put(entry.identifier, str(entry.version), counter, entry)


def _chunks(items: list, size: int = 400):
    """Slices sized for SQLite's bound-parameter limit."""
    for start in range(0, len(items), size):
        yield items[start : start + size]


# ----------------------------------------------------------------------
# Compiling the filter AST to SQL over the latest-version tables.
# ----------------------------------------------------------------------


def _compile(query) -> tuple[str, list]:
    """One WHERE fragment (over alias ``m`` on ``latest``) + params."""
    if isinstance(query, All):
        return "1=1", []
    if isinstance(query, Text):
        unique = list(dict.fromkeys(query.terms))
        if not unique:
            return "0=1", []  # all-stopword text matches nothing
        marks = ",".join("?" * len(unique))
        return (
            "EXISTS (SELECT 1 FROM latest_terms t "
            "WHERE t.identifier = m.identifier "
            f"AND t.term IN ({marks}))",
            unique,
        )
    if isinstance(query, TypeIs):
        return (
            "EXISTS (SELECT 1 FROM latest_types ty "
            "WHERE ty.identifier = m.identifier AND ty.type = ?)",
            [query.entry_type.value],
        )
    if isinstance(query, HasProperty):
        if query.holds is None:
            return (
                "EXISTS (SELECT 1 FROM latest_properties p "
                "WHERE p.identifier = m.identifier AND p.name = ?)",
                [query.name],
            )
        return (
            "EXISTS (SELECT 1 FROM latest_properties p "
            "WHERE p.identifier = m.identifier AND p.name = ? "
            "AND p.holds = ?)",
            [query.name, 1 if query.holds else 0],
        )
    if isinstance(query, ByAuthor):
        return (
            "EXISTS (SELECT 1 FROM latest_authors a "
            "WHERE a.identifier = m.identifier AND a.author = ?)",
            [query.author],
        )
    if isinstance(query, IsReviewed):
        return "m.reviewed = ?", [1 if query.reviewed else 0]
    if isinstance(query, (And, Or)):
        if not query.parts:
            return ("1=1", []) if isinstance(query, And) else ("0=1", [])
        fragments, params = [], []
        for part in query.parts:
            fragment, part_params = _compile(part)
            fragments.append(f"({fragment})")
            params.extend(part_params)
        glue = " AND " if isinstance(query, And) else " OR "
        return glue.join(fragments), params
    if isinstance(query, Not):
        fragment, params = _compile(query.part)
        return f"NOT ({fragment})", params
    raise StorageError(f"cannot compile query node {type(query).__name__}")
