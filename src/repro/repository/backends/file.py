"""Directory-of-JSON backend: the durable, wiki-independent local copy.

Layout::

    <root>/
      entries/<identifier>/<version>.json

Writes are atomic per file (write to a temp name, then rename), so a
crashed writer can leave behind at most a ``*.json.tmp`` fragment or an
empty entry directory — both of which every read path ignores.  The
index is always derived from the directory tree, never stored, so it
cannot point at missing snapshots.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.errors import DuplicateEntry, EntryNotFound, StorageError
from repro.repository.backends.base import StorageBackend
from repro.repository.entry import ExampleEntry
from repro.repository.versioning import Version

__all__ = ["FileBackend"]


class FileBackend(StorageBackend):
    """One JSON file per version snapshot under a root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.entries_dir = self.root / "entries"
        self.entries_dir.mkdir(parents=True, exist_ok=True)
        self._counter_path = self.root / "change-counter"

    # ------------------------------------------------------------------
    # Paths.
    # ------------------------------------------------------------------

    def _entry_dir(self, identifier: str) -> Path:
        return self.entries_dir / identifier

    def _version_path(self, identifier: str, version: Version) -> Path:
        return self._entry_dir(identifier) / f"{version}.json"

    # ------------------------------------------------------------------
    # Interface.
    # ------------------------------------------------------------------

    def identifiers(self) -> list[str]:
        # A directory with no committed snapshot (a writer that crashed
        # between mkdir and rename) does not count as an entry.
        return sorted(path.name for path in self.entries_dir.iterdir()
                      if path.is_dir() and any(path.glob("*.json")))

    def versions(self, identifier: str) -> list[Version]:
        entry_dir = self._entry_dir(identifier)
        if not entry_dir.is_dir():
            raise EntryNotFound(identifier)
        found = [Version.parse(path.stem)
                 for path in entry_dir.glob("*.json")]
        if not found:
            raise EntryNotFound(identifier)
        return sorted(found)

    def get(self, identifier: str,
            version: Version | None = None) -> ExampleEntry:
        if version is None:
            version = self.latest_version(identifier)
        path = self._version_path(identifier, version)
        if not path.is_file():
            raise EntryNotFound(identifier, str(version))
        with path.open(encoding="utf-8") as handle:
            data = json.load(handle)
        entry = ExampleEntry.from_dict(data)
        if entry.identifier != identifier:
            raise StorageError(
                f"file {path} contains entry {entry.identifier!r}, "
                f"expected {identifier!r}")
        return entry

    def has(self, identifier: str) -> bool:
        entry_dir = self._entry_dir(identifier)
        return entry_dir.is_dir() and any(entry_dir.glob("*.json"))

    def add(self, entry: ExampleEntry) -> None:
        if self.has(entry.identifier):
            raise DuplicateEntry(entry.identifier)
        self._entry_dir(entry.identifier).mkdir(parents=True, exist_ok=True)
        self._write(entry)

    def add_version(self, entry: ExampleEntry) -> None:
        existing = self.versions(entry.identifier)  # raises if unknown
        if existing and entry.version <= existing[-1]:
            raise StorageError(
                f"version {entry.version} does not increase on "
                f"{existing[-1]} for {entry.identifier!r}")
        self._write(entry)

    def replace_latest(self, entry: ExampleEntry) -> None:
        latest = self.latest_version(entry.identifier)
        if entry.version != latest:
            raise StorageError(
                f"replace_latest must keep the version ({latest}), "
                f"got {entry.version}")
        self._write(entry)

    def change_counter(self) -> int:
        """Durable write counter, stored next to the entries tree.

        Lives in ``<root>/change-counter``, so a *later* process
        opening the same directory sees what earlier (serialised)
        writers did — which is what lets an index snapshot detect that
        the tree moved on.  Writers must be serialised, as everywhere
        else in this backend (``add`` itself is check-then-act); the
        service facade's write lock provides that within a process,
        and concurrent writer *processes* are outside FileBackend's
        contract.  A tree that predates the counter file reads as 0.
        """
        try:
            return int(self._counter_path.read_text().strip() or 0)
        except (OSError, ValueError):
            return 0

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _write(self, entry: ExampleEntry) -> None:
        # The counter bumps *before* the snapshot rename: a crash
        # between the two leaves an advanced counter and no new
        # content, so a stamped index snapshot merely rebuilds
        # spuriously.  The opposite order would leave new content
        # under an old counter — a stale snapshot trusted as fresh.
        self._bump_counter()
        path = self._version_path(entry.identifier, entry.version)
        temp = path.with_suffix(".json.tmp")
        with temp.open("w", encoding="utf-8") as handle:
            json.dump(entry.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        temp.replace(path)

    def _bump_counter(self) -> None:
        # Atomic per write (temp + rename), like the snapshots.
        temp = self._counter_path.with_name("change-counter.tmp")
        temp.write_text(f"{self.change_counter() + 1}\n")
        temp.replace(self._counter_path)
