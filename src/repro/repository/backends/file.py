"""Directory-of-JSON backend: the durable, wiki-independent local copy.

Layout::

    <root>/
      entries/<identifier>/<version>.json

Writes are atomic per file (write to a temp name, then rename), so a
crashed writer can leave behind at most a ``*.json.tmp`` fragment or an
empty entry directory — both of which every read path ignores.

The read path is cached at two levels, both keyed by the durable
change counter (``<root>/change-counter``), which bumps on every write
— this backend's own, or a foreign process's through another
``FileBackend`` over the same root:

* the **listing cache** replaces the per-call directory scan that
  ``identifiers()`` / ``has()`` / ``versions()`` used to do (a
  ``glob("*.json")`` per call — hot in the sharded fan-out): one scan
  builds an identifier → versions map, writes through this backend
  maintain it incrementally, and a counter mismatch (someone else
  wrote) triggers exactly one rescan;
* the **decode memo** (:class:`~repro.repository.codec.DecodeMemo`)
  caches hydrated :class:`ExampleEntry` objects per ``(identifier,
  version, counter)``, so a snapshot is parsed at most once between
  writes; writes prime it with the entry object they just encoded.

Mutating the tree out of band *without* bumping the counter (dropping
files in by hand) leaves both caches stale until the next counted
write; mutating it through any ``FileBackend`` — or bumping the
counter file — is always coherent.  Crash debris never counts: the
scan ignores ``*.json.tmp`` fragments and entry directories with no
committed snapshot, exactly as the old per-call scans did.
"""

from __future__ import annotations

import bisect
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator

from repro.core.errors import DuplicateEntry, EntryNotFound, StorageError
from repro.repository.backends.base import StorageBackend, _split_request
from repro.repository.codec import DecodeMemo, decode_entry, encode_entry
from repro.repository.entry import ExampleEntry
from repro.repository.versioning import Version

__all__ = ["FileBackend"]


class FileBackend(StorageBackend):
    """One JSON file per version snapshot under a root directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.entries_dir = self.root / "entries"
        self.entries_dir.mkdir(parents=True, exist_ok=True)
        self._counter_path = self.root / "change-counter"
        self._memo = DecodeMemo()
        #: Fault-injection seam (see :mod:`repro.repository.faults`):
        #: when set, called with a point name inside the write sequence
        #: — between the leading counter bump and the content rename,
        #: the window where a crash leaves an advanced counter with no
        #: new content.  None (the default) costs one attribute check
        #: and changes nothing.
        self.fault_hook: "Callable[[str], None] | None" = None
        #: identifier -> sorted versions, valid while the change counter
        #: still equals ``_listing_counter`` (None: needs a scan).
        self._listing_map: dict[str, list[Version]] | None = None
        self._listing_counter = -1
        self._listing_scans = 0
        self._listing_serves = 0
        #: write_group state: the owning thread (None: no open group),
        #: the entries renamed in so far, and the counter the group
        #: opened at (its writes run under ``_group_base + 1``).
        self._group_owner: int | None = None
        self._group_entries: list[ExampleEntry] = []
        self._group_base = -1

    # ------------------------------------------------------------------
    # Paths.
    # ------------------------------------------------------------------

    def _entry_dir(self, identifier: str) -> Path:
        return self.entries_dir / identifier

    def _version_path(self, identifier: str, version: Version) -> Path:
        return self._entry_dir(identifier) / f"{version}.json"

    # ------------------------------------------------------------------
    # The listing cache (satisfies identifiers/has/versions without
    # re-scanning the tree on every call).
    # ------------------------------------------------------------------

    def _listing(self, counter: int | None = None) -> dict[str, list[Version]]:
        """The identifier → versions map at ``counter`` (default: now).

        Scans the tree only when the counter moved since the cached
        scan; callers that already read the counter (batch paths) pass
        it in so one batch costs one counter read.
        """
        if counter is None:
            counter = self.change_counter()
        if self._listing_map is None or self._listing_counter != counter:
            listing: dict[str, list[Version]] = {}
            for path in self.entries_dir.iterdir():
                if not path.is_dir():
                    continue
                found = [
                    Version.parse(snapshot.stem) for snapshot in path.glob("*.json")
                ]
                if found:  # an empty dir is a crashed mkdir, not an entry
                    listing[path.name] = sorted(found)
            self._listing_map = listing
            self._listing_counter = counter
            self._listing_scans += 1
        else:
            self._listing_serves += 1
        return self._listing_map

    def identifiers(self) -> list[str]:
        return sorted(self._listing())

    def versions(self, identifier: str) -> list[Version]:
        stored = self._listing().get(identifier)
        if stored is None:
            raise EntryNotFound(identifier)
        return list(stored)

    def has(self, identifier: str) -> bool:
        return identifier in self._listing()

    # ------------------------------------------------------------------
    # Reads (decode-memoised).
    # ------------------------------------------------------------------

    def get(self, identifier: str, version: Version | None = None) -> ExampleEntry:
        counter = self.change_counter()
        return self._get_at(identifier, version, counter)

    def get_many(self, requests) -> list[ExampleEntry]:
        """Resolve many entries with one counter read for the batch."""
        counter = self.change_counter()
        return [
            self._get_at(identifier, version, counter)
            for identifier, version in map(_split_request, requests)
        ]

    def _get_at(
        self, identifier: str, version: Version | None, counter: int
    ) -> ExampleEntry:
        if version is None:
            stored = self._listing(counter).get(identifier)
            if not stored:
                raise EntryNotFound(identifier)
            version = stored[-1]
        cached = self._memo.get(identifier, str(version), counter)
        if cached is not None:
            return cached
        path = self._version_path(identifier, version)
        if not path.is_file():
            raise EntryNotFound(identifier, str(version))
        entry = decode_entry(path.read_text(encoding="utf-8"))
        if entry.identifier != identifier:
            raise StorageError(
                f"file {path} contains entry {entry.identifier!r}, "
                f"expected {identifier!r}"
            )
        self._memo.put(identifier, str(version), counter, entry)
        return entry

    # ------------------------------------------------------------------
    # Writes.
    # ------------------------------------------------------------------

    @contextmanager
    def write_group(self) -> Iterator["FileBackend"]:
        """Group commit: two counter-file writes for the whole group.

        A standalone write costs two durable counter updates (the
        crash-safe bump-write-bump sequence below); a group pays that
        price once for all its writes — the leading bump opens the
        crash window for the whole group, each write inside is just
        temp-write + rename, and the trailing bump publishes
        everything as one logical change.  A write that fails
        mid-group raises at that write and affects only itself; the
        trailing bump still lands (in ``finally``), so whatever *did*
        rename in is published coherently and every cache keyed by the
        counter revalidates.  Re-entering on the owning thread joins
        the open group.
        """
        if self._group_owner == threading.get_ident():
            yield self
            return
        previous = self.change_counter()
        self._bump_counter(previous + 1)
        if self._listing_map is not None and self._listing_counter == previous:
            # The bump changed no content; carry the listing forward so
            # in-group reads (duplicate checks) skip the rescan.
            self._listing_counter = previous + 1
        self._group_owner = threading.get_ident()
        self._group_entries = []
        self._group_base = previous
        try:
            yield self
        finally:
            entries, self._group_entries = self._group_entries, []
            self._group_owner = None
            counter = previous + 2
            self._bump_counter(counter)
            if self._listing_map is not None and (
                self._listing_counter == previous + 1
            ):
                # _write maintained the map per entry; re-stamp it.
                self._listing_counter = counter
            else:
                self._listing_map = None
            for entry in entries:
                self._memo.put(entry.identifier, str(entry.version), counter, entry)

    def add(self, entry: ExampleEntry) -> None:
        if self.has(entry.identifier):
            raise DuplicateEntry(entry.identifier)
        self._entry_dir(entry.identifier).mkdir(parents=True, exist_ok=True)
        self._write(entry)

    def add_version(self, entry: ExampleEntry) -> None:
        existing = self.versions(entry.identifier)  # raises if unknown
        if existing and entry.version <= existing[-1]:
            raise StorageError(
                f"version {entry.version} does not increase on "
                f"{existing[-1]} for {entry.identifier!r}"
            )
        self._write(entry)

    def replace_latest(self, entry: ExampleEntry) -> None:
        latest = self.latest_version(entry.identifier)
        if entry.version != latest:
            raise StorageError(
                f"replace_latest must keep the version ({latest}), "
                f"got {entry.version}"
            )
        self._write(entry)

    def change_counter(self) -> int:
        """Durable write counter, stored next to the entries tree.

        Lives in ``<root>/change-counter``, so a *later* process
        opening the same directory sees what earlier (serialised)
        writers did — which is what lets an index snapshot detect that
        the tree moved on.  Deliberately re-read from disk on every
        call (never cached in memory): the counter is also the
        invalidation channel for the listing cache and decode memo, so
        a foreign ``FileBackend`` writing to the same root stays
        visible.  Writers must be serialised, as everywhere else in
        this backend (``add`` itself is check-then-act); the service
        facade's write lock provides that within a process, and
        concurrent writer *processes* are outside FileBackend's
        contract.  A tree that predates the counter file reads as 0.
        """
        try:
            return int(self._counter_path.read_text().strip() or 0)
        except (OSError, ValueError):
            return 0

    def cache_stats(self) -> dict[str, dict[str, int]]:
        return {
            "decode_memo": self._memo.stats(),
            "listing": {
                "scans": self._listing_scans,
                "serves": self._listing_serves,
            },
        }

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _write(self, entry: ExampleEntry) -> None:
        if self._group_owner == threading.get_ident():
            self._write_in_group(entry)
            return
        # The counter bumps on *both* sides of the snapshot rename.
        # Before: a crash between bump and rename leaves an advanced
        # counter and no new content, so a stamped index snapshot
        # merely rebuilds spuriously — the opposite order would leave
        # new content under an old counter, a stale snapshot trusted
        # as fresh.  After: a reader racing the rename can have read
        # the first-bumped counter and then the *pre-rename* state —
        # old bytes on a replace_latest, or the entry's absence on an
        # add — and cached it (decode memo, listing cache) under that
        # counter; the second bump orphans whatever was cached in the
        # window.
        previous = self.change_counter()
        self._bump_counter(previous + 1)
        path = self._version_path(entry.identifier, entry.version)
        temp = path.with_suffix(".json.tmp")
        temp.write_text(encode_entry(entry) + "\n", encoding="utf-8")
        if self.fault_hook is not None:
            # Simulated crash window: counter already bumped, content
            # not yet renamed in — at worst a ``*.json.tmp`` fragment,
            # which every read path ignores.
            self.fault_hook("pre-rename")
        temp.replace(path)
        counter = previous + 2
        self._bump_counter(counter)
        # Keep the listing cache coherent without a rescan (only when
        # the cache was current up to this very write).
        if self._listing_map is not None and self._listing_counter == previous:
            stored = self._listing_map.setdefault(entry.identifier, [])
            if entry.version not in stored:
                bisect.insort(stored, entry.version)
            self._listing_counter = counter
        else:
            self._listing_map = None
        # The bytes just written came from this very object: prime the
        # memo so the next read skips the decode entirely.
        self._memo.put(entry.identifier, str(entry.version), counter, entry)

    def _write_in_group(self, entry: ExampleEntry) -> None:
        """One write inside an open group: rename only, no counter I/O.

        The group's leading bump already opened the crash window
        (advanced counter, content trailing), so the per-write bumps
        are skipped; the listing cache and decode memo are maintained
        at the group's working counter so in-group reads (duplicate
        and version checks) stay coherent without a rescan.
        """
        path = self._version_path(entry.identifier, entry.version)
        temp = path.with_suffix(".json.tmp")
        temp.write_text(encode_entry(entry) + "\n", encoding="utf-8")
        if self.fault_hook is not None:
            self.fault_hook("pre-rename")
        temp.replace(path)
        working = self._group_base + 1
        if self._listing_map is not None and self._listing_counter == working:
            stored = self._listing_map.setdefault(entry.identifier, [])
            if entry.version not in stored:
                bisect.insort(stored, entry.version)
        else:
            self._listing_map = None
        self._memo.put(entry.identifier, str(entry.version), working, entry)
        self._group_entries.append(entry)

    def _bump_counter(self, counter: int) -> None:
        # Atomic per write (temp + rename), like the snapshots.
        temp = self._counter_path.with_name("change-counter.tmp")
        temp.write_text(f"{counter}\n")
        temp.replace(self._counter_path)
