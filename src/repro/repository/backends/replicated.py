"""Replicated backend: a primary mirrored into one or more replicas.

§5.4 of the paper asks for a copy of the collection that is independent
of the wiki host.  This backend makes that copy a *live* one: every write
lands on the primary first (and fails the operation if the primary
rejects it), then is mirrored into each replica.  A replica that cannot
keep up — it was offline, it rejected a write, it was created after the
primary already had data — is repaired by :meth:`anti_entropy`, which
walks both histories and reconciles them.

Failure model:

* **primary write failure** — the operation fails; nothing is mirrored.
* **replica write failure** — the operation still succeeds; the failure
  is counted (``replica_write_failures``) and left for repair.
* **primary read failure** — reads fail over to the replicas in order.
  Only *infrastructure* failures fail over (a closed connection, an
  OSError, a typed :class:`~repro.core.errors.BackendUnavailableError`);
  semantic errors such as :class:`~repro.core.errors.EntryNotFound` are
  real answers and propagate.

Every copy sits behind its own :class:`~repro.repository.resilience.\
CircuitBreaker`.  A primary whose breaker is open fails *writes* fast
with :class:`~repro.core.errors.CircuitOpenError` (reads just skip it
and serve from the replicas).  A replica whose breaker opens is
**suspended**: dropped from the read rotation and from mirror writes.
Suspension is deliberately one-way — a recovered replica has missed
mirror writes, so it must be anti-entropy-repaired *before* it serves a
single read again.  :meth:`reintegrate` does exactly that
(repair-then-rejoin); :meth:`check_health` probes every suspended
replica and reintegrates the ones that answer; and
:meth:`start_reintegration_probe` runs that check on a background
:class:`~repro.repository.resilience.HealthProbe` thread.

``anti_entropy()`` treats the primary as authoritative: replicas receive
missing entries, missing version tails, and the primary's latest payload
when the two disagree at the same version.  A replica history that is
*not* an append-away from the primary's (it has versions the primary
lacks) cannot be repaired through the append-only interface; it is
reported as a conflict instead of silently rewritten.

Streaming (async) replication — ``ReplicatedBackend(mode="async")``
acknowledges a write as soon as the primary commits and enqueues the
mirror op onto a bounded **per-replica trailing log**, drained in order
by a background applier thread:

* ``replication_lag()`` is the per-replica log depth (acknowledged but
  not yet applied), surfaced in :meth:`resilience_stats`;
* **backpressure, never drop**: when a log reaches ``max_lag`` the
  writer falls back to draining that replica's log inline —
  synchronously, in order — so an applier that stalls degrades the
  write path to sync mirroring instead of silently losing ops;
* an applier failure (or :meth:`kill_applier`, the fault seam) leaves
  the log trailing; :meth:`anti_entropy` is the **documented backstop**
  — it supersedes and clears the trailing log, reconciles the replica
  from the primary, and the repair-before-rejoin invariant holds
  exactly as in sync mode.  :meth:`wait_for_replication` blocks until
  the lag drains, which is what consistency checks must do before
  comparing replicas against an oracle.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TypeVar

from repro.core.errors import (
    BackendUnavailableError,
    BxError,
    CircuitOpenError,
    DeadlineExceeded,
    StorageError,
)
from repro.repository.backends.base import (
    GetRequest,
    StorageBackend,
    merge_cache_stats,
)
from repro.repository.concurrency import Mutex
from repro.repository.entry import ExampleEntry
from repro.repository.query import QueryPlan, QueryResult, QueryStats
from repro.repository.resilience import CircuitBreaker, HealthProbe, RetryPolicy
from repro.repository.versioning import Version

__all__ = ["AntiEntropyReport", "ReplicatedBackend"]

_T = TypeVar("_T")

#: The two mirroring disciplines (see the module docstring).
_MODES = ("sync", "async")


class _ReplicaApplier(threading.Thread):
    """Background drainer of one replica's trailing log (async mode)."""

    def __init__(self, owner: "ReplicatedBackend", index: int) -> None:
        super().__init__(name=f"replica-applier-{index}", daemon=True)
        self._owner = owner
        self._index = index
        self._stop_event = threading.Event()

    def stop(self) -> None:
        self._stop_event.set()
        cond = self._owner._log_conds[self._index]
        with cond:
            cond.notify_all()

    @property
    def stopped(self) -> bool:
        return self._stop_event.is_set()

    def run(self) -> None:
        owner, index = self._owner, self._index
        cond = owner._log_conds[index]
        log = owner._logs[index]
        while not self._stop_event.is_set():
            with cond:
                while not log and not self._stop_event.is_set():
                    cond.wait(0.1)
                if self._stop_event.is_set():
                    return
            owner._drain_log(index, stop=self._stop_event)


def _is_outage(error: Exception) -> bool:
    """Infrastructure failure (fail over, trip breakers) vs real answer.

    A typed :class:`BackendUnavailableError` is an outage even though it
    is a ``BxError``; every other ``BxError`` (not-found, duplicate,
    deadline) is a semantic answer from a copy that *did* respond.
    """
    if isinstance(error, BackendUnavailableError):
        return True
    return not isinstance(error, BxError)


@dataclass
class AntiEntropyReport:
    """What one :meth:`ReplicatedBackend.anti_entropy` pass changed."""

    entries_copied: int = 0
    versions_appended: int = 0
    payloads_replaced: int = 0
    conflicts: list[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        total = self.entries_copied + self.versions_appended
        return total + self.payloads_replaced > 0

    def merge(self, other: "AntiEntropyReport") -> None:
        self.entries_copied += other.entries_copied
        self.versions_appended += other.versions_appended
        self.payloads_replaced += other.payloads_replaced
        self.conflicts.extend(other.conflicts)


class ReplicatedBackend(StorageBackend):
    """Primary-first writes mirrored to replicas, reads with failover."""

    def __init__(
        self,
        primary: StorageBackend,
        replicas: Sequence[StorageBackend] | StorageBackend,
        *,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        mode: str = "sync",
        max_lag: int = 512,
    ) -> None:
        self.primary = primary
        if isinstance(replicas, StorageBackend):
            replicas = [replicas]
        self.replicas = tuple(replicas)
        self.replica_write_failures = 0
        self.reintegrations = 0
        self._mutex = Mutex()
        self._suspended: set[int] = set()
        self._probe: HealthProbe | None = None
        if mode not in _MODES:
            raise StorageError(f"unknown replication mode {mode!r}")
        if max_lag <= 0:
            raise StorageError("max_lag must be positive")
        #: Streaming replication state.  Built in both modes (a sync
        #: backend just keeps empty logs) so the introspection and
        #: repair paths never need mode checks.
        self._mode = mode
        self.max_lag = max_lag
        self.backpressure_syncs = 0
        self.async_applied = 0
        self._logs = tuple(deque() for _ in self.replicas)
        self._log_conds = tuple(
            threading.Condition(Mutex()) for _ in self.replicas
        )
        #: One per replica: serialises whoever is applying log ops to
        #: it (the applier thread, a backpressured writer, a repair).
        self._apply_mutexes = tuple(Mutex() for _ in self.replicas)
        self._appliers: list[_ReplicaApplier | None] = [None] * len(self.replicas)
        self._applier_retry = RetryPolicy(
            max_attempts=2, base_delay=0.01, max_delay=0.1
        )
        self._primary_breaker = CircuitBreaker(
            failure_threshold=failure_threshold,
            reset_timeout=reset_timeout,
            clock=clock,
            name="primary",
        )
        self._replica_breakers = tuple(
            CircuitBreaker(
                failure_threshold=failure_threshold,
                reset_timeout=reset_timeout,
                clock=clock,
                name=f"replica-{index}",
                # An open breaker pulls the replica from rotation; only
                # reintegrate() (repair-then-rejoin) puts it back.
                on_open=lambda _breaker, index=index: self._suspend(index),
            )
            for index in range(len(self.replicas))
        )
        if self._mode == "async":
            self.start_appliers()

    # ------------------------------------------------------------------
    # Streaming replication: trailing logs, appliers, lag.
    # ------------------------------------------------------------------

    @property
    def mode(self) -> str:
        """The current mirroring discipline: ``"sync"`` or ``"async"``."""
        return self._mode

    def set_replication_mode(self, mode: str) -> None:
        """Switch mirroring disciplines at runtime.

        Switching to sync first drains every trailing log inline (in
        order) and stops the appliers, so the switch itself can never
        drop an acknowledged mirror op; switching to async starts an
        applier per replica.
        """
        if mode not in _MODES:
            raise StorageError(f"unknown replication mode {mode!r}")
        if mode == self._mode:
            return
        if mode == "async":
            self._mode = "async"
            self.start_appliers()
            return
        self._mode = "sync"  # new mirror ops go synchronously from here
        self._stop_appliers(drain=True)

    def start_appliers(self) -> list[int]:
        """(Re)start a drainer for every replica missing a live one.

        The recovery seam after :meth:`kill_applier` or an applier
        death; a no-op for replicas whose applier is already running,
        and in sync mode.  Returns the indices started.
        """
        started: list[int] = []
        if self._mode != "async":
            return started
        for index in range(len(self.replicas)):
            applier = self._appliers[index]
            if applier is not None and applier.is_alive() and not applier.stopped:
                continue
            applier = _ReplicaApplier(self, index)
            self._appliers[index] = applier
            applier.start()
            started.append(index)
        return started

    def kill_applier(self, index: int) -> bool:
        """Fault seam: stop one applier *without* draining its log.

        Simulates an applier crash mid-stream: the trailing log keeps
        accumulating (until backpressure degrades writes to inline
        sync draining) and nothing applies it until
        :meth:`start_appliers` — or :meth:`anti_entropy`, the
        documented backstop, which supersedes and clears the log.
        Returns whether an applier was actually running.
        """
        applier = self._appliers[index]
        if applier is None:
            return False
        applier.stop()
        applier.join(timeout=1.0)
        self._appliers[index] = None
        return True

    def replication_lag(self) -> list[int]:
        """Per-replica trailing-log depth: acknowledged, not yet applied.

        All zeros in sync mode (and in a drained async backend).
        """
        return [len(log) for log in self._logs]

    def wait_for_replication(self, timeout: float = 5.0) -> bool:
        """Block until every trailing log drains; False on timeout.

        The consistency gate for async mode: a write acknowledged by
        the primary is only guaranteed visible on a replica once the
        lag has drained, so oracle comparisons (tests, the soak
        harness) call this first.
        """
        deadline = time.monotonic() + timeout
        for index, cond in enumerate(self._log_conds):
            with cond:
                while self._logs[index]:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    cond.wait(min(remaining, 0.05))
        return True

    def _stop_appliers(self, drain: bool) -> None:
        for applier in self._appliers:
            if applier is not None:
                applier.stop()
        for index, applier in enumerate(self._appliers):
            if applier is not None:
                applier.join(timeout=1.0)
                self._appliers[index] = None
            if drain:
                self._drain_log(index)

    def _drain_log(
        self, index: int, stop: threading.Event | None = None
    ) -> None:
        """Apply one replica's queued ops in order until its log empties.

        Shared by the applier thread, backpressured writers and the
        mode switch; the per-replica apply mutex serialises them.  An
        op stays at the head of the log while it is being applied (so
        ``replication_lag``/``wait_for_replication`` never undercount)
        and is popped after, whatever the outcome — a failed op is
        counted and left for anti-entropy, never retried forever.
        """
        cond = self._log_conds[index]
        log = self._logs[index]
        with self._apply_mutexes[index]:
            while stop is None or not stop.is_set():
                with cond:
                    if not log:
                        return
                    operation = log[0]
                self._apply_replica_op(index, operation)
                with cond:
                    # A concurrent repair may have cleared the log
                    # (superseding this op) while we were applying it.
                    if log and log[0] is operation:
                        log.popleft()
                    cond.notify_all()

    def _apply_replica_op(
        self, index: int, operation: Callable[[StorageBackend], object]
    ) -> None:
        """One trailing-log op against one replica, breaker-accounted.

        Never raises: transient failures get one quick retry (the
        resilience layer's jittered policy), then the op counts as a
        replica write failure and is left for :meth:`anti_entropy`.
        """
        breaker = self._replica_breakers[index]
        if not breaker.allow():
            self.replica_write_failures += 1
            return
        replica = self.replicas[index]
        try:
            self._applier_retry.call(lambda: operation(replica))
        except Exception as error:  # noqa: BLE001 - repaired by anti_entropy
            self.replica_write_failures += 1
            if _is_outage(error):
                breaker.record_failure()
        else:
            breaker.record_success()
            self.async_applied += 1

    # ------------------------------------------------------------------
    # Reads: primary, then failover.
    # ------------------------------------------------------------------

    def identifiers(self) -> list[str]:
        return self._read(lambda backend: backend.identifiers())

    def versions(self, identifier: str) -> list[Version]:
        return self._read(lambda backend: backend.versions(identifier))

    def get(
        self,
        identifier: str,
        version: Version | None = None,
    ) -> ExampleEntry:
        return self._read(lambda backend: backend.get(identifier, version))

    def get_many(self, requests: Sequence[GetRequest]) -> list[ExampleEntry]:
        return self._read(lambda backend: backend.get_many(requests))

    def versions_many(
        self,
        identifiers: Sequence[str],
    ) -> dict[str, list[Version]]:
        return self._read(lambda b: b.versions_many(identifiers))

    def has(self, identifier: str) -> bool:
        return self._read(lambda backend: backend.has(identifier))

    def entry_count(self) -> int:
        return self._read(lambda backend: backend.entry_count())

    # ------------------------------------------------------------------
    # Queries: route to a healthy copy (primary first, then replicas).
    # ------------------------------------------------------------------

    @property
    def supports_native_query(self) -> bool:  # type: ignore[override]
        return self.primary.supports_native_query

    def change_counter(self) -> int | None:
        """The *primary's* counter — the authoritative history.

        Replica counters track replica writes and are not comparable,
        so no failover here: if the primary is down the counter is
        simply unavailable and index snapshots fall back to a rebuild.
        """
        try:
            return self.primary.change_counter()
        except BxError:
            raise
        except Exception:  # noqa: BLE001 - treat an outage as "no counter"
            return None

    def query_stats(self, terms: Sequence[str]):
        return self._read(lambda backend: backend.query_stats(terms))

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Counters of every copy, summed — reads may serve from any
        healthy copy, so the replicas' caches work too."""
        return merge_cache_stats(
            copy.cache_stats()
            for copy in (self.primary, *self.replicas))

    def execute_query(self, plan: QueryPlan,
                      stats: QueryStats | None = None) -> QueryResult:
        """Execute on the primary, failing over to a healthy replica.

        The same infrastructure-vs-semantic failover rule as every
        other read: an unreachable copy is skipped, a real answer
        propagates.  A replica that is behind the primary answers from
        its own (older but internally consistent) state — the standard
        replicated-read caveat.
        """
        return self._read(
            lambda backend: backend.execute_query(plan, stats))

    # ------------------------------------------------------------------
    # Writes: primary decides, replicas follow.
    # ------------------------------------------------------------------

    def add(self, entry: ExampleEntry) -> None:
        self._write(lambda: self.primary.add(entry))
        self._mirror(lambda replica: replica.add(entry))

    def add_version(self, entry: ExampleEntry) -> None:
        self._write(lambda: self.primary.add_version(entry))
        self._mirror(lambda replica: replica.add_version(entry))

    def replace_latest(self, entry: ExampleEntry) -> None:
        self._write(lambda: self.primary.replace_latest(entry))
        self._mirror(lambda replica: replica.replace_latest(entry))

    def add_many(self, entries: Iterable[ExampleEntry]) -> int:
        batch = list(entries)
        count = self._write(lambda: self.primary.add_many(batch))
        self._mirror(lambda replica: replica.add_many(batch))
        return count

    # ------------------------------------------------------------------
    # Repair.
    # ------------------------------------------------------------------

    def anti_entropy(self) -> AntiEntropyReport:
        """Reconcile every replica with the primary; report the repairs.

        Primary-authoritative: replicas gain whatever they are missing
        (whole entries, version tails, the latest payload).  Replica
        versions unknown to the primary are reported as conflicts, never
        deleted — the interface is append-only.
        """
        report = AntiEntropyReport()
        for index, replica in enumerate(self.replicas):
            report.merge(self._repair_replica(index, replica))
            # The pass just reconciled this replica against the primary:
            # that is exactly the repair reintegration requires, so a
            # suspended replica may rejoin the read rotation here.
            self._replica_breakers[index].record_success()
            self._rejoin(index)
        return report

    def reintegrate(self, index: int) -> AntiEntropyReport:
        """Repair one recovered replica, *then* return it to rotation.

        The ordering is the point: a replica that was down missed
        mirror writes, so serving reads from it before anti-entropy
        repair would hand out stale data as fresh.  Raises whatever the
        repair raises when the replica (or the primary) is still
        unreachable — the replica then stays suspended.
        """
        replica = self.replicas[index]
        breaker = self._replica_breakers[index]
        try:
            report = self._repair_replica(index, replica)
        except Exception as error:
            if _is_outage(error):
                breaker.record_failure()
            raise
        breaker.record_success()
        self._rejoin(index)
        return report

    def check_health(self) -> list[int]:
        """Probe suspended replicas; repair-and-rejoin those that answer.

        The deterministic driver for recovery: tests and the soak
        harness call it directly, :meth:`start_reintegration_probe`
        runs it on a background thread.  Returns the indices that were
        reintegrated this pass.
        """
        recovered: list[int] = []
        for index in self.suspended_replicas():
            try:
                self.replicas[index].entry_count()  # cheap liveness probe
            except Exception:  # noqa: BLE001 - still down: stay suspended
                continue
            try:
                self.reintegrate(index)
            except Exception:  # noqa: BLE001 - repair failed: stay suspended
                continue
            recovered.append(index)
        return recovered

    def start_reintegration_probe(self, interval: float = 1.0) -> HealthProbe:
        """Run :meth:`check_health` periodically on a daemon thread."""
        if self._probe is None:
            def all_replicas_serving() -> bool:
                self.check_health()
                return not self.suspended_replicas()

            self._probe = HealthProbe(
                all_replicas_serving,
                interval=interval,
                name="replica-reintegration",
            )
        self._probe.interval = interval
        self._probe.start()
        return self._probe

    def suspended_replicas(self) -> tuple[int, ...]:
        """Indices currently out of the read rotation, pending repair."""
        with self._mutex:
            return tuple(sorted(self._suspended))

    def resilience_stats(self) -> dict[str, object]:
        """Breaker states, suspensions and repair counters, one shot."""
        suspended = set(self.suspended_replicas())
        return {
            "primary": {
                "state": self._primary_breaker.state,
                "opened_total": self._primary_breaker.opened_total,
            },
            "replicas": [
                {
                    "state": breaker.state,
                    "opened_total": breaker.opened_total,
                    "suspended": index in suspended,
                }
                for index, breaker in enumerate(self._replica_breakers)
            ],
            "replica_write_failures": self.replica_write_failures,
            "reintegrations": self.reintegrations,
            "replication": {
                "mode": self._mode,
                "lag": self.replication_lag(),
                "max_lag": self.max_lag,
                "backpressure_syncs": self.backpressure_syncs,
                "async_applied": self.async_applied,
                "appliers_alive": [
                    applier is not None and applier.is_alive()
                    for applier in self._appliers
                ],
            },
        }

    def _repair_replica(
        self,
        index: int,
        replica: StorageBackend,
    ) -> AntiEntropyReport:
        """Reconcile one replica with the primary (the repair pass).

        Holds the replica's apply mutex for the duration so the
        applier (async mode) sits the repair out, and clears the
        trailing log *before* snapshotting the primary: every queued
        op is superseded by the snapshot taken after the clear
        (replaying it would only raise duplicates), while an op
        enqueued after the snapshot survives in the log for the
        applier — so the clear can never lose a write.
        """
        with self._apply_mutexes[index]:
            cond = self._log_conds[index]
            with cond:
                if self._logs[index]:
                    self._logs[index].clear()
                    cond.notify_all()
            primary_versions = self.primary.versions_many(
                self.primary.identifiers()
            )
            return self._repair_from(index, replica, primary_versions)

    def _repair_from(
        self,
        index: int,
        replica: StorageBackend,
        primary_versions: dict[str, list[Version]],
    ) -> AntiEntropyReport:
        report = AntiEntropyReport()
        replica_ids = set(replica.identifiers())
        for orphan in sorted(replica_ids - set(primary_versions)):
            report.conflicts.append(
                f"replica {index}: {orphan!r} unknown to the primary"
            )
        for identifier, have in primary_versions.items():
            if identifier not in replica_ids:
                requests = [(identifier, version) for version in have]
                snapshots = self.primary.get_many(requests)
                replica.add(snapshots[0])
                for snapshot in snapshots[1:]:
                    replica.add_version(snapshot)
                report.entries_copied += 1
                report.versions_appended += len(snapshots) - 1
                continue
            mirrored = replica.versions(identifier)
            seen = len(mirrored)
            if mirrored == have[:seen]:
                # The replica is (at worst) behind: append the tail.
                tail = have[seen:]
                if tail:
                    requests = [(identifier, version) for version in tail]
                    for snapshot in self.primary.get_many(requests):
                        replica.add_version(snapshot)
                    report.versions_appended += len(tail)
                authoritative = self.primary.get(identifier)
                if replica.get(identifier) != authoritative:
                    replica.replace_latest(authoritative)
                    report.payloads_replaced += 1
            else:
                report.conflicts.append(
                    f"replica {index}: {identifier!r} history "
                    f"diverged ({mirrored} vs primary {have})"
                )
        return report

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._probe is not None:
            self._probe.stop()
        # Stop appliers and flush what remains of the trailing logs
        # (breaker-bounded: a dead replica fails fast, not per-op)
        # before the copies close underneath them.
        self._stop_appliers(drain=True)
        self.primary.close()
        for replica in self.replicas:
            replica.close()

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _suspend(self, index: int) -> None:
        with self._mutex:
            self._suspended.add(index)

    def _rejoin(self, index: int) -> bool:
        with self._mutex:
            if index not in self._suspended:
                return False
            self._suspended.discard(index)
            self.reintegrations += 1
            return True

    def _is_suspended(self, index: int) -> bool:
        with self._mutex:
            return index in self._suspended

    def _observed(
        self,
        breaker: CircuitBreaker,
        backend: StorageBackend,
        operation: Callable[[StorageBackend], _T],
    ) -> _T:
        """One call against one copy, with its breaker kept informed.

        Outages count as failures; semantic errors mean the copy
        answered and count as successes (except a deadline expiry,
        which says nothing about the copy's health either way).
        """
        try:
            result = operation(backend)
        except Exception as error:
            if _is_outage(error):
                breaker.record_failure()
            elif not isinstance(error, DeadlineExceeded):
                breaker.record_success()
            raise
        breaker.record_success()
        return result

    def _read(self, operation: Callable[[StorageBackend], _T]) -> _T:
        primary_error: Exception | None = None
        if self._primary_breaker.allow():
            try:
                return self._observed(
                    self._primary_breaker, self.primary, operation)
            except Exception as error:  # noqa: BLE001 - split semantic/outage below
                if not _is_outage(error):
                    raise  # A real answer (not found, duplicate, deadline).
                primary_error = error
        last_error: Exception | None = None
        for index, replica in enumerate(self.replicas):
            if self._is_suspended(index):
                continue  # Stale until repaired; never serve reads from it.
            if not self._replica_breakers[index].allow():
                continue
            try:
                return self._observed(
                    self._replica_breakers[index], replica, operation)
            except Exception as error:  # noqa: BLE001 - try the next replica
                last_error = error
        if last_error is not None:
            if primary_error is not None:
                raise last_error from primary_error
            raise last_error
        if primary_error is not None:
            raise primary_error
        raise CircuitOpenError(
            "no healthy copy: the primary breaker is open and every "
            "replica is suspended",
            retry_after=self._primary_breaker.reset_timeout,
        )

    def _write(self, operation: Callable[[], _T]) -> _T:
        """A primary write under the breaker: a dead primary fails fast."""
        self._primary_breaker.guard()
        try:
            result = operation()
        except Exception as error:
            if _is_outage(error):
                self._primary_breaker.record_failure()
            elif not isinstance(error, DeadlineExceeded):
                self._primary_breaker.record_success()
            raise
        self._primary_breaker.record_success()
        return result

    def _mirror(self, operation: Callable[[StorageBackend], object]) -> None:
        if self._mode == "async":
            self._mirror_async(operation)
            return
        for index, replica in enumerate(self.replicas):
            breaker = self._replica_breakers[index]
            if not breaker.allow():
                # Do not hammer a dead replica with writes it will only
                # reject; the missed write is anti-entropy's to repair.
                self.replica_write_failures += 1
                continue
            try:
                operation(replica)
            except Exception as error:  # noqa: BLE001 - repaired by anti_entropy
                self.replica_write_failures += 1
                if _is_outage(error):
                    breaker.record_failure()
            else:
                breaker.record_success()

    def _mirror_async(
        self, operation: Callable[[StorageBackend], object]
    ) -> None:
        """Enqueue one mirror op per replica; backpressure, never drop.

        A replica whose breaker is open is skipped (as in sync mode —
        anti-entropy repairs it before rejoin).  A log at ``max_lag``
        means the applier is not keeping up: the op still enqueues (so
        order is preserved) and the *writer* drains the log inline —
        the degraded path is synchronous mirroring, never a lost op.
        """
        for index in range(len(self.replicas)):
            breaker = self._replica_breakers[index]
            if not breaker.allow():
                self.replica_write_failures += 1
                continue
            cond = self._log_conds[index]
            with cond:
                full = len(self._logs[index]) >= self.max_lag
                self._logs[index].append(operation)
                cond.notify_all()
            if full:
                self.backpressure_syncs += 1
                self._drain_log(index)
