"""Replicated backend: a primary mirrored into one or more replicas.

§5.4 of the paper asks for a copy of the collection that is independent
of the wiki host.  This backend makes that copy a *live* one: every write
lands on the primary first (and fails the operation if the primary
rejects it), then is mirrored into each replica.  A replica that cannot
keep up — it was offline, it rejected a write, it was created after the
primary already had data — is repaired by :meth:`anti_entropy`, which
walks both histories and reconciles them.

Failure model:

* **primary write failure** — the operation fails; nothing is mirrored.
* **replica write failure** — the operation still succeeds; the failure
  is counted (``replica_write_failures``) and left for repair.
* **primary read failure** — reads fail over to the replicas in order.
  Only *infrastructure* failures fail over (a closed connection, an
  OSError); semantic errors such as
  :class:`~repro.core.errors.EntryNotFound` are real answers and
  propagate.

``anti_entropy()`` treats the primary as authoritative: replicas receive
missing entries, missing version tails, and the primary's latest payload
when the two disagree at the same version.  A replica history that is
*not* an append-away from the primary's (it has versions the primary
lacks) cannot be repaired through the append-only interface; it is
reported as a conflict instead of silently rewritten.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TypeVar

from repro.core.errors import BxError
from repro.repository.backends.base import (
    GetRequest,
    StorageBackend,
    merge_cache_stats,
)
from repro.repository.entry import ExampleEntry
from repro.repository.query import QueryPlan, QueryResult, QueryStats
from repro.repository.versioning import Version

__all__ = ["AntiEntropyReport", "ReplicatedBackend"]

_T = TypeVar("_T")


@dataclass
class AntiEntropyReport:
    """What one :meth:`ReplicatedBackend.anti_entropy` pass changed."""

    entries_copied: int = 0
    versions_appended: int = 0
    payloads_replaced: int = 0
    conflicts: list[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        total = self.entries_copied + self.versions_appended
        return total + self.payloads_replaced > 0

    def merge(self, other: "AntiEntropyReport") -> None:
        self.entries_copied += other.entries_copied
        self.versions_appended += other.versions_appended
        self.payloads_replaced += other.payloads_replaced
        self.conflicts.extend(other.conflicts)


class ReplicatedBackend(StorageBackend):
    """Primary-first writes mirrored to replicas, reads with failover."""

    def __init__(
        self,
        primary: StorageBackend,
        replicas: Sequence[StorageBackend] | StorageBackend,
    ) -> None:
        self.primary = primary
        if isinstance(replicas, StorageBackend):
            replicas = [replicas]
        self.replicas = tuple(replicas)
        self.replica_write_failures = 0

    # ------------------------------------------------------------------
    # Reads: primary, then failover.
    # ------------------------------------------------------------------

    def identifiers(self) -> list[str]:
        return self._read(lambda backend: backend.identifiers())

    def versions(self, identifier: str) -> list[Version]:
        return self._read(lambda backend: backend.versions(identifier))

    def get(
        self,
        identifier: str,
        version: Version | None = None,
    ) -> ExampleEntry:
        return self._read(lambda backend: backend.get(identifier, version))

    def get_many(self, requests: Sequence[GetRequest]) -> list[ExampleEntry]:
        return self._read(lambda backend: backend.get_many(requests))

    def versions_many(
        self,
        identifiers: Sequence[str],
    ) -> dict[str, list[Version]]:
        return self._read(lambda b: b.versions_many(identifiers))

    def has(self, identifier: str) -> bool:
        return self._read(lambda backend: backend.has(identifier))

    def entry_count(self) -> int:
        return self._read(lambda backend: backend.entry_count())

    # ------------------------------------------------------------------
    # Queries: route to a healthy copy (primary first, then replicas).
    # ------------------------------------------------------------------

    @property
    def supports_native_query(self) -> bool:  # type: ignore[override]
        return self.primary.supports_native_query

    def change_counter(self) -> int | None:
        """The *primary's* counter — the authoritative history.

        Replica counters track replica writes and are not comparable,
        so no failover here: if the primary is down the counter is
        simply unavailable and index snapshots fall back to a rebuild.
        """
        try:
            return self.primary.change_counter()
        except BxError:
            raise
        except Exception:  # noqa: BLE001 - treat an outage as "no counter"
            return None

    def query_stats(self, terms: Sequence[str]):
        return self._read(lambda backend: backend.query_stats(terms))

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Counters of every copy, summed — reads may serve from any
        healthy copy, so the replicas' caches work too."""
        return merge_cache_stats(
            copy.cache_stats()
            for copy in (self.primary, *self.replicas))

    def execute_query(self, plan: QueryPlan,
                      stats: QueryStats | None = None) -> QueryResult:
        """Execute on the primary, failing over to a healthy replica.

        The same infrastructure-vs-semantic failover rule as every
        other read: an unreachable copy is skipped, a real answer
        propagates.  A replica that is behind the primary answers from
        its own (older but internally consistent) state — the standard
        replicated-read caveat.
        """
        return self._read(
            lambda backend: backend.execute_query(plan, stats))

    # ------------------------------------------------------------------
    # Writes: primary decides, replicas follow.
    # ------------------------------------------------------------------

    def add(self, entry: ExampleEntry) -> None:
        self.primary.add(entry)
        self._mirror(lambda replica: replica.add(entry))

    def add_version(self, entry: ExampleEntry) -> None:
        self.primary.add_version(entry)
        self._mirror(lambda replica: replica.add_version(entry))

    def replace_latest(self, entry: ExampleEntry) -> None:
        self.primary.replace_latest(entry)
        self._mirror(lambda replica: replica.replace_latest(entry))

    def add_many(self, entries: Iterable[ExampleEntry]) -> int:
        batch = list(entries)
        count = self.primary.add_many(batch)
        self._mirror(lambda replica: replica.add_many(batch))
        return count

    # ------------------------------------------------------------------
    # Repair.
    # ------------------------------------------------------------------

    def anti_entropy(self) -> AntiEntropyReport:
        """Reconcile every replica with the primary; report the repairs.

        Primary-authoritative: replicas gain whatever they are missing
        (whole entries, version tails, the latest payload).  Replica
        versions unknown to the primary are reported as conflicts, never
        deleted — the interface is append-only.
        """
        report = AntiEntropyReport()
        primary_versions = self.primary.versions_many(
            self.primary.identifiers()
        )
        for index, replica in enumerate(self.replicas):
            report.merge(
                self._repair_replica(index, replica, primary_versions)
            )
        return report

    def _repair_replica(
        self,
        index: int,
        replica: StorageBackend,
        primary_versions: dict[str, list[Version]],
    ) -> AntiEntropyReport:
        report = AntiEntropyReport()
        replica_ids = set(replica.identifiers())
        for orphan in sorted(replica_ids - set(primary_versions)):
            report.conflicts.append(
                f"replica {index}: {orphan!r} unknown to the primary"
            )
        for identifier, have in primary_versions.items():
            if identifier not in replica_ids:
                requests = [(identifier, version) for version in have]
                snapshots = self.primary.get_many(requests)
                replica.add(snapshots[0])
                for snapshot in snapshots[1:]:
                    replica.add_version(snapshot)
                report.entries_copied += 1
                report.versions_appended += len(snapshots) - 1
                continue
            mirrored = replica.versions(identifier)
            seen = len(mirrored)
            if mirrored == have[:seen]:
                # The replica is (at worst) behind: append the tail.
                tail = have[seen:]
                if tail:
                    requests = [(identifier, version) for version in tail]
                    for snapshot in self.primary.get_many(requests):
                        replica.add_version(snapshot)
                    report.versions_appended += len(tail)
                authoritative = self.primary.get(identifier)
                if replica.get(identifier) != authoritative:
                    replica.replace_latest(authoritative)
                    report.payloads_replaced += 1
            else:
                report.conflicts.append(
                    f"replica {index}: {identifier!r} history "
                    f"diverged ({mirrored} vs primary {have})"
                )
        return report

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        self.primary.close()
        for replica in self.replicas:
            replica.close()

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _read(self, operation: Callable[[StorageBackend], _T]) -> _T:
        try:
            return operation(self.primary)
        except BxError:
            raise  # A semantic answer (not found, duplicate), not an outage.
        except Exception as primary_error:  # noqa: BLE001 - primary outage of any shape: fail over, re-raise if no replica answers
            last_error = None
            for replica in self.replicas:
                try:
                    return operation(replica)
                except Exception as error:  # noqa: BLE001 - try next replica
                    last_error = error
            if last_error is not None:
                raise last_error from primary_error
            raise

    def _mirror(self, operation: Callable[[StorageBackend], object]) -> None:
        for replica in self.replicas:
            try:
                operation(replica)
            except Exception:  # noqa: BLE001 - repaired by anti_entropy
                self.replica_write_failures += 1
