"""Concurrency primitives for the repository service layer.

The facade serves many reader threads (a sharded backend fans reads out
over a thread pool) while writers must be exclusive: a write updates the
backend, the snapshot cache and the subscriber list as one atomic step,
or a racing reader could cache a stale snapshot fetched just before the
write landed.  CPython has no readers-writer lock in the standard
library, so a small one lives here.

:class:`ReadWriteLock` is writer-preference (a waiting writer blocks new
readers, so writers cannot starve under a steady read load) and
reentrant in both directions for the owning thread:

* the thread holding the *write* lock may take the read or write lock
  again — event subscribers called under a write may safely read back
  through the service;
* a thread already holding a *read* lock may take it again even while a
  writer waits, which keeps nested reads deadlock-free.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["Mutex", "ReadWriteLock"]

#: The sanctioned plain mutex.  Every lock in the stack is constructed
#: through this module — the `lock-discipline` analysis rule forbids
#: `threading.Lock()` anywhere else — so reasoning about lock ordering
#: starts from exactly one file.  An alias (not a wrapper): zero cost,
#: and `with`/`acquire`/`release` semantics are untouched.
Mutex = threading.Lock


class ReadWriteLock:
    """A reentrant readers-writer lock with writer preference."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        #: thread ident -> nested read count (readers currently inside).
        self._readers: dict[int, int] = {}
        self._writer: int | None = None
        self._writer_depth = 0
        self._waiting_writers = 0

    # ------------------------------------------------------------------
    # Read side.
    # ------------------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # The writing thread may read its own writes.
                self._writer_depth += 1
                return
            if me in self._readers:
                # Reentrant read: never wait (a waiting writer must not
                # deadlock a reader against itself).
                self._readers[me] += 1
                return
            while self._writer is not None or self._waiting_writers:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth -= 1
                return
            count = self._readers.get(me, 0)
            if count <= 0:
                raise RuntimeError("release_read without acquire_read")
            if count == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = count - 1

    # ------------------------------------------------------------------
    # Write side.
    # ------------------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                # Upgrading read -> write deadlocks against other
                # readers; fail fast instead of hanging.
                message = "cannot acquire write while holding a read lock"
                raise RuntimeError(message)
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by a non-owning thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Context managers (the normal way in).
    # ------------------------------------------------------------------

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
