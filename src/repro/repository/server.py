"""A stdlib-only HTTP/JSON API in front of the repository stack.

The paper's repository is meant to be *used* — browsed, queried and
extended by a community — and every comparable community catalogue
(bnRep's shiny front-end, the Formal Contexts repository's web
interface) puts a network API in front of the collection.  This module
is that layer, built entirely on the standard library so the container
constraint (no new dependencies) holds:

    client (`repro.repository.client.HTTPBackend`, curl, a browser)
        │  HTTP/1.1 + JSON (the wire codec in repro.repository.query)
        ▼
    RepositoryServer (ThreadingHTTPServer: one thread per connection)
        ▼
    RepositoryService (the RepositoryAPI facade: RW lock, LRU, events)
        ▼
    StorageBackend (memory / file / sqlite / sharded / replicated)

Endpoints (all JSON unless noted):

======  ============================  =====================================
Method  Path                          Meaning
======  ============================  =====================================
GET     /entries                      all identifiers
GET     /entries/{id}[?version=]      one entry snapshot
GET     /entries/{id}/versions        the entry's version list
GET     /entries/{id}/has             existence probe (never 404s)
POST    /entries                      add one {"entry": ...} or bulk-load
                                      {"entries": [...]}
POST    /entries/{id}/versions        append a version
PUT     /entries/{id}                 replace_latest
POST    /batch/get                    get_many: {"requests": [[id, v?]...]}
POST    /batch/versions               versions_many: {"identifiers": [...]}
POST    /query                        execute a full Q-AST plan
                                      ({"plan": ..., "stats": ...|null})
POST    /stats/query                  corpus stats for terms (the ranker's
                                      N + df, for remote composites)
GET     /stats                        entry count, change counter, every
                                      cache counter on the read path
GET     /counter                      just entry count + change counter
                                      (the hot-path subset of /stats)
GET     /wiki/{id}                    the entry's wikidot page, as text,
                                      served from the event-driven
                                      RenderCache (re-rendered only when
                                      the entry is written)
======  ============================  =====================================

The wire itself is kept as cheap as the caches behind it:

* **Conditional reads** — ``GET /entries/{id}``, ``GET /wiki/{id}`` and
  ``GET /stats`` send a weak ``ETag`` (keyed by the service's change
  token; the wiki endpoint uses the render cache's finer per-identifier
  validator) and honour ``If-None-Match``: a match answers ``304 Not
  Modified`` with *zero* fetch, codec or render work on either end.
* **Compression** — ``Accept-Encoding: gzip`` is negotiated and bodies
  above a threshold are gzipped (small payloads skip the CPU);
  request bodies may arrive with ``Content-Encoding: gzip``.  An
  Accept-Encoding that rules out every supported coding is a 406, an
  unknown Content-Encoding a 415 — structured errors, like the rest.
* **Streaming batches** — a ``POST /batch/get`` or ``/batch/versions``
  with ``Accept: application/x-ndjson`` streams chunked NDJSON: data
  lines are the codec's canonical entry payloads (or
  ``{"identifier", "versions"}`` objects), encoded page by page
  straight out of ``get_many``/``versions_many``, terminated by a
  ``{"_stream": "end", "count": n}`` frame (or an
  ``{"_stream": "error", ...}`` frame if a later page fails).  A 10k
  bulk read never materialises the whole corpus as one JSON body on
  either end, and warm pages come from an
  :class:`~repro.repository.codec.EncodeMemo` — no fetch, no
  ``to_dict``, no ``dumps``.  Without the Accept header the endpoints
  answer the PR-5 buffered JSON bodies unchanged.

Errors travel as ``{"error": {"type": ..., "message": ..., ...}}`` with
a faithful status (404 EntryNotFound, 409 DuplicateEntry, 400 for the
other repository errors) and enough structure for
:class:`~repro.repository.client.HTTPBackend` to re-raise the *same*
exception class the in-process backend would have raised — which is
what lets the unchanged backend conformance suite hold the whole wire
round-trip to the storage contract.

Concurrency: ``ThreadingHTTPServer`` gives every connection its own
handler thread; the service's writer-preference ReadWriteLock admits
all readers concurrently and serialises writers, exactly as for
in-process threads.  The server adds no locking of its own.
"""

from __future__ import annotations

import argparse
import gzip
import json
import logging
import re
import threading
import zlib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, quote, unquote, urlsplit

from repro.core.errors import (
    BackendUnavailableError,
    BxError,
    DeadlineExceeded,
    DuplicateEntry,
    EntryNotFound,
    StorageError,
)
from repro.repository.backends import StorageBackend, create_backend
from repro.repository.concurrency import Mutex
from repro.repository.codec import (
    GZIP_LEVEL,
    GZIP_MIN_BYTES,
    NDJSON_TYPE,
    EncodeMemo,
    encode_entry,
)
from repro.repository.entry import ExampleEntry
from repro.repository.query import (
    plan_from_dict,
    result_to_dict,
    stats_from_dict,
    stats_to_dict,
)
from repro.repository.render_cache import RenderCache
from repro.repository.resilience import Deadline, deadline_scope
from repro.repository.service import RepositoryService
from repro.repository.versioning import Version

__all__ = ["RepositoryServer", "main"]

_log = logging.getLogger("repro.repository.server")

_IDENTIFIER_RE = r"(?P<identifier>[^/]+)"
_ROUTES = {
    "GET": [
        (re.compile(r"^/entries$"), "list_entries"),
        (re.compile(rf"^/entries/{_IDENTIFIER_RE}$"), "get_entry"),
        (re.compile(rf"^/entries/{_IDENTIFIER_RE}/versions$"), "versions"),
        (re.compile(rf"^/entries/{_IDENTIFIER_RE}/has$"), "has"),
        (re.compile(r"^/stats$"), "stats"),
        (re.compile(r"^/counter$"), "counter"),
        (re.compile(rf"^/wiki/{_IDENTIFIER_RE}$"), "wiki"),
    ],
    "POST": [
        (re.compile(r"^/entries$"), "add"),
        (re.compile(rf"^/entries/{_IDENTIFIER_RE}/versions$"),
         "add_version"),
        (re.compile(r"^/batch/get$"), "batch_get"),
        (re.compile(r"^/batch/versions$"), "batch_versions"),
        (re.compile(r"^/query$"), "query"),
        (re.compile(r"^/stats/query$"), "query_stats"),
    ],
    "PUT": [
        (re.compile(rf"^/entries/{_IDENTIFIER_RE}$"), "replace_latest"),
    ],
}


#: Entries per streamed NDJSON page: one get_many call, one chunk.
STREAM_PAGE_SIZE = 256


def _wire_error(status: int, message: str) -> StorageError:
    """A StorageError pinned to a specific HTTP status.

    For conditions that exist only at the wire (unacceptable
    Accept-Encoding, unknown Content-Encoding, malformed conditional
    headers): the payload still names ``StorageError`` so the client
    re-raises the class in-process callers would see, but the status
    stays honest (406/415/400 instead of a generic 400).
    """
    error = StorageError(message)
    error.http_status = status
    return error


#: One If-None-Match member: ``*`` or an (optionally weak) quoted tag.
_ETAG_MEMBER_RE = re.compile(r'\s*(\*|(?:W/)?"[^"]*")\s*(?:,|$)')
#: An Accept-Encoding quality parameter: ``q=0``, ``q=0.5``, ``q=1.000``.
_QVALUE_RE = re.compile(r"^q\s*=\s*(\d(?:\.\d{0,3})?)$")


def _make_etag(*parts: str) -> str:
    """A weak ETag from opaque parts (percent-quoted, '/'-joined).

    Weak because the same snapshot has several byte representations
    (gzip vs identity, and the wiki page vs the entry behind it);
    quoting keeps identifiers from smuggling '"' into the header.
    """
    opaque = "/".join(quote(part, safe="") for part in parts)
    return f'W/"{opaque}"'


def _etag_opaque(tag: str) -> str:
    """The comparison form of an ETag: weak-prefix stripped."""
    return tag[2:] if tag.startswith("W/") else tag


def _error_status(error: Exception) -> int:
    """The honest HTTP status of one repository error."""
    pinned = getattr(error, "http_status", None)
    if isinstance(pinned, int):
        return pinned
    if isinstance(error, EntryNotFound):
        return 404
    if isinstance(error, DuplicateEntry):
        return 409
    if isinstance(error, DeadlineExceeded):
        return 504  # the caller's clock ran out, not a bad request
    if isinstance(error, BackendUnavailableError):
        return 503  # shed/drain/breaker: try again, with Retry-After
    if isinstance(error, BxError):
        return 400
    return 500


def _error_payload(error: Exception) -> dict:
    """The wire form of an error: type name + message + structure.

    ``identifier``/``version`` ride along when the exception carries
    them, so the client can reconstruct ``EntryNotFound``/
    ``DuplicateEntry`` with their original arguments instead of a
    flattened message.
    """
    detail: dict = {
        "type": type(error).__name__,
        "message": str(error),
    }
    identifier = getattr(error, "identifier", None)
    if isinstance(identifier, str):
        detail["identifier"] = identifier
    version = getattr(error, "version", None)
    if version is not None:
        detail["version"] = str(version)
    retry_after = getattr(error, "retry_after", None)
    if isinstance(retry_after, (int, float)):
        detail["retry_after"] = retry_after
    return {"error": detail}


class _RequestTracker:
    """Admission control: counts, bounds and drains in-flight requests.

    Three duties, one condition variable:

    * **Counting** — ``ThreadingHTTPServer`` runs handlers on *daemon*
      threads, which ``server_close()`` does not join — so
      ``RepositoryServer.stop()`` uses :meth:`wait_idle` to wait
      (bounded) for in-flight requests before tearing down the render
      cache and, optionally, the service a handler might still be
      reading from.
    * **Load shedding** — :meth:`try_enter` refuses once ``limit``
      requests are already inside handlers.  Refusing *early* is the
      point: an overloaded server that queues unboundedly serves every
      request late, one that sheds serves the admitted ones on time.
    * **Graceful drain** — :meth:`begin_drain` refuses *all* new
      requests while the in-flight ones finish normally, which is what
      makes a stop/restart invisible to callers with a retry policy.
    """

    def __init__(self, limit: int | None = None) -> None:
        self._cond = threading.Condition()
        self._active = 0
        self._limit = limit
        self._draining = False

    def try_enter(self) -> bool:
        """Admit one request, or refuse (over limit / draining)."""
        with self._cond:
            if self._draining:
                return False
            if self._limit is not None and self._active >= self._limit:
                return False
            self._active += 1
            return True

    def exit(self) -> None:
        with self._cond:
            self._active -= 1
            if self._active == 0:
                self._cond.notify_all()

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    def begin_drain(self) -> None:
        with self._cond:
            self._draining = True

    def end_drain(self) -> None:
        with self._cond:
            self._draining = False

    def set_limit(self, limit: int | None) -> None:
        """Change the in-flight bound (the soak's overload lever)."""
        with self._cond:
            self._limit = limit

    @property
    def limit(self) -> int | None:
        with self._cond:
            return self._limit

    def wait_idle(self, timeout: float) -> bool:
        """True once no request is in flight (or False on timeout)."""
        with self._cond:
            return self._cond.wait_for(lambda: self._active == 0,
                                       timeout)


class _ServerMetrics:
    """Per-route request counters plus wire-economics ratios.

    One instance per :class:`RepositoryServer`, shared by every handler
    thread (hence the mutex) and surviving stop/start cycles.  The
    snapshot rides inside the ``GET /stats`` payload under ``"server"``
    so operators — and the serving smoke test — can read the 304 hit
    rate and gzip bytes saved straight off the repository.
    """

    def __init__(self) -> None:
        self._mutex = Mutex()
        self._routes: dict[str, int] = {}
        self._conditional = 0
        self._not_modified = 0
        self._gzip_responses = 0
        self._gzip_bytes_raw = 0
        self._gzip_bytes_sent = 0
        self._stream_responses = 0
        self._stream_lines = 0
        self._shed_overload = 0
        self._shed_draining = 0
        self._deadline_rejected = 0

    def count_shed(self, *, draining: bool) -> None:
        with self._mutex:
            if draining:
                self._shed_draining += 1
            else:
                self._shed_overload += 1

    def count_deadline_rejected(self) -> None:
        with self._mutex:
            self._deadline_rejected += 1

    def count_route(self, name: str) -> None:
        with self._mutex:
            self._routes[name] = self._routes.get(name, 0) + 1

    def count_conditional(self, hit: bool) -> None:
        with self._mutex:
            self._conditional += 1
            if hit:
                self._not_modified += 1

    def count_gzip(self, raw_bytes: int, sent_bytes: int) -> None:
        with self._mutex:
            self._gzip_responses += 1
            self._gzip_bytes_raw += raw_bytes
            self._gzip_bytes_sent += sent_bytes

    def count_stream(self, lines: int) -> None:
        with self._mutex:
            self._stream_responses += 1
            self._stream_lines += lines

    def snapshot(self) -> dict:
        with self._mutex:
            saved = self._gzip_bytes_raw - self._gzip_bytes_sent
            return {
                "requests": dict(sorted(self._routes.items())),
                "conditional": {
                    "requests": self._conditional,
                    "not_modified": self._not_modified,
                    "hit_rate": (self._not_modified / self._conditional
                                 if self._conditional else 0.0),
                },
                "gzip": {
                    "responses": self._gzip_responses,
                    "bytes_raw": self._gzip_bytes_raw,
                    "bytes_sent": self._gzip_bytes_sent,
                    "bytes_saved_ratio": (saved / self._gzip_bytes_raw
                                          if self._gzip_bytes_raw
                                          else 0.0),
                },
                "stream": {
                    "responses": self._stream_responses,
                    "lines": self._stream_lines,
                },
                "admission": {
                    "shed_overload": self._shed_overload,
                    "shed_draining": self._shed_draining,
                    "deadline_rejected": self._deadline_rejected,
                },
            }


class _ChunkedStream:
    """Chunked transfer-encoding writer, optionally gzipping en route.

    Each :meth:`write` becomes (at least) one HTTP/1.1 chunk on the
    wire immediately — with gzip, the compressor is sync-flushed per
    write so the client's incremental decoder always sees whole pages
    without waiting for the stream to finish.  :meth:`close` emits the
    gzip trailer and the terminating zero chunk, which is what keeps
    the keep-alive connection framed and reusable.
    """

    def __init__(self, wfile, *, compress: bool) -> None:
        self._wfile = wfile
        self._gzip = (zlib.compressobj(GZIP_LEVEL, zlib.DEFLATED,
                                       16 + zlib.MAX_WBITS)
                      if compress else None)
        self.raw_bytes = 0
        self.sent_bytes = 0

    def write(self, text: str) -> None:
        data = text.encode("utf-8")
        self.raw_bytes += len(data)
        if self._gzip is not None:
            data = (self._gzip.compress(data)
                    + self._gzip.flush(zlib.Z_SYNC_FLUSH))
        self._chunk(data)

    def finish(self) -> None:
        """Flush the gzip trailer; byte counters are final after this."""
        if self._gzip is not None:
            self._chunk(self._gzip.flush(zlib.Z_FINISH))
            self._gzip = None

    def close(self) -> None:
        self.finish()
        self._wfile.write(b"0\r\n\r\n")

    def _chunk(self, data: bytes) -> None:
        if not data:
            return
        self.sent_bytes += len(data)
        self._wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self._wfile.write(data)
        self._wfile.write(b"\r\n")


class _Handler(BaseHTTPRequestHandler):
    """One request: route, delegate to the service, encode the answer."""

    #: Keep-alive needs accurate framing; every response below sends
    #: Content-Length, so persistent connections are safe.
    protocol_version = "HTTP/1.1"
    #: A dead keep-alive peer must not pin its handler thread forever.
    timeout = 30
    #: Responses are two small writes (header block, body).  With Nagle
    #: on, the second write stalls behind the peer's delayed ACK —
    #: ~40ms per request on loopback, a 100x throughput cliff.  The
    #: client sets TCP_NODELAY on its side for the same reason.
    disable_nagle_algorithm = True

    # The server instance carries the repository objects (see
    # RepositoryServer.start): self.server.repository is the
    # RepositoryAPI facade, self.server.render_cache the wiki cache.

    # ------------------------------------------------------------------
    # Entry points per verb.
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server's contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server's contract
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802 - http.server's contract
        self._dispatch("PUT")

    def _dispatch(self, method: str) -> None:
        tracker = self.server.request_tracker
        if not tracker.try_enter():
            self._refuse(method, draining=tracker.draining)
            return
        try:
            self._routed_dispatch(method)
        finally:
            tracker.exit()

    def _refuse(self, method: str, *, draining: bool) -> None:
        """Shed one request: 503 + Retry-After, before any work.

        Either the in-flight bound is hit (overload: admitting more
        would serve *everyone* late) or the server is draining for
        shutdown (in-flight requests finish; new ones go elsewhere).
        The request was not processed, so clients may retry any method
        — the client's retry policy knows a shed is replay-safe.
        """
        self._body_consumed = False
        self._negotiated_encoding = "identity"
        self.server.metrics.count_shed(draining=draining)
        retry_after = self.server.shed_retry_after
        reason = ("server is draining for shutdown"
                  if draining else "server is at capacity")
        error = BackendUnavailableError(
            f"{reason}; retry after {retry_after:g}s",
            retry_after=retry_after)
        self._consume_body()
        self._send_json(503, _error_payload(error),
                        retry_after=retry_after)

    def _routed_dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        self._body_consumed = False
        # Error replies must stay sendable even when the *negotiation*
        # is what failed, so the default is pinned before anything can
        # raise and the real negotiation runs inside the try.
        self._negotiated_encoding = "identity"
        # Routes match the *encoded* path, so a percent-encoded "/"
        # inside an identifier stays one path segment; only the
        # captured groups are decoded.  (Decoding first would mis-route
        # "a%2Fb" as two segments.)
        for pattern, name in _ROUTES.get(method, []):
            match = pattern.match(split.path)
            if match:
                self.server.metrics.count_route(f"{method} {name}")
                operands = {key: unquote(value)
                            for key, value in match.groupdict().items()}
                try:
                    self._negotiated_encoding = self._response_encoding()
                    # The client's clock, propagated over the wire: an
                    # already-expired deadline is a fast 504 before any
                    # handler work, and the scope re-establishes the
                    # ambient deadline for everything the handler calls
                    # (the sharded fan-out's per-shard bound, a nested
                    # HTTPBackend in a proxy topology).
                    deadline = self._request_deadline()
                    if deadline is not None:
                        deadline.check(f"{method} {split.path}")
                    handler = getattr(self, f"_handle_{name}")
                    with deadline_scope(deadline):
                        handler(query_string=split.query, **operands)
                except Exception as error:  # noqa: BLE001 - wire boundary
                    if isinstance(error, DeadlineExceeded):
                        self.server.metrics.count_deadline_rejected()
                    if _error_status(error) >= 500 and not isinstance(
                            error, DeadlineExceeded):
                        _log.exception("internal error on %s %s",
                                       method, split.path)
                    self._consume_body()
                    self._send_json(
                        _error_status(error), _error_payload(error),
                        retry_after=getattr(error, "retry_after", None))
                else:
                    # A body the handler had no use for (e.g. a GET
                    # with one) still desyncs keep-alive framing if
                    # left in the stream.  Outside the try: a drain
                    # failure after a sent response must kill the
                    # connection, not send a second response.
                    self._consume_body()
                return
        self.server.metrics.count_route("unrouted")
        self._consume_body()
        self._send_json(
            404,
            {"error": {"type": "StorageError",
                       "message": f"no route {method} {split.path}"}},
        )

    #: Unread request bodies above this size close the connection
    #: instead of being drained.
    _MAX_DRAIN = 1 << 20
    #: Hard cap on a routed request body (32 MiB — roomy for bulk
    #: loads, far below anything that could exhaust handler memory).
    _MAX_BODY = 32 << 20

    def _consume_body(self) -> None:
        """Drain an unread request body before replying on a keep-alive
        connection.

        Replying while body bytes are still in the stream would desync
        every subsequent request on the connection (the leftover JSON
        is parsed as the next request line).  Oversized or unframeable
        bodies close the connection instead of being read.
        """
        if self._body_consumed:
            return
        self._body_consumed = True
        if self.headers.get("Transfer-Encoding"):
            # Chunked bodies are unsupported (no Content-Length to
            # frame a drain by); the connection must close or the
            # chunk stream would be parsed as the next request.
            self.close_connection = True
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self.close_connection = True
            return
        if length <= 0:
            return
        if length > self._MAX_DRAIN:
            self.close_connection = True
            return
        self.rfile.read(length)

    # ------------------------------------------------------------------
    # Wire conditions: content negotiation and conditional reads.
    # ------------------------------------------------------------------

    def _response_encoding(self) -> str:
        """Negotiate the response coding from Accept-Encoding.

        ``gzip`` and ``identity`` are the supported codings; unknown
        ones are ignored per RFC 9110 (they simply never win).  The
        client's q-values are respected — ties go to gzip, identity is
        implicitly acceptable unless explicitly zeroed — and a header
        that rules out *both* supported codings is a 406 up front,
        before any handler work.  Malformed q-values are a 400.
        """
        header = self.headers.get("Accept-Encoding")
        if header is None or not header.strip():
            return "identity"
        weights: dict[str, float] = {}
        for part in header.split(","):
            part = part.strip()
            if not part:
                continue
            name, _, params = part.partition(";")
            quality = 1.0
            params = params.strip()
            if params:
                match = _QVALUE_RE.match(params)
                if match is None:
                    raise _wire_error(
                        400, f"malformed Accept-Encoding: {header!r}")
                quality = float(match.group(1))
            weights[name.strip().lower()] = quality
        gzip_q = weights.get("gzip", weights.get("*", 0.0))
        identity_q = weights.get("identity", weights.get("*", 1.0))
        if gzip_q <= 0 and identity_q <= 0:
            raise _wire_error(
                406,
                "Accept-Encoding rules out both gzip and identity; "
                "this server supports no other content coding")
        return "gzip" if gzip_q >= identity_q and gzip_q > 0 else "identity"

    def _request_deadline(self) -> Deadline | None:
        """The ``X-Deadline-Ms`` header as a Deadline, or None.

        The value is the *remaining* milliseconds on the caller's
        clock when the request left — relative, not absolute, so no
        cross-host clock agreement is needed (network transit eats
        into the budget unobserved, which errs on the generous side).
        """
        header = self.headers.get("X-Deadline-Ms")
        if header is None:
            return None
        try:
            remaining_ms = float(header)
        except ValueError:
            raise _wire_error(
                400, f"malformed X-Deadline-Ms header: {header!r}"
            ) from None
        return Deadline.after(remaining_ms / 1000.0)

    def _if_none_match(self) -> list[str] | None:
        """The If-None-Match tags, or None when the header is absent.

        Parsed strictly: anything that is not a comma-separated list
        of ``*`` / quoted (optionally ``W/``-weak) tags is a 400 —
        silently ignoring a malformed validator would turn every
        request from that client into a full 200 without anyone
        noticing the cache stopped working.
        """
        header = self.headers.get("If-None-Match")
        if header is None:
            return None
        tags: list[str] = []
        position = 0
        for match in _ETAG_MEMBER_RE.finditer(header):
            if match.start() != position:
                break
            position = match.end()
            tags.append(match.group(1))
        if position != len(header) or not tags:
            raise _wire_error(
                400, f"malformed If-None-Match header: {header!r}")
        return tags

    def _precondition_hit(self, etag: str) -> bool:
        """Whether If-None-Match revalidates ``etag`` (weak compare).

        ``*`` is accepted syntactically but never matches: it is the
        lost-update guard for writes, and honouring it on reads would
        304 a resource that does not even exist.  Only counted as a
        conditional request when the header is present at all.
        """
        tags = self._if_none_match()
        if tags is None:
            return False
        opaque = _etag_opaque(etag)
        hit = any(tag != "*" and _etag_opaque(tag) == opaque
                  for tag in tags)
        self.server.metrics.count_conditional(hit)
        return hit

    def _send_not_modified(self, etag: str) -> None:
        """A 304: headers only, the peer's cached body stays valid."""
        self.send_response(304)
        self.send_header("ETag", etag)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _repository_etag(self, *parts: str) -> str | None:
        """An ETag bound to the service change token, or None.

        Read the token BEFORE fetching what it validates: a write
        landing in between leaves a stale token on fresh content —
        one spurious revalidation later, never a false 304.
        """
        token = self.server.repository.change_token()
        if token is None:
            return None
        return _make_etag(token, *parts)

    # ------------------------------------------------------------------
    # GET handlers.
    # ------------------------------------------------------------------

    def _handle_list_entries(self, query_string: str = "") -> None:
        self._send_json(
            200, {"identifiers": self.server.repository.identifiers()}
        )

    def _handle_get_entry(self, identifier: str,
                          query_string: str = "") -> None:
        version = None
        requested = parse_qs(query_string).get("version")
        if requested:
            version = Version.parse(requested[0])
        etag = self._repository_etag(
            identifier, requested[0] if requested else "latest")
        if etag is not None and self._precondition_hit(etag):
            # The whole point of the conditional read: no fetch, no
            # to_dict, no dumps — the validator alone answers.
            self._send_not_modified(etag)
            return
        entry = self.server.repository.get(identifier, version)
        self._send_json(200, {"entry": entry.to_dict()}, etag=etag)

    def _handle_versions(self, identifier: str,
                         query_string: str = "") -> None:
        versions = self.server.repository.versions(identifier)
        self._send_json(200, {"versions": [str(v) for v in versions]})

    def _handle_has(self, identifier: str, query_string: str = "") -> None:
        self._send_json(
            200, {"has": self.server.repository.has(identifier)}
        )

    def _handle_stats(self, query_string: str = "") -> None:
        repository = self.server.repository
        token = repository.change_token()
        etag = _make_etag(token, "stats") if token is not None else None
        if etag is not None and self._precondition_hit(etag):
            self._send_not_modified(etag)
            return
        cache = repository.cache_stats()
        cache["wire_memo"] = self.server.wire_memo.stats()
        self._send_json(
            200,
            {
                "entry_count": repository.entry_count(),
                "change_counter": repository.change_counter(),
                "change_token": token,
                "cache": cache,
                "render_cache": self.server.render_cache.cache_stats(),
                "server": self.server.metrics.snapshot(),
            },
            etag=etag,
        )

    def _handle_counter(self, query_string: str = "") -> None:
        """The hot-path subset of /stats: the validators, no cache merge.

        ``entry_count()``/``change_counter()`` sit on index-staleness
        and snapshot-stamping paths, and ``change_token()`` is what the
        remote client's ETag cache revalidates by; serving them from
        /stats would recompute the full (possibly composite-recursive)
        cache-stats merge per call.
        """
        repository = self.server.repository
        self._send_json(
            200,
            {
                "entry_count": repository.entry_count(),
                "change_counter": repository.change_counter(),
                "change_token": repository.change_token(),
            },
        )

    def _handle_wiki(self, identifier: str, query_string: str = "") -> None:
        # The render cache's validator is deliberately finer than the
        # service change token: it moves only when THIS identifier is
        # written, so wiki ETags survive writes elsewhere in the
        # corpus.  Validator before render — same race discipline as
        # _repository_etag.
        etag = _make_etag(
            self.server.render_cache.validator(identifier), identifier)
        if self._precondition_hit(etag):
            self._send_not_modified(etag)
            return
        page = self.server.render_cache.wiki_page(identifier)
        self._send_text(200, page, etag=etag)

    # ------------------------------------------------------------------
    # POST/PUT handlers.
    # ------------------------------------------------------------------

    def _handle_add(self, query_string: str = "") -> None:
        body = self._read_body()
        if "entries" in body:
            entries = [ExampleEntry.from_dict(data)
                       for data in self._field(body, "entries", list)]
            count = self.server.repository.add_many(entries)
            self._send_json(200, {"count": count})
            return
        entry = ExampleEntry.from_dict(self._field(body, "entry", dict))
        self.server.repository.add(entry)
        self._send_json(201, {"identifier": entry.identifier})

    def _handle_add_version(self, identifier: str,
                            query_string: str = "") -> None:
        entry = self._entry_for(identifier)
        self.server.repository.add_version(entry)
        self._send_json(201, {"version": str(entry.version)})

    def _handle_replace_latest(self, identifier: str,
                               query_string: str = "") -> None:
        entry = self._entry_for(identifier)
        self.server.repository.replace_latest(entry)
        self._send_json(200, {"version": str(entry.version)})

    def _handle_batch_get(self, query_string: str = "") -> None:
        body = self._read_body()
        requests = self._parse_get_requests(body)
        if self._wants_ndjson():
            self._stream_ndjson(self._entry_pages(requests))
            return
        entries = self.server.repository.get_many(requests)
        self._send_json(
            200, {"entries": [entry.to_dict() for entry in entries]}
        )

    def _handle_batch_versions(self, query_string: str = "") -> None:
        body = self._read_body()
        identifiers = self._field(body, "identifiers", list)
        if not all(isinstance(item, str) for item in identifiers):
            raise StorageError("batch identifiers must be strings")
        if self._wants_ndjson():
            self._stream_ndjson(self._version_pages(identifiers))
            return
        listing = self.server.repository.versions_many(identifiers)
        self._send_json(
            200,
            {"versions": {identifier: [str(v) for v in versions]
                          for identifier, versions in listing.items()}},
        )

    @staticmethod
    def _parse_get_requests(body: dict) -> list[tuple[str, Version | None]]:
        requests: list[tuple[str, Version | None]] = []
        for item in _Handler._field(body, "requests", list):
            if isinstance(item, str):
                requests.append((item, None))
                continue
            if not (isinstance(item, list) and len(item) == 2
                    and isinstance(item[0], str)):
                raise StorageError(
                    f"bad get_many request {item!r}; expected "
                    "an identifier or [identifier, version-or-null]")
            identifier, version = item
            requests.append(
                (identifier,
                 Version.parse(version) if version is not None else None)
            )
        return requests

    # ------------------------------------------------------------------
    # Streaming batch reads (Accept: application/x-ndjson).
    # ------------------------------------------------------------------

    def _wants_ndjson(self) -> bool:
        """Whether the client opted into the streamed NDJSON body."""
        return NDJSON_TYPE in self.headers.get("Accept", "").lower()

    def _entry_pages(self, requests):
        """Wire lines for a batch get, one page of entries at a time.

        Pages come straight out of ``get_many`` (one read-locked
        service call per page, never the whole batch) and warm lines
        come out of the server's :class:`EncodeMemo` without touching
        the repository at all — keyed by the change token read *before*
        the probe, so a racing write makes a memo line unfindable
        rather than stale.
        """
        repository = self.server.repository
        memo = self.server.wire_memo
        for start in range(0, len(requests), STREAM_PAGE_SIZE):
            page = requests[start:start + STREAM_PAGE_SIZE]
            token = repository.change_token()
            lines: list[str | None] = []
            missing: list[tuple[int, tuple[str, Version | None]]] = []
            for offset, (identifier, version) in enumerate(page):
                version_key = str(version) if version is not None else None
                line = (memo.get(identifier, version_key, token)
                        if token is not None else None)
                lines.append(line)
                if line is None:
                    missing.append((offset, (identifier, version)))
            if missing:
                fetched = repository.get_many(
                    [request for _, request in missing])
                for (offset, (identifier, version)), entry in zip(
                        missing, fetched, strict=True):
                    line = encode_entry(entry)
                    lines[offset] = line
                    if token is not None:
                        version_key = (str(version)
                                       if version is not None else None)
                        memo.put(identifier, version_key, token, line)
            yield lines

    def _version_pages(self, identifiers):
        """Wire lines for a batch version listing, page by page."""
        repository = self.server.repository
        for start in range(0, len(identifiers), STREAM_PAGE_SIZE):
            page = identifiers[start:start + STREAM_PAGE_SIZE]
            listing = repository.versions_many(page)
            yield [
                json.dumps(
                    {"identifier": identifier,
                     "versions": [str(v) for v in listing[identifier]]},
                    sort_keys=True)
                for identifier in page
            ]

    def _stream_ndjson(self, pages) -> None:
        """Send chunked NDJSON: data lines, then one ``_stream`` frame.

        The first page is produced BEFORE the status line goes out, so
        a bad request (unknown identifier, bad version) in page one
        still gets its faithful 404/400 as an ordinary JSON error.  A
        failure on a *later* page — the headers are long gone — becomes
        an ``{"_stream": "error", ...}`` frame the client re-raises;
        the happy path ends with ``{"_stream": "end", "count": n}``,
        whose absence is how a truncated stream is detected.  Data
        lines never start with ``{"_stream"`` (entry payloads start
        with ``{"_codec"``, version lines with ``{"identifier"`` —
        both JSON-sorted), so the client spots frames by prefix
        without parsing cached lines.
        """
        iterator = iter(pages)
        try:
            first = next(iterator)
        except StopIteration:
            first, iterator = [], iter(())
        compress = self._negotiated_encoding == "gzip"
        self.send_response(200)
        self.send_header("Content-Type", NDJSON_TYPE)
        if compress:
            self.send_header("Content-Encoding", "gzip")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        stream = _ChunkedStream(self.wfile, compress=compress)
        count = 0
        try:
            page = first
            while True:
                if page:
                    stream.write(
                        "".join(line + "\n" for line in page))
                    count += len(page)
                try:
                    page = next(iterator)
                except StopIteration:
                    break
            stream.write(json.dumps(
                {"_stream": "end", "count": count}, sort_keys=True) + "\n")
            self._record_stream(stream, count, compress)
            stream.close()
        except (BrokenPipeError, ConnectionResetError):
            # The peer hung up mid-stream; nothing left to tell it.
            self.close_connection = True
            return
        except Exception as error:  # noqa: BLE001 - wire boundary
            if _error_status(error) >= 500:
                _log.exception("error while streaming %s", self.path)
            frame = dict(_error_payload(error))
            frame["_stream"] = "error"
            try:
                stream.write(json.dumps(frame, sort_keys=True) + "\n")
                self._record_stream(stream, count, compress)
                stream.close()
            except OSError:
                self.close_connection = True
                return

    def _record_stream(self, stream: _ChunkedStream, count: int,
                       compress: bool) -> None:
        """Count the stream BEFORE its terminating chunk goes out —
        once the peer sees that chunk, a caller may read the metrics
        snapshot, so the counters must already be settled."""
        stream.finish()  # byte counters are final past the gzip trailer
        self.server.metrics.count_stream(count)
        if compress:
            self.server.metrics.count_gzip(stream.raw_bytes,
                                           stream.sent_bytes)

    def _handle_query(self, query_string: str = "") -> None:
        body = self._read_body()
        plan = plan_from_dict(self._field(body, "plan", dict))
        stats = body.get("stats")
        if stats is not None:
            stats = stats_from_dict(stats)
        result = self.server.repository.execute_query(plan, stats)
        self._send_json(200, result_to_dict(result))

    def _handle_query_stats(self, query_string: str = "") -> None:
        body = self._read_body()
        terms = self._field(body, "terms", list)
        if not all(isinstance(term, str) for term in terms):
            raise StorageError("query stats terms must be strings")
        stats = self.server.repository.query_stats(terms)
        self._send_json(200, stats_to_dict(stats))

    # ------------------------------------------------------------------
    # Plumbing.
    # ------------------------------------------------------------------

    def _entry_for(self, identifier: str) -> ExampleEntry:
        """Decode the body entry and pin it to the URL's identifier."""
        body = self._read_body()
        entry = ExampleEntry.from_dict(self._field(body, "entry", dict))
        if entry.identifier != identifier:
            raise StorageError(
                f"entry identifier {entry.identifier!r} does not match "
                f"the request path ({identifier!r})")
        return entry

    def _read_body(self) -> dict:
        if self.headers.get("Transfer-Encoding"):
            # Rejected up front: _consume_body cannot drain a chunked
            # stream, so it closes the connection after the reply.
            raise StorageError(
                "chunked request bodies are not supported; "
                "send Content-Length")
        coding = self.headers.get("Content-Encoding", "identity")
        coding = coding.strip().lower() or "identity"
        if coding not in ("identity", "gzip"):
            # 415 before the body is read: _consume_body drains it.
            raise _wire_error(
                415, f"unsupported Content-Encoding {coding!r}; "
                     "send identity or gzip")
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            # Unframeable: _consume_body will close the connection.
            raise StorageError("bad Content-Length header") from None
        if length > self._MAX_BODY:
            # Rejected by the header alone — the body is never read
            # into memory, and the connection closes instead of
            # draining gigabytes.
            self._body_consumed = True
            self.close_connection = True
            raise StorageError(
                f"request body of {length} bytes exceeds the "
                f"{self._MAX_BODY}-byte limit")
        raw = self.rfile.read(length) if length else b""
        self._body_consumed = True
        if not raw:
            raise StorageError("request body required")
        if coding == "gzip":
            # The size cap applies to the *decompressed* body too —
            # max_length bounds the inflate so a gzip bomb cannot
            # expand past the limit in memory.
            inflater = zlib.decompressobj(16 + zlib.MAX_WBITS)
            try:
                raw = inflater.decompress(raw, self._MAX_BODY + 1)
            except zlib.error as error:
                raise StorageError(
                    f"bad gzip request body: {error}") from error
            if len(raw) > self._MAX_BODY:
                raise StorageError(
                    "request body exceeds the "
                    f"{self._MAX_BODY}-byte limit after decompression")
        try:
            body = json.loads(raw)
        except ValueError as error:
            raise StorageError(
                f"malformed JSON body: {error}") from error
        if not isinstance(body, dict):
            raise StorageError(
                f"request body is not an object: {type(body).__name__}")
        return body

    @staticmethod
    def _field(body: dict, name: str, kind: type) -> object:
        value = body.get(name)
        if not isinstance(value, kind):
            raise StorageError(
                f"request body field {name!r} must be "
                f"{kind.__name__}, got {type(value).__name__}")
        return value

    def _send_json(self, status: int, payload: dict, *,
                   etag: str | None = None,
                   retry_after: float | None = None) -> None:
        encoded = json.dumps(payload).encode("utf-8")
        self._send_bytes(status, encoded, "application/json", etag=etag,
                         retry_after=retry_after)

    def _send_text(self, status: int, text: str, *,
                   etag: str | None = None) -> None:
        self._send_bytes(status, text.encode("utf-8"),
                         "text/plain; charset=utf-8", etag=etag)

    def _send_bytes(self, status: int, body: bytes, content_type: str,
                    *, etag: str | None = None,
                    retry_after: float | None = None) -> None:
        encoding = None
        if (self._negotiated_encoding == "gzip"
                and len(body) >= GZIP_MIN_BYTES):
            # Below the threshold the gzip CPU costs more than the
            # bytes it saves; above it, level 1 shrinks JSON ~4-5x.
            raw_size = len(body)
            body = gzip.compress(body, compresslevel=GZIP_LEVEL)
            self.server.metrics.count_gzip(raw_size, len(body))
            encoding = "gzip"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        if etag is not None:
            self.send_header("ETag", etag)
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:g}")
        if encoding is not None:
            self.send_header("Content-Encoding", encoding)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Access logging goes to the module logger, not stderr."""
        _log.debug("%s - %s", self.address_string(), format % args)


class RepositoryServer:
    """The serving-layer front door: one repository behind HTTP.

    Wraps any :class:`~repro.repository.service.RepositoryAPI`
    implementation — a bare :class:`StorageBackend` is wrapped in a
    :class:`RepositoryService` first (the facade's lock and LRU are what
    make concurrent handler threads safe), and an
    :class:`~repro.repository.aservice.AsyncRepositoryService` is
    unwrapped to the sync facade it already fronts (handler threads are
    plain threads; the async variant serves in-process awaiters, this
    class serves the network — both over the *same* service object, one
    lock, one cache).

    ``port=0`` binds an ephemeral port; read :attr:`port`/:attr:`url`
    after :meth:`start`.  ``stop()`` tears the listener down and
    detaches the render cache; the service itself stays open (the
    caller owns its lifecycle) unless ``close_service=True`` was set.
    """

    def __init__(
        self,
        service,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        close_service: bool = False,
        max_inflight: int | None = 64,
        shed_retry_after: float = 1.0,
    ) -> None:
        # Unwrap the async facade; wrap a bare backend.
        sync = getattr(service, "service", None)
        if isinstance(sync, RepositoryService):
            service = sync
        elif isinstance(service, StorageBackend) and not isinstance(
            service, RepositoryService
        ):
            service = RepositoryService(service)
        self.service = service
        self.host = host
        self.requested_port = port
        self.close_service = close_service
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        #: Admission control: at most ``max_inflight`` requests inside
        #: handlers at once; the excess is shed with 503 + Retry-After
        #: (``shed_retry_after`` seconds) instead of queueing
        #: unboundedly.  None disables the bound.  The same tracker
        #: implements the graceful drain on stop().
        self.shed_retry_after = shed_retry_after
        self._tracker = _RequestTracker(limit=max_inflight)
        #: Wire-economics counters (per-route, 304 hit rate, gzip
        #: savings) — exposed under "server" in GET /stats, surviving
        #: stop/start cycles like the tracker does.
        self.metrics = _ServerMetrics()
        #: Encoded wire lines for streamed batch reads, keyed by
        #: (identifier, version, change token): a warm stream skips the
        #: fetch, the to_dict and the dumps.  Token-keyed entries from
        #: before a write simply age out of the LRU.
        self.wire_memo = EncodeMemo()
        #: Wiki pages re-render only when their entry is written: the
        #: PR-4 event-driven cache serves GET /wiki/{id}.  Created by
        #: start(), not here — a cache subscribes to the service's
        #: event stream, and a server that never starts must not leave
        #: a subscriber (doing per-write eviction work forever) behind.
        self.render_cache: RenderCache | None = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "RepositoryServer":
        """Bind and serve on a daemon thread; returns self (chainable)."""
        if self._httpd is not None:
            return self
        if self.render_cache is None:
            # First start, or restart after stop(): stop() detaches
            # its cache from the event stream, so each serving period
            # gets a fresh, subscribed one — serving a detached cache
            # would return stale pages forever.
            self.render_cache = RenderCache(self.service)
        httpd = ThreadingHTTPServer(
            (self.host, self.requested_port), _Handler
        )
        httpd.repository = self.service
        httpd.render_cache = self.render_cache
        httpd.request_tracker = self._tracker
        httpd.metrics = self.metrics
        httpd.wire_memo = self.wire_memo
        httpd.shed_retry_after = self.shed_retry_after
        self._tracker.end_drain()  # a restart serves again
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name=f"repro-http-{httpd.server_address[1]}",
            daemon=True,
        )
        self._thread.start()
        _log.info("serving repository on %s", self.url)
        return self

    def stop(self) -> None:
        """Stop accepting, drain in-flight requests, detach the cache.

        Handler threads are daemons, so ``server_close()`` does not
        join them; the request tracker waits (bounded) until no request
        is still inside a handler before the render cache — and, with
        ``close_service=True``, the service — is torn down underneath
        one.  An *idle* keep-alive connection is not waited for: its
        next request fails with a connection error, which clients
        handle as an ordinary peer shutdown.
        """
        if self._httpd is None:
            return
        # Drain first: requests arriving from here on get an immediate
        # 503 + Retry-After (they would otherwise race the teardown),
        # while requests already inside handlers finish normally and
        # are waited for below.
        self._tracker.begin_drain()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._httpd = None
        self._thread = None
        if not self._tracker.wait_idle(timeout=10.0):
            _log.warning("stopping with requests still in flight")
        self.render_cache.close()
        self.render_cache = None  # start() builds a fresh, subscribed one
        if self.close_service:
            self.service.close()

    def __enter__(self) -> "RepositoryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def max_inflight(self) -> int | None:
        return self._tracker.limit

    def set_max_inflight(self, limit: int | None) -> None:
        """Retune the admission bound live (the soak's overload lever)."""
        self._tracker.set_limit(limit)

    @property
    def port(self) -> int:
        """The bound port (the real one, also when 0 was requested)."""
        if self._httpd is None:
            raise StorageError("server is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """The base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: serve a backend until interrupted.

    ``python -m repro.repository.server --scheme sqlite --path repo.db``
    """
    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--scheme", default="memory",
                        help="storage backend scheme (memory/file/sqlite)")
    parser.add_argument("--path", type=Path, default=None,
                        help="backend path (for durable schemes)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="port to bind (0: ephemeral)")
    arguments = parser.parse_args(argv)

    logging.basicConfig(level=logging.INFO)
    backend = create_backend(arguments.scheme, arguments.path)
    service = RepositoryService(backend)
    server = RepositoryServer(
        service,
        host=arguments.host,
        port=arguments.port,
        close_service=True,
    )
    with server:
        print(f"serving {arguments.scheme} repository on {server.url}")
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            print("shutting down")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
