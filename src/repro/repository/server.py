"""A stdlib-only HTTP/JSON API in front of the repository stack.

The paper's repository is meant to be *used* — browsed, queried and
extended by a community — and every comparable community catalogue
(bnRep's shiny front-end, the Formal Contexts repository's web
interface) puts a network API in front of the collection.  This module
is that layer, built entirely on the standard library so the container
constraint (no new dependencies) holds:

    client (`repro.repository.client.HTTPBackend`, curl, a browser)
        │  HTTP/1.1 + JSON (the wire codec in repro.repository.query)
        ▼
    RepositoryServer (ThreadingHTTPServer: one thread per connection)
        ▼
    RepositoryService (the RepositoryAPI facade: RW lock, LRU, events)
        ▼
    StorageBackend (memory / file / sqlite / sharded / replicated)

Endpoints (all JSON unless noted):

======  ============================  =====================================
Method  Path                          Meaning
======  ============================  =====================================
GET     /entries                      all identifiers
GET     /entries/{id}[?version=]      one entry snapshot
GET     /entries/{id}/versions        the entry's version list
GET     /entries/{id}/has             existence probe (never 404s)
POST    /entries                      add one {"entry": ...} or bulk-load
                                      {"entries": [...]}
POST    /entries/{id}/versions        append a version
PUT     /entries/{id}                 replace_latest
POST    /batch/get                    get_many: {"requests": [[id, v?]...]}
POST    /batch/versions               versions_many: {"identifiers": [...]}
POST    /query                        execute a full Q-AST plan
                                      ({"plan": ..., "stats": ...|null})
POST    /stats/query                  corpus stats for terms (the ranker's
                                      N + df, for remote composites)
GET     /stats                        entry count, change counter, every
                                      cache counter on the read path
GET     /counter                      just entry count + change counter
                                      (the hot-path subset of /stats)
GET     /wiki/{id}                    the entry's wikidot page, as text,
                                      served from the event-driven
                                      RenderCache (re-rendered only when
                                      the entry is written)
======  ============================  =====================================

Errors travel as ``{"error": {"type": ..., "message": ..., ...}}`` with
a faithful status (404 EntryNotFound, 409 DuplicateEntry, 400 for the
other repository errors) and enough structure for
:class:`~repro.repository.client.HTTPBackend` to re-raise the *same*
exception class the in-process backend would have raised — which is
what lets the unchanged backend conformance suite hold the whole wire
round-trip to the storage contract.

Concurrency: ``ThreadingHTTPServer`` gives every connection its own
handler thread; the service's writer-preference ReadWriteLock admits
all readers concurrently and serialises writers, exactly as for
in-process threads.  The server adds no locking of its own.
"""

from __future__ import annotations

import argparse
import json
import logging
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, unquote, urlsplit

from repro.core.errors import (
    BxError,
    DuplicateEntry,
    EntryNotFound,
    StorageError,
)
from repro.repository.backends import StorageBackend, create_backend
from repro.repository.entry import ExampleEntry
from repro.repository.query import (
    plan_from_dict,
    result_to_dict,
    stats_from_dict,
    stats_to_dict,
)
from repro.repository.render_cache import RenderCache
from repro.repository.service import RepositoryService
from repro.repository.versioning import Version

__all__ = ["RepositoryServer", "main"]

_log = logging.getLogger("repro.repository.server")

_IDENTIFIER_RE = r"(?P<identifier>[^/]+)"
_ROUTES = {
    "GET": [
        (re.compile(r"^/entries$"), "list_entries"),
        (re.compile(rf"^/entries/{_IDENTIFIER_RE}$"), "get_entry"),
        (re.compile(rf"^/entries/{_IDENTIFIER_RE}/versions$"), "versions"),
        (re.compile(rf"^/entries/{_IDENTIFIER_RE}/has$"), "has"),
        (re.compile(r"^/stats$"), "stats"),
        (re.compile(r"^/counter$"), "counter"),
        (re.compile(rf"^/wiki/{_IDENTIFIER_RE}$"), "wiki"),
    ],
    "POST": [
        (re.compile(r"^/entries$"), "add"),
        (re.compile(rf"^/entries/{_IDENTIFIER_RE}/versions$"),
         "add_version"),
        (re.compile(r"^/batch/get$"), "batch_get"),
        (re.compile(r"^/batch/versions$"), "batch_versions"),
        (re.compile(r"^/query$"), "query"),
        (re.compile(r"^/stats/query$"), "query_stats"),
    ],
    "PUT": [
        (re.compile(rf"^/entries/{_IDENTIFIER_RE}$"), "replace_latest"),
    ],
}


def _error_status(error: Exception) -> int:
    """The honest HTTP status of one repository error."""
    if isinstance(error, EntryNotFound):
        return 404
    if isinstance(error, DuplicateEntry):
        return 409
    if isinstance(error, BxError):
        return 400
    return 500


def _error_payload(error: Exception) -> dict:
    """The wire form of an error: type name + message + structure.

    ``identifier``/``version`` ride along when the exception carries
    them, so the client can reconstruct ``EntryNotFound``/
    ``DuplicateEntry`` with their original arguments instead of a
    flattened message.
    """
    detail: dict = {
        "type": type(error).__name__,
        "message": str(error),
    }
    identifier = getattr(error, "identifier", None)
    if isinstance(identifier, str):
        detail["identifier"] = identifier
    version = getattr(error, "version", None)
    if version is not None:
        detail["version"] = str(version)
    return {"error": detail}


class _RequestTracker:
    """Counts requests currently inside handlers.

    ``ThreadingHTTPServer`` runs handlers on *daemon* threads, which
    ``server_close()`` does not join — so ``RepositoryServer.stop()``
    uses this to wait (bounded) for in-flight requests to drain before
    it tears down the render cache and, optionally, the service a
    handler might still be reading from.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active = 0

    def __enter__(self) -> "_RequestTracker":
        with self._cond:
            self._active += 1
        return self

    def __exit__(self, *exc_info: object) -> None:
        with self._cond:
            self._active -= 1
            if self._active == 0:
                self._cond.notify_all()

    def wait_idle(self, timeout: float) -> bool:
        """True once no request is in flight (or False on timeout)."""
        with self._cond:
            return self._cond.wait_for(lambda: self._active == 0,
                                       timeout)


class _Handler(BaseHTTPRequestHandler):
    """One request: route, delegate to the service, encode the answer."""

    #: Keep-alive needs accurate framing; every response below sends
    #: Content-Length, so persistent connections are safe.
    protocol_version = "HTTP/1.1"
    #: A dead keep-alive peer must not pin its handler thread forever.
    timeout = 30
    #: Responses are two small writes (header block, body).  With Nagle
    #: on, the second write stalls behind the peer's delayed ACK —
    #: ~40ms per request on loopback, a 100x throughput cliff.  The
    #: client sets TCP_NODELAY on its side for the same reason.
    disable_nagle_algorithm = True

    # The server instance carries the repository objects (see
    # RepositoryServer.start): self.server.repository is the
    # RepositoryAPI facade, self.server.render_cache the wiki cache.

    # ------------------------------------------------------------------
    # Entry points per verb.
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server's contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server's contract
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802 - http.server's contract
        self._dispatch("PUT")

    def _dispatch(self, method: str) -> None:
        with self.server.request_tracker:
            self._routed_dispatch(method)

    def _routed_dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        self._body_consumed = False
        # Routes match the *encoded* path, so a percent-encoded "/"
        # inside an identifier stays one path segment; only the
        # captured groups are decoded.  (Decoding first would mis-route
        # "a%2Fb" as two segments.)
        for pattern, name in _ROUTES.get(method, []):
            match = pattern.match(split.path)
            if match:
                operands = {key: unquote(value)
                            for key, value in match.groupdict().items()}
                try:
                    handler = getattr(self, f"_handle_{name}")
                    handler(query_string=split.query, **operands)
                except Exception as error:  # noqa: BLE001 - wire boundary
                    if _error_status(error) >= 500:
                        _log.exception("internal error on %s %s",
                                       method, split.path)
                    self._consume_body()
                    self._send_json(_error_status(error),
                                    _error_payload(error))
                else:
                    # A body the handler had no use for (e.g. a GET
                    # with one) still desyncs keep-alive framing if
                    # left in the stream.  Outside the try: a drain
                    # failure after a sent response must kill the
                    # connection, not send a second response.
                    self._consume_body()
                return
        self._consume_body()
        self._send_json(
            404,
            {"error": {"type": "StorageError",
                       "message": f"no route {method} {split.path}"}},
        )

    #: Unread request bodies above this size close the connection
    #: instead of being drained.
    _MAX_DRAIN = 1 << 20
    #: Hard cap on a routed request body (32 MiB — roomy for bulk
    #: loads, far below anything that could exhaust handler memory).
    _MAX_BODY = 32 << 20

    def _consume_body(self) -> None:
        """Drain an unread request body before replying on a keep-alive
        connection.

        Replying while body bytes are still in the stream would desync
        every subsequent request on the connection (the leftover JSON
        is parsed as the next request line).  Oversized or unframeable
        bodies close the connection instead of being read.
        """
        if self._body_consumed:
            return
        self._body_consumed = True
        if self.headers.get("Transfer-Encoding"):
            # Chunked bodies are unsupported (no Content-Length to
            # frame a drain by); the connection must close or the
            # chunk stream would be parsed as the next request.
            self.close_connection = True
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self.close_connection = True
            return
        if length <= 0:
            return
        if length > self._MAX_DRAIN:
            self.close_connection = True
            return
        self.rfile.read(length)

    # ------------------------------------------------------------------
    # GET handlers.
    # ------------------------------------------------------------------

    def _handle_list_entries(self, query_string: str = "") -> None:
        self._send_json(
            200, {"identifiers": self.server.repository.identifiers()}
        )

    def _handle_get_entry(self, identifier: str,
                          query_string: str = "") -> None:
        version = None
        requested = parse_qs(query_string).get("version")
        if requested:
            version = Version.parse(requested[0])
        entry = self.server.repository.get(identifier, version)
        self._send_json(200, {"entry": entry.to_dict()})

    def _handle_versions(self, identifier: str,
                         query_string: str = "") -> None:
        versions = self.server.repository.versions(identifier)
        self._send_json(200, {"versions": [str(v) for v in versions]})

    def _handle_has(self, identifier: str, query_string: str = "") -> None:
        self._send_json(
            200, {"has": self.server.repository.has(identifier)}
        )

    def _handle_stats(self, query_string: str = "") -> None:
        repository = self.server.repository
        self._send_json(
            200,
            {
                "entry_count": repository.entry_count(),
                "change_counter": repository.change_counter(),
                "cache": repository.cache_stats(),
                "render_cache": self.server.render_cache.cache_stats(),
            },
        )

    def _handle_counter(self, query_string: str = "") -> None:
        """The hot-path subset of /stats: two integers, no cache merge.

        ``entry_count()``/``change_counter()`` sit on index-staleness
        and snapshot-stamping paths; serving them from /stats would
        recompute the full (possibly composite-recursive) cache-stats
        merge per call.
        """
        repository = self.server.repository
        self._send_json(
            200,
            {
                "entry_count": repository.entry_count(),
                "change_counter": repository.change_counter(),
            },
        )

    def _handle_wiki(self, identifier: str, query_string: str = "") -> None:
        page = self.server.render_cache.wiki_page(identifier)
        self._send_text(200, page)

    # ------------------------------------------------------------------
    # POST/PUT handlers.
    # ------------------------------------------------------------------

    def _handle_add(self, query_string: str = "") -> None:
        body = self._read_body()
        if "entries" in body:
            entries = [ExampleEntry.from_dict(data)
                       for data in self._field(body, "entries", list)]
            count = self.server.repository.add_many(entries)
            self._send_json(200, {"count": count})
            return
        entry = ExampleEntry.from_dict(self._field(body, "entry", dict))
        self.server.repository.add(entry)
        self._send_json(201, {"identifier": entry.identifier})

    def _handle_add_version(self, identifier: str,
                            query_string: str = "") -> None:
        entry = self._entry_for(identifier)
        self.server.repository.add_version(entry)
        self._send_json(201, {"version": str(entry.version)})

    def _handle_replace_latest(self, identifier: str,
                               query_string: str = "") -> None:
        entry = self._entry_for(identifier)
        self.server.repository.replace_latest(entry)
        self._send_json(200, {"version": str(entry.version)})

    def _handle_batch_get(self, query_string: str = "") -> None:
        body = self._read_body()
        requests = []
        for item in self._field(body, "requests", list):
            if isinstance(item, str):
                requests.append((item, None))
                continue
            if not (isinstance(item, list) and len(item) == 2
                    and isinstance(item[0], str)):
                raise StorageError(
                    f"bad get_many request {item!r}; expected "
                    "an identifier or [identifier, version-or-null]")
            identifier, version = item
            requests.append(
                (identifier,
                 Version.parse(version) if version is not None else None)
            )
        entries = self.server.repository.get_many(requests)
        self._send_json(
            200, {"entries": [entry.to_dict() for entry in entries]}
        )

    def _handle_batch_versions(self, query_string: str = "") -> None:
        body = self._read_body()
        identifiers = self._field(body, "identifiers", list)
        listing = self.server.repository.versions_many(identifiers)
        self._send_json(
            200,
            {"versions": {identifier: [str(v) for v in versions]
                          for identifier, versions in listing.items()}},
        )

    def _handle_query(self, query_string: str = "") -> None:
        body = self._read_body()
        plan = plan_from_dict(self._field(body, "plan", dict))
        stats = body.get("stats")
        if stats is not None:
            stats = stats_from_dict(stats)
        result = self.server.repository.execute_query(plan, stats)
        self._send_json(200, result_to_dict(result))

    def _handle_query_stats(self, query_string: str = "") -> None:
        body = self._read_body()
        terms = self._field(body, "terms", list)
        if not all(isinstance(term, str) for term in terms):
            raise StorageError("query stats terms must be strings")
        stats = self.server.repository.query_stats(terms)
        self._send_json(200, stats_to_dict(stats))

    # ------------------------------------------------------------------
    # Plumbing.
    # ------------------------------------------------------------------

    def _entry_for(self, identifier: str) -> ExampleEntry:
        """Decode the body entry and pin it to the URL's identifier."""
        body = self._read_body()
        entry = ExampleEntry.from_dict(self._field(body, "entry", dict))
        if entry.identifier != identifier:
            raise StorageError(
                f"entry identifier {entry.identifier!r} does not match "
                f"the request path ({identifier!r})")
        return entry

    def _read_body(self) -> dict:
        if self.headers.get("Transfer-Encoding"):
            # Rejected up front: _consume_body cannot drain a chunked
            # stream, so it closes the connection after the reply.
            raise StorageError(
                "chunked request bodies are not supported; "
                "send Content-Length")
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            # Unframeable: _consume_body will close the connection.
            raise StorageError("bad Content-Length header") from None
        if length > self._MAX_BODY:
            # Rejected by the header alone — the body is never read
            # into memory, and the connection closes instead of
            # draining gigabytes.
            self._body_consumed = True
            self.close_connection = True
            raise StorageError(
                f"request body of {length} bytes exceeds the "
                f"{self._MAX_BODY}-byte limit")
        raw = self.rfile.read(length) if length else b""
        self._body_consumed = True
        if not raw:
            raise StorageError("request body required")
        try:
            body = json.loads(raw)
        except ValueError as error:
            raise StorageError(
                f"malformed JSON body: {error}") from error
        if not isinstance(body, dict):
            raise StorageError(
                f"request body is not an object: {type(body).__name__}")
        return body

    @staticmethod
    def _field(body: dict, name: str, kind: type) -> object:
        value = body.get(name)
        if not isinstance(value, kind):
            raise StorageError(
                f"request body field {name!r} must be "
                f"{kind.__name__}, got {type(value).__name__}")
        return value

    def _send_json(self, status: int, payload: dict) -> None:
        encoded = json.dumps(payload).encode("utf-8")
        self._send_bytes(status, encoded, "application/json")

    def _send_text(self, status: int, text: str) -> None:
        self._send_bytes(status, text.encode("utf-8"),
                         "text/plain; charset=utf-8")

    def _send_bytes(self, status: int, body: bytes,
                    content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Access logging goes to the module logger, not stderr."""
        _log.debug("%s - %s", self.address_string(), format % args)


class RepositoryServer:
    """The serving-layer front door: one repository behind HTTP.

    Wraps any :class:`~repro.repository.service.RepositoryAPI`
    implementation — a bare :class:`StorageBackend` is wrapped in a
    :class:`RepositoryService` first (the facade's lock and LRU are what
    make concurrent handler threads safe), and an
    :class:`~repro.repository.aservice.AsyncRepositoryService` is
    unwrapped to the sync facade it already fronts (handler threads are
    plain threads; the async variant serves in-process awaiters, this
    class serves the network — both over the *same* service object, one
    lock, one cache).

    ``port=0`` binds an ephemeral port; read :attr:`port`/:attr:`url`
    after :meth:`start`.  ``stop()`` tears the listener down and
    detaches the render cache; the service itself stays open (the
    caller owns its lifecycle) unless ``close_service=True`` was set.
    """

    def __init__(
        self,
        service,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        close_service: bool = False,
    ) -> None:
        # Unwrap the async facade; wrap a bare backend.
        sync = getattr(service, "service", None)
        if isinstance(sync, RepositoryService):
            service = sync
        elif isinstance(service, StorageBackend) and not isinstance(
            service, RepositoryService
        ):
            service = RepositoryService(service)
        self.service = service
        self.host = host
        self.requested_port = port
        self.close_service = close_service
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._tracker = _RequestTracker()
        #: Wiki pages re-render only when their entry is written: the
        #: PR-4 event-driven cache serves GET /wiki/{id}.  Created by
        #: start(), not here — a cache subscribes to the service's
        #: event stream, and a server that never starts must not leave
        #: a subscriber (doing per-write eviction work forever) behind.
        self.render_cache: RenderCache | None = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "RepositoryServer":
        """Bind and serve on a daemon thread; returns self (chainable)."""
        if self._httpd is not None:
            return self
        if self.render_cache is None:
            # First start, or restart after stop(): stop() detaches
            # its cache from the event stream, so each serving period
            # gets a fresh, subscribed one — serving a detached cache
            # would return stale pages forever.
            self.render_cache = RenderCache(self.service)
        httpd = ThreadingHTTPServer(
            (self.host, self.requested_port), _Handler
        )
        httpd.repository = self.service
        httpd.render_cache = self.render_cache
        httpd.request_tracker = self._tracker
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name=f"repro-http-{httpd.server_address[1]}",
            daemon=True,
        )
        self._thread.start()
        _log.info("serving repository on %s", self.url)
        return self

    def stop(self) -> None:
        """Stop accepting, drain in-flight requests, detach the cache.

        Handler threads are daemons, so ``server_close()`` does not
        join them; the request tracker waits (bounded) until no request
        is still inside a handler before the render cache — and, with
        ``close_service=True``, the service — is torn down underneath
        one.  An *idle* keep-alive connection is not waited for: its
        next request fails with a connection error, which clients
        handle as an ordinary peer shutdown.
        """
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._httpd = None
        self._thread = None
        if not self._tracker.wait_idle(timeout=10.0):
            _log.warning("stopping with requests still in flight")
        self.render_cache.close()
        self.render_cache = None  # start() builds a fresh, subscribed one
        if self.close_service:
            self.service.close()

    def __enter__(self) -> "RepositoryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (the real one, also when 0 was requested)."""
        if self._httpd is None:
            raise StorageError("server is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """The base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: serve a backend until interrupted.

    ``python -m repro.repository.server --scheme sqlite --path repo.db``
    """
    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--scheme", default="memory",
                        help="storage backend scheme (memory/file/sqlite)")
    parser.add_argument("--path", type=Path, default=None,
                        help="backend path (for durable schemes)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="port to bind (0: ephemeral)")
    arguments = parser.parse_args(argv)

    logging.basicConfig(level=logging.INFO)
    backend = create_backend(arguments.scheme, arguments.path)
    service = RepositoryService(backend)
    server = RepositoryServer(
        service,
        host=arguments.host,
        port=arguments.port,
        close_service=True,
    )
    with server:
        print(f"serving {arguments.scheme} repository on {server.url}")
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            print("shutting down")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
