"""Event-driven render cache: pages re-render only when written.

The repository is read-dominated — the §5.4 wiki pages and the §5.2
manuscript export are served far more often than entries are edited —
yet ``render_wiki_pages`` and ``render_repository_markdown`` used to
re-render every entry on every call.  :class:`RenderCache` closes that
gap the same way the search index went incremental in PR 1: it
subscribes to :class:`~repro.repository.service.RepositoryEvent`\\ s
from a :class:`~repro.repository.service.RepositoryService` and keeps
two renderings per entry — the wikidot page
(:func:`~repro.repository.export.render_wikidot`, i.e. what
``WikiSyncLens.get`` produces) and the Markdown fragment
(:func:`~repro.repository.export.render_markdown`) — evicting **exactly
the written identifier** on every add / add_version / replace_latest.
A warm call therefore renders only what changed since the last call.

Persistence uses the same fail-safe scheme as the PR-3 index
snapshots: ``save()`` stamps the snapshot with the backend's durable
``change_counter()`` *read before the state is captured*, and a later
process restores it only when the stamp still equals the live counter.
The counter only ever increases, so a racing write can at worst cause
a spurious discard — never a stale page trusted as fresh.  Backends
with no durable counter (``MemoryBackend``) never persist.

Thread safety: events fire under the service's write lock while pages
are requested by reader threads, so all cache state sits behind one
internal mutex.  The mutex is **never held across a service call**
(that would deadlock against a writer's event dispatch); instead each
render captures an event-clock before fetching, and the store step
drops the render if its identifier was evicted in between — a racing
write wins, the cache stays coherent.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.repository.concurrency import Mutex
from repro.repository.export import render_markdown, render_wikidot
from repro.repository.query import plan

__all__ = ["RenderCache"]

#: Snapshot format version; bump when the on-disk layout changes.
_SNAPSHOT_FORMAT = 1


class RenderCache:
    """Wiki pages and Markdown fragments, cached per written entry."""

    def __init__(self, service, *, path: str | Path | None = None) -> None:
        self.service = service
        self.path = Path(path) if path else None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._mutex = Mutex()
        #: identifier -> rendered text of its latest version (staleness
        #: is governed by events and the persisted counter stamp, never
        #: by comparing versions — replace_latest keeps the version).
        self._wiki: dict[str, str] = {}
        self._markdown: dict[str, str] = {}
        #: Event clock: bumped per event; per-identifier eviction times
        #: let a render that raced a write detect it lost.
        self._clock = 0
        self._evicted_at: dict[str, int] = {}
        #: Per-instance epoch for :meth:`validator`: eviction clocks
        #: restart at zero with every cache, so a validator must name
        #: *which* cache minted it or a restarted server could confirm
        #: a stale page from the previous serving period.
        self._epoch = f"{time.time_ns():x}"
        self._unsubscribe = service.subscribe(self._on_event)
        if self.path is not None:
            self._restore()

    # ------------------------------------------------------------------
    # Event subscription: exact per-identifier eviction.
    # ------------------------------------------------------------------

    def _on_event(self, event) -> None:
        with self._mutex:
            self._clock += 1
            self._evicted_at[event.identifier] = self._clock
            dropped_wiki = self._wiki.pop(event.identifier, None)
            dropped_md = self._markdown.pop(event.identifier, None)
            if dropped_wiki is not None or dropped_md is not None:
                self.invalidations += 1

    def validator(self, identifier: str) -> str:
        """An opaque per-identifier freshness validator (for ETags).

        Changes exactly when the identifier's rendering can change:
        the eviction clock bumps on every write event for *that*
        identifier, so a write to entry B leaves entry A's validator —
        and therefore A's ETag — intact.  This is strictly finer than
        the global change token: the wiki endpoint keeps answering 304
        for untouched pages while the corpus churns elsewhere.  The
        epoch prefix pins the validator to this cache instance, so a
        validator minted before a server restart can never confirm a
        page served after it.

        Capture the validator *before* fetching/rendering the page:
        a write racing the render then yields a stale validator with
        fresh content — one spurious revalidation, never a false 304.
        """
        with self._mutex:
            return f"{self._epoch}.{self._evicted_at.get(identifier, 0)}"

    # ------------------------------------------------------------------
    # Single-page access.
    # ------------------------------------------------------------------

    def wiki_page(self, identifier: str) -> str:
        """The wikidot page of an entry's latest version (cached)."""
        return self._pages([identifier])[identifier]

    def markdown_fragment(self, identifier: str) -> str:
        """The Markdown rendering of an entry's latest version (cached)."""
        return self._pages([identifier], kind="markdown")[identifier]

    # ------------------------------------------------------------------
    # Collection access (what render_wiki_pages / the exporter use).
    # ------------------------------------------------------------------

    def wiki_pages(self, query=None) -> dict[str, str]:
        """Wikidot pages of a query's matches (None: everything),
        keyed by identifier in identifier order — re-rendering only
        identifiers written since the pages were last produced."""
        return self._collection(query, kind="wiki")

    def markdown_fragments(self, query=None) -> dict[str, str]:
        """Markdown fragments of a query's matches, identifier order."""
        return self._collection(query, kind="markdown")

    def _collection(self, query, *, kind: str) -> dict[str, str]:
        # The clock is captured BEFORE any service call fetches
        # snapshots: a write landing after this point evicts its
        # identifier at a strictly later clock, so the guarded store
        # below drops any render made from the pre-write snapshot.
        with self._mutex:
            clock = self._clock
        if query is None:
            identifiers = self.service.identifiers()
            entries_by_id = None
        else:
            result = self.service.execute_query(
                plan(query, sort="identifier"))
            identifiers = [hit.identifier for hit in result.hits]
            entries_by_id = {hit.identifier: hit.entry
                             for hit in result.hits}
        return self._pages(identifiers, kind=kind, entries=entries_by_id,
                           clock=clock)

    def _pages(self, identifiers, *, kind: str = "wiki",
               entries=None, clock: int | None = None) -> dict[str, str]:
        cache = self._wiki if kind == "wiki" else self._markdown
        render = render_wikidot if kind == "wiki" else render_markdown
        rendered: dict[str, str] = {}
        missing: list[str] = []
        with self._mutex:
            if clock is None:
                clock = self._clock
            for identifier in identifiers:
                cached = cache.get(identifier)
                if cached is not None:
                    rendered[identifier] = cached
                    self.hits += 1
                else:
                    missing.append(identifier)
                    self.misses += 1
        if missing:
            if entries is None:
                fetched = self.service.get_many(missing)
            else:
                fetched = [entries[identifier] for identifier in missing]
            for entry in fetched:
                text = render(entry)
                rendered[entry.identifier] = text
                self._store(cache, entry.identifier, text, clock)
        return {identifier: rendered[identifier]
                for identifier in identifiers}

    def _store(self, cache: dict, identifier: str, text: str,
               clock: int) -> None:
        with self._mutex:
            if self._evicted_at.get(identifier, 0) > clock:
                return  # a write raced this render; stay evicted
            cache[identifier] = text

    # ------------------------------------------------------------------
    # Persistence (counter-stamped, fail-safe — like index snapshots).
    # ------------------------------------------------------------------

    def save(self) -> bool:
        """Snapshot the cache to :attr:`path`; True if saved.

        The stamp is read *before* the state is captured, so a write
        racing this save leaves a snapshot stamped older than the
        backend — discarded on restore, never trusted stale.  No path,
        or a backend with no durable counter: nothing saved.
        """
        if self.path is None:
            return False
        counter = self.service.change_counter()
        if counter is None:
            return False
        with self._mutex:
            payload = {
                "format": _SNAPSHOT_FORMAT,
                "change_counter": counter,
                "wiki": dict(sorted(self._wiki.items())),
                "markdown": dict(sorted(self._markdown.items())),
            }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temp = self.path.with_name(self.path.name + ".tmp")
        with temp.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
        temp.replace(self.path)
        return True

    def _restore(self) -> None:
        """Adopt a persisted snapshot — only if its stamp still matches.

        Any mismatch (missing/corrupt file, unknown format, a write
        since the snapshot) silently starts cold; a stale page can
        never be served.  The event subscription is already live, so a
        write racing this restore (between the counter read and the
        install) is detected by the clock check at the bottom and the
        snapshot is dropped — cold start again, never a stale install
        over a fresher eviction.
        """
        with self._mutex:
            clock = self._clock
        counter = self.service.change_counter()
        if counter is None:
            return
        try:
            with self.path.open(encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("format") != _SNAPSHOT_FORMAT:
            return
        if payload.get("change_counter") != counter:
            return
        wiki = payload.get("wiki")
        markdown = payload.get("markdown")
        if not (isinstance(wiki, dict) and isinstance(markdown, dict)):
            return
        if not all(isinstance(text, str)
                   for pages in (wiki, markdown)
                   for text in pages.values()):
            return
        with self._mutex:
            if self._clock != clock:
                return  # a write raced the restore; start cold
            self._wiki = wiki
            self._markdown = markdown

    # ------------------------------------------------------------------
    # Introspection / lifecycle.
    # ------------------------------------------------------------------

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/invalidation counters plus current sizes."""
        with self._mutex:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "wiki_pages": len(self._wiki),
                "markdown_fragments": len(self._markdown),
            }

    def close(self) -> None:
        """Persist (when configured) and detach from the service."""
        self.save()
        self._unsubscribe()
