"""The repository store: stable identifiers, versioned persistence.

§5.2's usability commitments, mechanised:

* *stable references* — entries are addressed by the identifier derived
  from their title; an identifier, once assigned, always resolves;
* *old versions stay available* — every version snapshot is kept; ``get``
  accepts an explicit version "so that old references can still be
  followed";
* *a local, wiki-independent copy* (§5.4) — the store persists to a plain
  directory of JSON files, one per version, no wiki markup involved; the
  wiki rendering is derived via :mod:`repro.repository.wiki_sync`.

Two implementations share the interface: :class:`MemoryStore` (tests,
ephemeral composition) and :class:`FileStore` (the durable local copy).
Layout of a file store::

    <root>/
      index.json                     # identifier -> list of versions
      entries/<identifier>/<version>.json
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from pathlib import Path

from repro.core.errors import DuplicateEntry, EntryNotFound, StorageError
from repro.repository.entry import ExampleEntry
from repro.repository.versioning import Version, VersionHistory

__all__ = ["RepositoryStore", "MemoryStore", "FileStore"]


class RepositoryStore(ABC):
    """Interface for versioned entry storage."""

    @abstractmethod
    def identifiers(self) -> list[str]:
        """All stored identifiers, sorted."""

    @abstractmethod
    def versions(self, identifier: str) -> list[Version]:
        """All stored versions of one entry, oldest first."""

    @abstractmethod
    def get(self, identifier: str,
            version: Version | None = None) -> ExampleEntry:
        """The entry at ``version`` (default: latest)."""

    @abstractmethod
    def add(self, entry: ExampleEntry) -> None:
        """Store a brand-new entry; fails if the identifier exists."""

    @abstractmethod
    def add_version(self, entry: ExampleEntry) -> None:
        """Append a new version of an existing entry (must increase)."""

    @abstractmethod
    def replace_latest(self, entry: ExampleEntry) -> None:
        """Overwrite the latest snapshot without a version bump.

        Only comment attachment uses this — comments are not part of the
        versioned description.  The entry's version must equal the stored
        latest version.
        """

    # ------------------------------------------------------------------
    # Conveniences shared by implementations.
    # ------------------------------------------------------------------

    def has(self, identifier: str) -> bool:
        return identifier in self.identifiers()

    def latest_version(self, identifier: str) -> Version:
        stored = self.versions(identifier)
        if not stored:
            raise EntryNotFound(identifier)
        return stored[-1]

    def entry_count(self) -> int:
        return len(self.identifiers())


class MemoryStore(RepositoryStore):
    """In-memory store: a dict of version histories."""

    def __init__(self) -> None:
        self._histories: dict[str, VersionHistory] = {}

    def identifiers(self) -> list[str]:
        return sorted(self._histories)

    def versions(self, identifier: str) -> list[Version]:
        history = self._histories.get(identifier)
        if history is None:
            raise EntryNotFound(identifier)
        return history.versions()

    def get(self, identifier: str,
            version: Version | None = None) -> ExampleEntry:
        history = self._histories.get(identifier)
        if history is None:
            raise EntryNotFound(identifier)
        if version is None:
            return history.latest  # type: ignore[return-value]
        try:
            return history.get(version)  # type: ignore[return-value]
        except Exception:
            raise EntryNotFound(identifier, str(version)) from None

    def add(self, entry: ExampleEntry) -> None:
        if entry.identifier in self._histories:
            raise DuplicateEntry(entry.identifier)
        history = VersionHistory()
        history.append(entry.version, entry)
        self._histories[entry.identifier] = history

    def add_version(self, entry: ExampleEntry) -> None:
        history = self._histories.get(entry.identifier)
        if history is None:
            raise EntryNotFound(entry.identifier)
        history.append(entry.version, entry)

    def replace_latest(self, entry: ExampleEntry) -> None:
        history = self._histories.get(entry.identifier)
        if history is None:
            raise EntryNotFound(entry.identifier)
        if entry.version != history.latest_version:
            raise StorageError(
                f"replace_latest must keep the version "
                f"({history.latest_version}), got {entry.version}")
        history._items[-1] = (entry.version, entry)  # type: ignore[attr-defined]


class FileStore(RepositoryStore):
    """Directory-of-JSON store: the durable, wiki-independent local copy.

    Writes are atomic per file (write to a temp name, then rename), and
    the index is rebuilt from the directory tree on demand, so a crashed
    writer cannot leave the index pointing at missing snapshots.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.entries_dir = self.root / "entries"
        self.entries_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths.
    # ------------------------------------------------------------------

    def _entry_dir(self, identifier: str) -> Path:
        return self.entries_dir / identifier

    def _version_path(self, identifier: str, version: Version) -> Path:
        return self._entry_dir(identifier) / f"{version}.json"

    # ------------------------------------------------------------------
    # Interface.
    # ------------------------------------------------------------------

    def identifiers(self) -> list[str]:
        return sorted(path.name for path in self.entries_dir.iterdir()
                      if path.is_dir())

    def versions(self, identifier: str) -> list[Version]:
        entry_dir = self._entry_dir(identifier)
        if not entry_dir.is_dir():
            raise EntryNotFound(identifier)
        found = [Version.parse(path.stem)
                 for path in entry_dir.glob("*.json")]
        return sorted(found)

    def get(self, identifier: str,
            version: Version | None = None) -> ExampleEntry:
        if version is None:
            version = self.latest_version(identifier)
        path = self._version_path(identifier, version)
        if not path.is_file():
            raise EntryNotFound(identifier, str(version))
        with path.open(encoding="utf-8") as handle:
            data = json.load(handle)
        entry = ExampleEntry.from_dict(data)
        if entry.identifier != identifier:
            raise StorageError(
                f"file {path} contains entry {entry.identifier!r}, "
                f"expected {identifier!r}")
        return entry

    def add(self, entry: ExampleEntry) -> None:
        entry_dir = self._entry_dir(entry.identifier)
        if entry_dir.exists():
            raise DuplicateEntry(entry.identifier)
        entry_dir.mkdir(parents=True)
        self._write(entry)

    def add_version(self, entry: ExampleEntry) -> None:
        existing = self.versions(entry.identifier)  # raises if unknown
        if existing and entry.version <= existing[-1]:
            raise StorageError(
                f"version {entry.version} does not increase on "
                f"{existing[-1]} for {entry.identifier!r}")
        self._write(entry)

    def replace_latest(self, entry: ExampleEntry) -> None:
        latest = self.latest_version(entry.identifier)
        if entry.version != latest:
            raise StorageError(
                f"replace_latest must keep the version ({latest}), "
                f"got {entry.version}")
        self._write(entry)

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _write(self, entry: ExampleEntry) -> None:
        path = self._version_path(entry.identifier, entry.version)
        temp = path.with_suffix(".json.tmp")
        with temp.open("w", encoding="utf-8") as handle:
            json.dump(entry.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        temp.replace(path)
