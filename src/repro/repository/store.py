"""Compatibility shim: the historical store names, now backed by backends.

The store grew into a layered subsystem (see ``ARCHITECTURE.md``):

* the interface moved to
  :class:`repro.repository.backends.StorageBackend`;
* the implementations moved to
  :class:`~repro.repository.backends.memory.MemoryBackend` and
  :class:`~repro.repository.backends.file.FileBackend` (plus the new
  :class:`~repro.repository.backends.sqlite.SQLiteBackend`, and the
  composite :class:`~repro.repository.backends.sharded.ShardedBackend`
  / :class:`~repro.repository.backends.replicated.ReplicatedBackend`
  scaling layer over them);
* consumers should prefer the caching/batching facade,
  :class:`repro.repository.service.RepositoryService`.

The original names remain importable from here — ``RepositoryStore``,
``MemoryStore``, ``FileStore`` — and are the same classes, so existing
code and tests (and any out-of-tree subclass of ``RepositoryStore``)
keep working unchanged.
"""

from __future__ import annotations

from repro.repository.backends import (
    FileBackend,
    MemoryBackend,
    StorageBackend,
)

__all__ = ["RepositoryStore", "MemoryStore", "FileStore"]

#: The storage interface, under its historical name.
RepositoryStore = StorageBackend

#: The in-memory store, under its historical name.
MemoryStore = MemoryBackend

#: The directory-of-JSON store, under its historical name.
FileStore = FileBackend
