"""The async variant of the repository facade: many readers, one loop.

The ROADMAP's serving north-star wants the collection answering "many
readers" without each of them blocking the event loop on storage I/O.
:class:`AsyncRepositoryService` is that variant: a thin asynchronous
shell around the synchronous
:class:`~repro.repository.service.RepositoryService`, exposing the same
:class:`~repro.repository.service.RepositoryAPI` surface as coroutine
methods.

Design decisions, and why:

* **Wrap, don't reimplement.**  The sync facade already owns the hard
  parts — the writer-preference
  :class:`~repro.repository.concurrency.ReadWriteLock`, the internally
  locked LRU snapshot cache, event dispatch, index lifecycle.  Every
  coroutine here delegates to the sync service inside an executor
  thread, so there is exactly one lock and one cache regardless of how
  many layers (sync callers, async callers, the HTTP server's handler
  threads) touch the same service concurrently.
* **Reads fan out, writes serialise.**  Read operations run on a
  bounded reader pool (``max_readers`` threads) — the read lock admits
  them all concurrently, and a sharded backend fans each one out
  further.  Write operations run on a dedicated single-thread executor:
  they are serialised among themselves *before* ever contending for the
  write lock, so a burst of async writes cannot stack up blocked writer
  threads (and the writer-preference lock never starves readers longer
  than one write).
* **``asyncio.gather``-safe by construction.**  Each coroutine submits
  one executor job and awaits it; nothing shares mutable state outside
  the sync service's own locks.  ``gather(get(...), query(...), ...)``
  simply keeps up to ``max_readers`` storage calls in flight.  A bulk
  :meth:`get_many` stays ONE job on purpose — the sync facade holds
  its read lock across the whole batch, so the answer is a single
  consistent snapshot (see the method docstring).
* **Admission control, not unbounded queues.**  Each executor accepts
  at most a watermark of pending jobs (``max_pending_reads`` /
  ``max_pending_writes``); past that the call is *shed* immediately
  with :class:`~repro.core.errors.BackendUnavailableError` carrying a
  ``retry_after`` pacing hint, instead of stacking futures until the
  process falls over.  :meth:`drain` flips the service into a
  refuse-new/finish-old mode for graceful shutdown or failover.
* **The context manager owns shutdown.**  ``async with`` closes the
  service on exit — :meth:`close` snapshots the search index (when the
  sync service has an ``index_path``), closes the backend, and shuts
  both executors down.  After close, further calls raise
  ``RuntimeError`` from the executors rather than touching a closed
  backend.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.core.errors import BackendUnavailableError
from repro.repository.backends import StorageBackend
from repro.repository.backends.base import GetRequest
from repro.repository.concurrency import Mutex
from repro.repository.entry import ExampleEntry
from repro.repository.query import (
    Query,
    QueryPlan,
    QueryResult,
    QueryStats,
    plan as build_plan,
)
from repro.repository.service import RepositoryService
from repro.repository.versioning import Version

__all__ = ["AsyncRepositoryService"]

_T = TypeVar("_T")


class _QueuedWrite:
    """One queued write op awaiting the writer thread.

    ``kind`` selects the service call (``add`` / ``add_version`` /
    ``replace_latest`` / ``add_chunk``), ``payload`` is its argument
    (an entry, or a list for a chunk), and ``future`` is the
    per-op :class:`concurrent.futures.Future` the submitting coroutine
    awaits — resolved individually, so one invalid entry fails its own
    caller and nobody else in the group.
    """

    __slots__ = ("kind", "payload", "future")

    def __init__(self, kind: str, payload) -> None:
        self.kind = kind
        self.payload = payload
        self.future: Future = Future()


class AsyncRepositoryService:
    """Async repository facade: the RepositoryAPI surface as coroutines.

    Wraps a :class:`~repro.repository.service.RepositoryService` (or
    builds one over a bare backend), running reads on a bounded thread
    pool and writes on a single serialising thread.  See the module
    docstring for the reasoning.
    """

    def __init__(
        self,
        service: RepositoryService | StorageBackend | None = None,
        *,
        max_readers: int = 8,
        max_pending_reads: int | None = None,
        max_pending_writes: int | None = 64,
        shed_retry_after: float = 0.5,
        max_coalesce: int = 128,
        coalesce_chunk: int = 512,
    ) -> None:
        if service is None:
            service = RepositoryService()
        elif not isinstance(service, RepositoryService):
            service = RepositoryService(service)
        #: The wrapped sync facade — the single owner of the lock, the
        #: LRU and the event stream.  Shared sync access (e.g. the HTTP
        #: server fronting the same repository) stays safe because all
        #: coordination lives there, not here.
        self.service = service
        if max_readers <= 0:
            raise ValueError("max_readers must be positive")
        self.max_readers = max_readers
        self._readers = ThreadPoolExecutor(
            max_workers=max_readers, thread_name_prefix="aservice-read"
        )
        #: One thread: async writes are serialised before they contend
        #: for the service's write lock.
        self._writer = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="aservice-write"
        )
        self._closed = False
        #: Watermarks on *pending* jobs (queued + running) per executor.
        #: ``None`` means unbounded.  All counters live on the event
        #: loop thread, so plain ints are race-free.
        self.max_pending_reads = max_pending_reads
        self.max_pending_writes = max_pending_writes
        self.shed_retry_after = shed_retry_after
        self._pending_reads = 0
        self._pending_writes = 0
        self._shed_total = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        #: Write coalescing: ops queue here (on the loop thread) and
        #: the single writer thread drains *runs* of them as one group
        #: committed through ``service.write_group()`` — one backend
        #: transaction, one change-counter bump, per-op futures.
        if max_coalesce <= 0:
            raise ValueError("max_coalesce must be positive")
        if coalesce_chunk <= 0:
            raise ValueError("coalesce_chunk must be positive")
        self.max_coalesce = max_coalesce
        self.coalesce_chunk = coalesce_chunk
        self._write_queue: deque[_QueuedWrite] = deque()
        self._queue_mutex = Mutex()
        #: Coalescing accounting (written by the writer thread; read by
        #: ``admission_stats`` — monotonic ints, torn reads impossible
        #: under the GIL).
        self._coalesced_groups = 0
        self._coalesced_writes = 0
        self._coalesce_high_water = 0

    # ------------------------------------------------------------------
    # Executor plumbing.
    # ------------------------------------------------------------------

    async def _read(self, fn: Callable[[], _T]) -> _T:
        self._admit(self._pending_reads, self.max_pending_reads, "reader")
        self._pending_reads += 1
        self._idle.clear()
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(self._readers, fn)
        finally:
            self._pending_reads -= 1
            self._note_if_idle()

    async def _write(self, fn: Callable[[], _T]) -> _T:
        self._admit(self._pending_writes, self.max_pending_writes, "writer")
        self._pending_writes += 1
        self._idle.clear()
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(self._writer, fn)
        finally:
            self._pending_writes -= 1
            self._note_if_idle()

    def _admit(self, pending: int, watermark: int | None, lane: str) -> None:
        """Refuse work past the watermark (or while draining), cheaply.

        Runs on the event loop before the executor is touched, so an
        overloaded service sheds in microseconds instead of queueing.
        A *closed* service deliberately skips these checks: the
        shut-down executor raises the documented ``RuntimeError``.
        """
        if self._closed:
            return
        if self._draining:
            self._shed_total += 1
            raise BackendUnavailableError(
                "async repository service is draining; retry elsewhere",
                retry_after=self.shed_retry_after,
            )
        if watermark is not None and pending >= watermark:
            self._shed_total += 1
            raise BackendUnavailableError(
                f"async {lane} queue is full ({pending} pending); "
                f"retry after {self.shed_retry_after:g}s",
                retry_after=self.shed_retry_after,
            )

    def _note_if_idle(self) -> None:
        if self._pending_reads == 0 and self._pending_writes == 0:
            self._idle.set()

    # ------------------------------------------------------------------
    # Write coalescing.  Each write coroutine appends one op to the
    # queue and submits a drain job; the single writer thread pops a
    # *run* of adjacent ops per drain and commits them as one group.
    # A drain that finds the queue already emptied (a previous drain
    # absorbed its op) returns immediately, so the invariant is cheap:
    # every queued op has at least one drain job behind it.
    # ------------------------------------------------------------------

    async def _enqueue_write(self, kind: str, payload) -> object:
        self._admit(self._pending_writes, self.max_pending_writes, "writer")
        self._pending_writes += 1
        self._idle.clear()
        op = _QueuedWrite(kind, payload)
        with self._queue_mutex:
            self._write_queue.append(op)
        try:
            try:
                self._writer.submit(self._drain_write_queue)
            except RuntimeError:
                # Writer executor already shut down: withdraw the op so
                # no later drain can apply it against a closed backend.
                with self._queue_mutex:
                    if op in self._write_queue:
                        self._write_queue.remove(op)
                raise
            return await asyncio.wrap_future(op.future)
        finally:
            self._pending_writes -= 1
            self._note_if_idle()

    def _drain_write_queue(self) -> None:
        """Writer thread: pop one run of ops and commit it as a group.

        At most ``max_coalesce`` ops per group (the coalescing
        watermark) so one drain can never monopolise the write lock
        unboundedly.  Per-op outcomes resolve individually: a write
        that fails (duplicate identifier, non-increasing version) fails
        its own future and the rest of the group still commits.
        """
        with self._queue_mutex:
            ops: list[_QueuedWrite] = []
            while self._write_queue and len(ops) < self.max_coalesce:
                ops.append(self._write_queue.popleft())
        live = [op for op in ops if op.future.set_running_or_notify_cancel()]
        if not live:
            return
        if len(live) == 1:
            self._resolve(live[0], *self._apply_op(live[0]))
            return
        self._coalesced_groups += 1
        self._coalesced_writes += len(live)
        if len(live) > self._coalesce_high_water:
            self._coalesce_high_water = len(live)
        # Outcomes are staged and futures resolved only AFTER the group
        # transaction commits: an awaiter must never see "added" while
        # the commit is still in flight (or worse, about to roll back).
        outcomes: list[tuple[bool, object]] = []
        try:
            with self.service.write_group():
                for op in live:
                    outcomes.append(self._apply_op(op))
        except BaseException as exc:  # noqa: BLE001 - the rollback fans out to every op whose write is gone
            for index, op in enumerate(live):
                if index < len(outcomes) and not outcomes[index][0]:
                    self._resolve(op, *outcomes[index])  # its own error
                else:
                    self._resolve(op, False, exc)
            return
        for op, outcome in zip(live, outcomes):
            self._resolve(op, *outcome)

    @staticmethod
    def _resolve(op: _QueuedWrite, ok: bool, value: object) -> None:
        if ok:
            op.future.set_result(value)
        else:
            op.future.set_exception(value)  # type: ignore[arg-type]

    def _apply_op(self, op: _QueuedWrite) -> tuple[bool, object]:
        """Apply one op through the sync facade; never raises.

        Returns ``(ok, result-or-exception)`` instead of touching the
        future — the drain resolves futures once the op's commit unit
        (its own, or the surrounding group's) is actually durable.
        """
        try:
            if op.kind == "add":
                result = self.service.add(op.payload)
            elif op.kind == "add_version":
                result = self.service.add_version(op.payload)
            elif op.kind == "replace_latest":
                result = self.service.replace_latest(op.payload)
            else:  # "add_chunk"
                result = self.service.add_many(op.payload)
        except BaseException as exc:  # noqa: BLE001 - the op's outcome, good or bad, belongs to its own future
            return False, exc
        return True, result

    # ------------------------------------------------------------------
    # Reads (fanned out over the reader pool).
    # ------------------------------------------------------------------

    async def identifiers(self) -> list[str]:
        return await self._read(self.service.identifiers)

    async def versions(self, identifier: str) -> list[Version]:
        return await self._read(lambda: self.service.versions(identifier))

    async def versions_many(
        self, identifiers: Sequence[str]
    ) -> dict[str, list[Version]]:
        return await self._read(
            lambda: self.service.versions_many(identifiers)
        )

    async def has(self, identifier: str) -> bool:
        return await self._read(lambda: self.service.has(identifier))

    async def entry_count(self) -> int:
        return await self._read(self.service.entry_count)

    async def get(
        self, identifier: str, version: Version | None = None
    ) -> ExampleEntry:
        return await self._read(
            lambda: self.service.get(identifier, version)
        )

    async def get_many(
        self, requests: Sequence[GetRequest]
    ) -> list[ExampleEntry]:
        """Resolve many entries as ONE service call, atomically.

        Deliberately *not* chunked across the reader pool: the sync
        facade holds its read lock across the whole batch, so the
        result is a single consistent snapshot — a racing write can
        land before or after the batch, never in the middle of it.
        Splitting the batch over several reader threads would release
        and re-acquire the lock per chunk and could return a torn
        snapshot no sync caller can ever observe.  Concurrency across
        *separate* awaits (``gather(get_many(...), get_many(...))``)
        still fans out over the pool, and a sharded backend fans one
        batch out further under the lock.
        """
        requests = list(requests)
        return await self._read(lambda: self.service.get_many(requests))

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    async def query(
        self,
        query: Query | str | None = None,
        *,
        sort: str = "relevance",
        offset: int = 0,
        limit: int | None = None,
    ) -> QueryResult:
        """The composable retrieval surface, asynchronously.

        Builds the plan on the event loop (cheap, pure) and executes it
        on a reader thread — through the sync facade's pushdown-or-index
        path, so results are identical to the sync ``query()``.
        """
        return await self.execute_query(
            build_plan(query, sort=sort, offset=offset, limit=limit)
        )

    async def execute_query(
        self, plan: QueryPlan, stats: QueryStats | None = None
    ) -> QueryResult:
        return await self._read(
            lambda: self.service.execute_query(plan, stats)
        )

    async def query_stats(self, terms: Sequence[str]) -> QueryStats:
        return await self._read(lambda: self.service.query_stats(terms))

    async def change_counter(self) -> int | None:
        return await self._read(self.service.change_counter)

    async def change_token(self) -> str | None:
        return await self._read(self.service.change_token)

    # ------------------------------------------------------------------
    # Writes (serialised through the one-thread writer executor).
    # ------------------------------------------------------------------

    async def add(self, entry: ExampleEntry) -> None:
        await self._enqueue_write("add", entry)

    async def add_version(self, entry: ExampleEntry) -> None:
        await self._enqueue_write("add_version", entry)

    async def replace_latest(self, entry: ExampleEntry) -> None:
        await self._enqueue_write("replace_latest", entry)

    async def add_many(self, entries: Iterable[ExampleEntry]) -> int:
        """Bulk-load through the coalescing path, one chunk at a time.

        The batch splits into ``coalesce_chunk``-sized chunks and each
        chunk queues as one op, so a huge ingest (a 100k corpus) can
        never starve queued point writes — they interleave between
        chunks.  Each chunk keeps the backend's all-or-nothing
        guarantee; across chunks the load is resumable, not atomic (a
        failing chunk leaves earlier chunks committed and raises).
        Batches at or under one chunk behave exactly as before.
        """
        batch = list(entries)
        if len(batch) <= self.coalesce_chunk:
            return await self._enqueue_write("add_chunk", batch)  # type: ignore[return-value]
        total = 0
        for start in range(0, len(batch), self.coalesce_chunk):
            chunk = batch[start:start + self.coalesce_chunk]
            total += await self._enqueue_write("add_chunk", chunk)  # type: ignore[operator]
        return total

    # ------------------------------------------------------------------
    # Introspection / lifecycle.
    # ------------------------------------------------------------------

    async def cache_stats(self) -> dict[str, dict[str, int]]:
        return await self._read(self.service.cache_stats)

    def admission_stats(self) -> dict[str, int | bool]:
        """Pending-job counts, shed count, and coalescing accounting.

        ``coalesced_groups``/``coalesced_writes`` count multi-op groups
        and the ops they carried; ``coalesce_high_water`` is the
        largest group committed so far and ``max_coalesce`` the
        configured watermark it can never exceed.
        """
        return {
            "pending_reads": self._pending_reads,
            "pending_writes": self._pending_writes,
            "queued_writes": len(self._write_queue),
            "shed_total": self._shed_total,
            "draining": self._draining,
            "coalesced_groups": self._coalesced_groups,
            "coalesced_writes": self._coalesced_writes,
            "coalesce_high_water": self._coalesce_high_water,
            "max_coalesce": self.max_coalesce,
        }

    async def drain(self, timeout: float | None = None) -> bool:
        """Refuse new work and wait for in-flight calls to finish.

        Returns True when the service went idle within ``timeout``
        (None: wait forever).  The service stays in the draining state
        either way; :meth:`resume` re-opens admission — the failover
        dance is drain, hand off, resume (or close).
        """
        self._draining = True
        if self._pending_reads == 0 and self._pending_writes == 0:
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
        except asyncio.TimeoutError:
            return False
        return True

    def resume(self) -> None:
        """Re-open admission after a :meth:`drain`."""
        self._draining = False

    async def save_index(self) -> bool:
        """Snapshot the search index (see the sync ``save_index``)."""
        return await self._write(self.service.save_index)

    async def close(self) -> None:
        """Save the index, close the backend, shut the executors down.

        Idempotent.  Ordering matters: the reader pool drains *first*
        (a read still in flight must finish against a live backend —
        closing underneath it would surface as a backend-specific
        crash, not the documented post-close ``RuntimeError``), then
        the index snapshot and backend close run on the writer thread,
        after every previously submitted write.
        """
        if self._closed:
            return
        self._closed = True
        loop = asyncio.get_running_loop()
        # shutdown(wait=True) blocks until in-flight reads finish, so
        # it runs off-loop; new submissions now raise RuntimeError.
        await loop.run_in_executor(None, self._readers.shutdown)
        await self._write(self.service.close)
        # Same rule for the writer: its queue holds the service.close
        # submitted above, so shutdown(wait=True) blocks until that
        # drains — run it off-loop too, or close() stalls every other
        # coroutine on the loop for the duration.
        await loop.run_in_executor(
            None, lambda: self._writer.shutdown(wait=True))

    async def __aenter__(self) -> "AsyncRepositoryService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()
