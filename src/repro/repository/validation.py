"""Template conformance checking for example entries.

The paper takes "a middle road, providing a suggested template but not a
barrier to varying it where good reasons to do so arise" (§5.1).  The
validator therefore reports two severities:

* **errors** — violations of hard rules the paper states outright:
  required fields present ("other fields should be present, even if
  brief"), PRECISE/SKETCH mutual exclusion, version 0.x while unreviewed,
  overview length ("not more than two or three sentences"), property names
  known to the glossary;
* **warnings** — template divergences that are allowed but worth flagging
  (e.g. a PRECISE entry with no properties, or no references for an
  example said to come from the literature).

:func:`validate_entry` returns a :class:`ValidationReport`;
:func:`require_valid` raises :class:`~repro.core.errors.ValidationError`
carrying every error at once.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.errors import TemplateError, ValidationError
from repro.repository.entry import ExampleEntry
from repro.repository.template import (
    EntryType,
    MUTUALLY_EXCLUSIVE_TYPES,
)

__all__ = ["ValidationReport", "validate_entry", "require_valid"]

#: Overview sentences allowed by the template ("not more than two or
#: three"); we enforce the generous reading.
MAX_OVERVIEW_SENTENCES = 3

_SENTENCE_END = re.compile(r"[.!?](?=\s|$)")


@dataclass
class ValidationReport:
    """All problems found in one entry, split by severity."""

    identifier: str
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def describe(self) -> str:
        lines = [
            f"validation of {self.identifier!r}: "
            f"{len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        ]
        lines.extend(f"  error: {problem}" for problem in self.errors)
        lines.extend(f"  warning: {problem}" for problem in self.warnings)
        return "\n".join(lines)


def _count_sentences(text: str) -> int:
    return max(len(_SENTENCE_END.findall(text)), 1 if text.strip() else 0)


def validate_entry(
    entry: ExampleEntry, known_properties: set[str] | None = None
) -> ValidationReport:
    """Check one entry against the §3 template.

    ``known_properties`` defaults to the global property registry plus the
    glossary's extra terms; pass an explicit set to decouple from registry
    state in tests.
    """
    try:
        identifier = entry.identifier
    except TemplateError:  # empty/symbol-only title; reported below
        identifier = "<untitled>"
    report = ValidationReport(identifier=identifier)

    # Required fields "should be present, even if brief".
    if not entry.title.strip():
        report.errors.append("Title must be non-empty")
    if not entry.types:
        report.errors.append("Type must name at least one class")
    if not entry.overview.strip():
        report.errors.append("Overview must be non-empty")
    if not entry.models:
        report.errors.append("Models must describe at least one model")
    for model in entry.models:
        if not model.description.strip():
            report.errors.append(f"model {model.name!r} has an empty description")
    if not entry.consistency.strip():
        report.errors.append("Consistency must be non-empty")
    if entry.restoration.is_empty():
        report.errors.append("Consistency Restoration must be non-empty")
    if not entry.discussion.strip():
        report.errors.append("Discussion must be non-empty")
    if not entry.authors:
        report.errors.append("Authors must name at least one contributor")

    # Type constraints.
    type_set = frozenset(entry.types)
    if len(entry.types) != len(type_set):
        report.errors.append("Type list contains duplicates")
    for excluded in MUTUALLY_EXCLUSIVE_TYPES:
        if excluded <= type_set:
            names = " and ".join(sorted(t.value for t in excluded))
            report.errors.append(f"types {names} are mutually exclusive")

    # Version/review coupling: "0.x for unreviewed examples" and "examples
    # remain provisional (version 0.x) until reviewed".
    if entry.version.is_reviewed and not entry.reviewers:
        report.errors.append(
            f"version {entry.version} requires at least one named reviewer"
        )
    if not entry.version.is_reviewed and entry.reviewers:
        report.warnings.append(
            "entry has reviewers but is still versioned 0.x; consider "
            "promoting to 1.0"
        )

    # Overview length.
    sentences = _count_sentences(entry.overview)
    if sentences > MAX_OVERVIEW_SENTENCES:
        report.errors.append(
            f"Overview has {sentences} sentences; the template allows at "
            f"most {MAX_OVERVIEW_SENTENCES}"
        )

    # Property claims must be glossary terms.
    if known_properties is None:
        from repro.repository.glossary import known_property_names
        known_properties = known_property_names()
    for claim in entry.properties:
        if claim.name not in known_properties:
            report.errors.append(
                f"property claim {claim.name!r} is not a glossary term "
                f"(known: {', '.join(sorted(known_properties))})"
            )
    claim_names = [claim.name for claim in entry.properties]
    if len(set(claim_names)) != len(claim_names):
        report.errors.append("duplicate property claims")

    # Soft expectations.
    if EntryType.PRECISE in type_set and not entry.properties:
        report.warnings.append("PRECISE entries usually state expected properties")
    if EntryType.PRECISE in type_set and not entry.variants:
        report.warnings.append("PRECISE entries usually record their variation points")
    if not entry.references:
        report.warnings.append(
            "no references: if the example comes from the literature, "
            "cite its origin"
        )
    for variant in entry.variants:
        if not variant.description.strip():
            report.errors.append(f"variant {variant.name!r} has an empty description")

    return report


def require_valid(
    entry: ExampleEntry, known_properties: set[str] | None = None
) -> ValidationReport:
    """Validate and raise :class:`ValidationError` on any error."""
    report = validate_entry(entry, known_properties)
    if not report.ok:
        raise ValidationError(report.errors)
    return report
