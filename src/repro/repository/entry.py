"""Example entries: the curated artefact the repository stores.

An :class:`ExampleEntry` is one instance of the §3 template.  It is a
value object — immutable, equal by content, serialisable to/from plain
dicts (the store persists the dict form as JSON; the wiki sync bx renders
it to wikidot markup).

The sub-structures mirror the template's composite fields:

* :class:`ModelDescription` — one entry of the Models field;
* :class:`RestorationSpec` — the Consistency Restoration field, split into
  forward and backward as the paper's Composers instance does;
* :class:`PropertyClaim` — one Properties item; ``holds=False`` renders as
  "Not undoable" style negative claims, and is what
  :func:`repro.core.laws.verify_property_claims` verifies by *finding* a
  counterexample;
* :class:`Variant` — one variation point;
* :class:`Reference` — one bibliography item;
* :class:`Comment` — one wiki-member comment;
* :class:`Artefact` — a pointer to auxiliary material (code, diagrams,
  sample data); for catalogue examples the locator is the dotted path of
  the executable bx.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.errors import TemplateError
from repro.repository.template import EntryType
from repro.repository.versioning import Version

__all__ = [
    "ModelDescription",
    "RestorationSpec",
    "PropertyClaim",
    "Variant",
    "Reference",
    "Comment",
    "Artefact",
    "ExampleEntry",
    "slugify",
]


def slugify(title: str) -> str:
    """Derive the stable identifier from a title: COMPOSERS -> composers.

    Identifiers are lowercase with hyphens, matching the paper's concern
    for "well-chosen names" and stable references.
    """
    slug = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")
    if not slug:
        raise TemplateError(f"title {title!r} yields an empty identifier")
    return slug


@dataclass(frozen=True)
class ModelDescription:
    """One model class: a name, prose description, optional formal metamodel."""

    name: str
    description: str
    metamodel: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "description": self.description,
                "metamodel": self.metamodel}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "ModelDescription":
        return ModelDescription(data["name"], data["description"],
                                data.get("metamodel", ""))


@dataclass(frozen=True)
class RestorationSpec:
    """The Consistency Restoration field, forward and backward.

    ``combined`` is for entries that describe restoration in one piece
    (then forward/backward stay empty).
    """

    forward: str = ""
    backward: str = ""
    combined: str = ""

    def is_empty(self) -> bool:
        return not (self.forward or self.backward or self.combined)

    def to_dict(self) -> dict[str, Any]:
        return {"forward": self.forward, "backward": self.backward,
                "combined": self.combined}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "RestorationSpec":
        return RestorationSpec(data.get("forward", ""),
                               data.get("backward", ""),
                               data.get("combined", ""))


@dataclass(frozen=True)
class PropertyClaim:
    """A claimed property: name (glossary term), polarity, optional note."""

    name: str
    holds: bool = True
    note: str = ""

    def display(self) -> str:
        """Render as the paper writes it: "Correct", "Not undoable"."""
        text = self.name if self.holds else f"Not {self.name}"
        # The paper capitalises property bullets.
        return text[0].upper() + text[1:]

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "holds": self.holds, "note": self.note}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "PropertyClaim":
        return PropertyClaim(data["name"], data.get("holds", True),
                             data.get("note", ""))


@dataclass(frozen=True)
class Variant:
    """A variation point: where "more than one choice is reasonable"."""

    name: str
    description: str

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "description": self.description}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Variant":
        return Variant(data["name"], data["description"])


@dataclass(frozen=True)
class Reference:
    """A bibliography item, with optional DOI and role annotation."""

    text: str
    doi: str = ""
    note: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"text": self.text, "doi": self.doi, "note": self.note}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Reference":
        return Reference(data["text"], data.get("doi", ""),
                         data.get("note", ""))


@dataclass(frozen=True)
class Comment:
    """A wiki-member comment: author, ISO date string, text."""

    author: str
    date: str
    text: str

    def to_dict(self) -> dict[str, Any]:
        return {"author": self.author, "date": self.date, "text": self.text}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Comment":
        return Comment(data["author"], data["date"], data["text"])


@dataclass(frozen=True)
class Artefact:
    """Auxiliary material: executable code, sample data, diagrams.

    ``kind`` is free text ("code", "sample", "diagram", ...); ``locator``
    is a dotted Python path for executable artefacts in this library, or a
    URL/path otherwise.
    """

    name: str
    kind: str
    locator: str
    description: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "kind": self.kind,
                "locator": self.locator, "description": self.description}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Artefact":
        return Artefact(data["name"], data["kind"], data["locator"],
                        data.get("description", ""))


@dataclass(frozen=True)
class ExampleEntry:
    """One curated example, structured per the §3 template.

    The attribute-to-field mapping is recorded in
    :data:`repro.repository.template.TEMPLATE`; validation against the
    template lives in :mod:`repro.repository.validation` so that an entry
    object can exist in a draft, not-yet-valid state while being composed.
    """

    title: str
    version: Version
    types: tuple[EntryType, ...]
    overview: str
    models: tuple[ModelDescription, ...]
    consistency: str
    restoration: RestorationSpec
    discussion: str
    authors: tuple[str, ...]
    properties: tuple[PropertyClaim, ...] = ()
    variants: tuple[Variant, ...] = ()
    references: tuple[Reference, ...] = ()
    reviewers: tuple[str, ...] = ()
    comments: tuple[Comment, ...] = ()
    artefacts: tuple[Artefact, ...] = ()

    @property
    def identifier(self) -> str:
        """The stable identifier derived from the title."""
        return slugify(self.title)

    # ------------------------------------------------------------------
    # Evolution helpers (entries are immutable; these return new values).
    # ------------------------------------------------------------------

    def with_version(self, version: Version) -> "ExampleEntry":
        return replace(self, version=version)

    def with_comment(self, comment: Comment) -> "ExampleEntry":
        return replace(self, comments=self.comments + (comment,))

    def with_reviewer(self, reviewer: str) -> "ExampleEntry":
        if reviewer in self.reviewers:
            return self
        return replace(self, reviewers=self.reviewers + (reviewer,))

    def with_artefact(self, artefact: Artefact) -> "ExampleEntry":
        return replace(self, artefacts=self.artefacts + (artefact,))

    def claimed_properties(self) -> dict[str, bool]:
        """Property claims as the mapping verify_property_claims expects."""
        return {claim.name: claim.holds for claim in self.properties}

    # ------------------------------------------------------------------
    # Serialisation.
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, JSON-ready; inverse of :meth:`from_dict`."""
        return {
            "title": self.title,
            "version": str(self.version),
            "types": [t.value for t in self.types],
            "overview": self.overview,
            "models": [m.to_dict() for m in self.models],
            "consistency": self.consistency,
            "restoration": self.restoration.to_dict(),
            "properties": [p.to_dict() for p in self.properties],
            "variants": [v.to_dict() for v in self.variants],
            "discussion": self.discussion,
            "references": [r.to_dict() for r in self.references],
            "authors": list(self.authors),
            "reviewers": list(self.reviewers),
            "comments": [c.to_dict() for c in self.comments],
            "artefacts": [a.to_dict() for a in self.artefacts],
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "ExampleEntry":
        try:
            return ExampleEntry(
                title=data["title"],
                version=Version.parse(data["version"]),
                types=tuple(EntryType(t) for t in data["types"]),
                overview=data["overview"],
                models=tuple(ModelDescription.from_dict(m)
                             for m in data["models"]),
                consistency=data["consistency"],
                restoration=RestorationSpec.from_dict(data["restoration"]),
                properties=tuple(PropertyClaim.from_dict(p)
                                 for p in data.get("properties", [])),
                variants=tuple(Variant.from_dict(v)
                               for v in data.get("variants", [])),
                discussion=data["discussion"],
                references=tuple(Reference.from_dict(r)
                                 for r in data.get("references", [])),
                authors=tuple(data["authors"]),
                reviewers=tuple(data.get("reviewers", [])),
                comments=tuple(Comment.from_dict(c)
                               for c in data.get("comments", [])),
                artefacts=tuple(Artefact.from_dict(a)
                                for a in data.get("artefacts", [])),
            )
        except KeyError as exc:
            raise TemplateError(
                f"entry dict missing required key {exc.args[0]!r}") from exc
