"""Rendering entries to markup: wikidot (the Bx wiki) and Markdown.

The wikidot rendering is the repository's public face — the paper hosts
the repository on a wikidot wiki — and is designed to be **parsed back**
by :mod:`repro.repository.wiki_sync`, which is what makes the §5.4
"maintain consistency between the local copy and the wiki via a bx" idea
executable.  Consequently the renderer is deliberately regular:

* one ``+`` heading with the title, ``++`` section headings named exactly
  as the §3 template, ``+++`` sub-headings for structured items;
* a two-column wikidot table for the metadata (Version, Type);
* bullet lists for properties/references/authors/reviewers/comments/
  artefacts, with a fixed micro-syntax per list kind;
* empty optional sections render as the paper's own "None yet".

The Markdown rendering is one-way (for READMEs and papers) and favours
looks over parseability.
"""

from __future__ import annotations

from repro.core.errors import StorageError
from repro.repository.entry import ExampleEntry
from repro.repository.glossary import glossary_terms

__all__ = [
    "render_wikidot",
    "render_markdown",
    "render_glossary_wikidot",
    "render_repository_markdown",
]

#: Rendered where the paper's own §4 instance writes "None yet".
NONE_YET = "None yet"


def _wikidot_lines(entry: ExampleEntry) -> list[str]:
    lines: list[str] = [f"+ {entry.title}", ""]

    # Metadata table: Version and Type.
    lines.append(f"||~ Version || {entry.version} ||")
    lines.append(
        f"||~ Type || {', '.join(t.value for t in entry.types)} ||")
    lines.append("")

    lines.append("++ Overview")
    lines.append(entry.overview)
    lines.append("")

    lines.append("++ Models")
    for model in entry.models:
        lines.append(f"+++ {model.name}")
        lines.append(model.description)
        if model.metamodel:
            lines.append("[[code]]")
            lines.extend(model.metamodel.splitlines())
            lines.append("[[/code]]")
        lines.append("")

    lines.append("++ Consistency")
    lines.append(entry.consistency)
    lines.append("")

    lines.append("++ Consistency Restoration")
    if entry.restoration.combined:
        lines.append(entry.restoration.combined)
    else:
        lines.append("+++ Forward")
        lines.append(entry.restoration.forward)
        lines.append("")
        lines.append("+++ Backward")
        lines.append(entry.restoration.backward)
    lines.append("")

    lines.append("++ Properties")
    if entry.properties:
        for claim in entry.properties:
            note = f" -- {claim.note}" if claim.note else ""
            lines.append(f"* {claim.display()}{note}")
    else:
        lines.append(NONE_YET)
    lines.append("")

    lines.append("++ Variants")
    if entry.variants:
        for variant in entry.variants:
            lines.append(f"+++ {variant.name}")
            lines.append(variant.description)
            lines.append("")
    else:
        lines.append(NONE_YET)
        lines.append("")

    lines.append("++ Discussion")
    lines.append(entry.discussion)
    lines.append("")

    lines.append("++ References")
    if entry.references:
        for reference in entry.references:
            doi = f" DOI {reference.doi}" if reference.doi else ""
            note = f" ({reference.note})" if reference.note else ""
            lines.append(f"* {reference.text}{doi}{note}")
    else:
        lines.append(NONE_YET)
    lines.append("")

    lines.append("++ Authors")
    for author in entry.authors:
        lines.append(f"* {author}")
    lines.append("")

    lines.append("++ Reviewers")
    if entry.reviewers:
        for reviewer in entry.reviewers:
            lines.append(f"* {reviewer}")
    else:
        lines.append(NONE_YET)
    lines.append("")

    lines.append("++ Comments")
    if entry.comments:
        for comment in entry.comments:
            lines.append(
                f"* **{comment.author}** ({comment.date}): {comment.text}")
    else:
        lines.append(NONE_YET)
    lines.append("")

    lines.append("++ Artefacts")
    if entry.artefacts:
        for artefact in entry.artefacts:
            description = (f" -- {artefact.description}"
                           if artefact.description else "")
            lines.append(
                f"* {artefact.name} [{artefact.kind}] "
                f"{artefact.locator}{description}")
    else:
        lines.append(NONE_YET)
    return lines


def render_wikidot(entry: ExampleEntry) -> str:
    """Render an entry as a wikidot page (parseable by wiki_sync)."""
    return "\n".join(_wikidot_lines(entry)).rstrip() + "\n"


def render_markdown(entry: ExampleEntry) -> str:
    """Render an entry as GitHub-flavoured Markdown (one-way, for docs)."""
    lines: list[str] = [f"# {entry.title}", ""]
    lines.append(f"**Version:** {entry.version}  ")
    lines.append(
        f"**Type:** {', '.join(t.value for t in entry.types)}")
    lines.append("")

    lines.append("## Overview")
    lines.append("")
    lines.append(entry.overview)
    lines.append("")

    lines.append("## Models")
    lines.append("")
    for model in entry.models:
        lines.append(f"### {model.name}")
        lines.append("")
        lines.append(model.description)
        if model.metamodel:
            lines.append("")
            lines.append("```")
            lines.extend(model.metamodel.splitlines())
            lines.append("```")
        lines.append("")

    lines.append("## Consistency")
    lines.append("")
    lines.append(entry.consistency)
    lines.append("")

    lines.append("## Consistency Restoration")
    lines.append("")
    if entry.restoration.combined:
        lines.append(entry.restoration.combined)
        lines.append("")
    else:
        lines.append("### Forward")
        lines.append("")
        lines.append(entry.restoration.forward)
        lines.append("")
        lines.append("### Backward")
        lines.append("")
        lines.append(entry.restoration.backward)
        lines.append("")

    if entry.properties:
        lines.append("## Properties")
        lines.append("")
        for claim in entry.properties:
            note = f" — {claim.note}" if claim.note else ""
            lines.append(f"- {claim.display()}{note}")
        lines.append("")

    if entry.variants:
        lines.append("## Variants")
        lines.append("")
        for variant in entry.variants:
            lines.append(f"### {variant.name}")
            lines.append("")
            lines.append(variant.description)
            lines.append("")

    lines.append("## Discussion")
    lines.append("")
    lines.append(entry.discussion)
    lines.append("")

    if entry.references:
        lines.append("## References")
        lines.append("")
        for reference in entry.references:
            doi = f" DOI: {reference.doi}." if reference.doi else ""
            note = f" ({reference.note})" if reference.note else ""
            lines.append(f"- {reference.text}{doi}{note}")
        lines.append("")

    lines.append("## Authors")
    lines.append("")
    for author in entry.authors:
        lines.append(f"- {author}")
    lines.append("")

    lines.append("## Reviewers")
    lines.append("")
    if entry.reviewers:
        lines.extend(f"- {reviewer}" for reviewer in entry.reviewers)
    else:
        lines.append(f"*{NONE_YET}*")
    lines.append("")

    lines.append("## Comments")
    lines.append("")
    if entry.comments:
        for comment in entry.comments:
            lines.append(
                f"- **{comment.author}** ({comment.date}): {comment.text}")
    else:
        lines.append(f"*{NONE_YET}*")
    lines.append("")

    if entry.artefacts:
        lines.append("## Artefacts")
        lines.append("")
        for artefact in entry.artefacts:
            description = (f" — {artefact.description}"
                           if artefact.description else "")
            lines.append(f"- **{artefact.name}** ({artefact.kind}): "
                         f"`{artefact.locator}`{description}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_repository_markdown(store, title: str | None = None,
                               query=None, *, cache=None) -> str:
    """Render latest entries as one Markdown document (§5.2's
    "collect the most recent versions ... into a manuscript").

    ``store`` is any storage backend or, preferably, a
    :class:`~repro.repository.service.RepositoryService` — the batch
    ``get_many`` path lets backends with a bulk query (SQLite) fetch
    all snapshots at once.

    ``query`` optionally restricts the document to a slice of the
    collection (a :class:`~repro.repository.query.Q` expression or a
    free-text string), selected through the unified query API in
    identifier order — e.g. ``query=Q.reviewed()`` renders only the
    approved examples.  Backends with a native plan (SQLite, sharded)
    then fetch exactly the matching snapshots.

    ``cache`` is an optional
    :class:`~repro.repository.render_cache.RenderCache` attached to
    this very store: per-entry fragments then come from the cache and
    only entries written since the last export are re-rendered.  The
    assembled document is byte-identical either way.
    """
    heading = title or "The Bx Examples Repository"
    if cache is not None:
        if cache.service is not store:
            raise StorageError(
                "render cache is attached to a different store")
        fragments = list(cache.markdown_fragments(query).values())
    else:
        fragments = [render_markdown(entry)
                     for entry in _select_entries(store, query)]
    lines = [f"# {heading}", "",
             f"{len(fragments)} examples, latest versions.", ""]
    for fragment in fragments:
        lines.append("---")
        lines.append("")
        lines.append(fragment.rstrip())
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _select_entries(store, query):
    """Latest entries for a document: everything, or a query's matches."""
    if query is None:
        return store.get_many(store.identifiers())
    from repro.repository.query import plan

    return [hit.entry
            for hit in store.execute_query(
                plan(query, sort="identifier")).hits]


def render_glossary_wikidot() -> str:
    """Render the glossary as a wiki page (the Properties field links here)."""
    lines = ["+ Glossary of Bx Terms", ""]
    lines.append("Checkable terms are verified mechanically by the law "
                 "harness; others are vocabulary.")
    lines.append("")
    for term in glossary_terms():
        marker = " //[checkable]//" if term.checkable else ""
        lines.append(f"++ {term.term}{marker}")
        lines.append(term.definition)
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
