"""Catalogue examples: a repository entry paired with executable artefacts.

The paper separates an example's curated *description* (the template
entry) from its *artefacts* ("executable code, proof scripts, sample
inputs and outputs").  A :class:`CatalogueExample` bundles both: the
:class:`~repro.repository.entry.ExampleEntry` and the executable bx
implementations, so that

* the repository can be populated from the catalogue
  (:func:`repro.catalogue.collection.populate_store`), and
* every entry's property claims can be verified against its primary
  artefact (:meth:`CatalogueExample.verify_claims` — the mechanised
  reviewer of experiments E3–E6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.bx import Bx
from repro.core.laws import CheckConfig, CheckReport, verify_property_claims
from repro.repository.entry import ExampleEntry

__all__ = ["CatalogueExample"]


@dataclass(frozen=True)
class CatalogueExample:
    """One catalogue item: entry plus executable artefacts.

    Attributes:
        entry_factory: builds the repository entry (fresh each call, so
            curation workflows cannot alias catalogue state).
        bx_factory: builds the primary state-based bx artefact, or None
            for entries whose artefacts are not state-based (sketches).
        extra_artefacts: named factories for further executables
            (variants, lenses), keyed by a short label.
    """

    name: str
    entry_factory: Callable[[], ExampleEntry]
    bx_factory: Callable[[], Bx] | None = None
    extra_artefacts: dict[str, Callable[[], Any]] = field(
        default_factory=dict)

    def entry(self) -> ExampleEntry:
        """A fresh copy of the repository entry."""
        return self.entry_factory()

    def bx(self) -> Bx:
        """A fresh instance of the primary bx artefact."""
        if self.bx_factory is None:
            raise ValueError(
                f"catalogue example {self.name!r} has no executable bx")
        return self.bx_factory()

    def has_bx(self) -> bool:
        return self.bx_factory is not None

    def artefact(self, label: str) -> Any:
        """Instantiate a named extra artefact."""
        try:
            factory = self.extra_artefacts[label]
        except KeyError:
            known = ", ".join(sorted(self.extra_artefacts))
            raise KeyError(
                f"{self.name!r} has no artefact {label!r}; "
                f"known: {known}") from None
        return factory()

    def verify_claims(self, config: CheckConfig | None = None
                      ) -> CheckReport:
        """Check the entry's property claims against the primary bx.

        Claims the library cannot check (no registered checker, or the
        bx lacks the needed protocol) come back SKIPPED, mirroring a
        human reviewer abstaining.
        """
        return verify_property_claims(
            self.bx(), self.entry().claimed_properties(), config=config)
