"""COMPOSERS-STRING: the original asymmetric (Boomerang) Composers."""

from repro.catalogue.strings.entry import composers_string_entry
from repro.catalogue.strings.lens import (
    ComposerLinesLens,
    ComposerTextLens,
    source_lines_space,
    view_lines_space,
)

__all__ = [
    "ComposerLinesLens", "ComposerTextLens", "composers_string_entry",
    "source_lines_space", "view_lines_space",
]
