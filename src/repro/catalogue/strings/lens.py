"""The original asymmetric Composers: a Boomerang-style string lens.

The paper's References note the example "first appeared in" Boomerang
(Bohannon et al., POPL 2008), as a lens on *strings*: the source is a
text file of lines ``Name, Dates, Nationality`` and the view a text of
lines ``Name, Nationality``.  The interesting part is *resourcefulness*:
``put`` aligns view lines with source lines **by key** (name,
nationality), not by position, so reordering the view preserves every
composer's dates — the behaviour chunked/dictionary lenses were invented
for.

Two artefacts:

* :class:`ComposerLinesLens` — the lens on tuples of lines (structured
  form; used by the cross-formalism experiment E13);
* :class:`ComposerTextLens` — the same lens precomposed with the
  newline iso, operating on actual strings as Boomerang does.

Laws: GetPut, PutGet, CreateGet hold; PutPut fails (resourceful lenses
are not very well behaved) — the string-lens shadow of the paper's
undoability discussion.
"""

from __future__ import annotations

import random

from repro.core.lens import Lens
from repro.models.space import ModelSpace, PredicateSpace
from repro.catalogue.composers.models import (
    DATES,
    NAMES,
    NATIONALITIES,
    UNKNOWN_DATES,
)

__all__ = [
    "ComposerLinesLens",
    "ComposerTextLens",
    "source_lines_space",
    "view_lines_space",
]


def _source_line(name: str, dates: str, nationality: str) -> str:
    return f"{name}, {dates}, {nationality}"


def _parse_source_line(line: str) -> tuple[str, str, str]:
    parts = [part.strip() for part in line.split(",")]
    if len(parts) != 3:
        raise ValueError(f"bad source line {line!r}")
    return (parts[0], parts[1], parts[2])


def _parse_view_line(line: str) -> tuple[str, str]:
    parts = [part.strip() for part in line.split(",")]
    if len(parts) != 2:
        raise ValueError(f"bad view line {line!r}")
    return (parts[0], parts[1])


def _is_source_lines(value) -> bool:
    if not isinstance(value, tuple):
        return False
    for line in value:
        if not isinstance(line, str):
            return False
        try:
            _parse_source_line(line)
        except ValueError:
            return False
    return True


def _is_view_lines(value) -> bool:
    if not isinstance(value, tuple):
        return False
    for line in value:
        if not isinstance(line, str):
            return False
        try:
            _parse_view_line(line)
        except ValueError:
            return False
    return True


def source_lines_space(max_lines: int = 6) -> ModelSpace:
    """Tuples of well-formed ``Name, Dates, Nationality`` lines."""

    def _sample(rng: random.Random) -> tuple:
        count = rng.randint(0, max_lines)
        return tuple(
            _source_line(rng.choice(NAMES), rng.choice(DATES),
                         rng.choice(NATIONALITIES))
            for _ in range(count))

    return PredicateSpace(_is_source_lines, _sample,
                          name="composer source lines")


def view_lines_space(max_lines: int = 6) -> ModelSpace:
    """Tuples of well-formed ``Name, Nationality`` lines."""

    def _sample(rng: random.Random) -> tuple:
        count = rng.randint(0, max_lines)
        return tuple(
            f"{rng.choice(NAMES)}, {rng.choice(NATIONALITIES)}"
            for _ in range(count))

    return PredicateSpace(_is_view_lines, _sample,
                          name="composer view lines")


class ComposerLinesLens(Lens):
    """Line-structured Boomerang Composers: drop dates; put them back by key.

    ``put`` alignment: view lines claim source lines with the same
    (name, nationality) key, first-come first-served in order; view
    lines with no unclaimed key-match are new composers with ????-????
    dates.  Source lines never claimed are deleted.
    """

    def __init__(self, max_lines: int = 6) -> None:
        self.name = "composers-string"
        self.source_space = source_lines_space(max_lines)
        self.view_space = view_lines_space(max_lines)

    def get(self, source: tuple) -> tuple:
        view = []
        for line in source:
            name, _dates, nationality = _parse_source_line(line)
            view.append(f"{name}, {nationality}")
        return tuple(view)

    def put(self, view: tuple, source: tuple) -> tuple:
        # Pool of source dates per key, in source order (multiset).
        pool: dict[tuple[str, str], list[str]] = {}
        for line in source:
            name, dates, nationality = _parse_source_line(line)
            pool.setdefault((name, nationality), []).append(dates)
        merged = []
        for line in view:
            key = _parse_view_line(line)
            dates_list = pool.get(key)
            if dates_list:
                dates = dates_list.pop(0)
            else:
                dates = UNKNOWN_DATES
            merged.append(_source_line(key[0], dates, key[1]))
        return tuple(merged)

    def create(self, view: tuple) -> tuple:
        return self.put(view, ())


class ComposerTextLens(Lens):
    """The same lens on newline-joined strings (Boomerang's actual shape)."""

    def __init__(self, max_lines: int = 6) -> None:
        self.name = "composers-text"
        self._inner = ComposerLinesLens(max_lines)
        lines_source = self._inner.source_space
        lines_view = self._inner.view_space

        def _text_member(lines_space: ModelSpace):
            def _member(value) -> bool:
                if not isinstance(value, str):
                    return False
                return lines_space.contains(_split(value))
            return _member

        self.source_space = PredicateSpace(
            _text_member(lines_source),
            lambda rng: _join(lines_source.sample(rng)),
            name="composer source text")
        self.view_space = PredicateSpace(
            _text_member(lines_view),
            lambda rng: _join(lines_view.sample(rng)),
            name="composer view text")

    def get(self, source: str) -> str:
        return _join(self._inner.get(_split(source)))

    def put(self, view: str, source: str) -> str:
        return _join(self._inner.put(_split(view), _split(source)))

    def create(self, view: str) -> str:
        return _join(self._inner.create(_split(view)))


def _split(text: str) -> tuple:
    if not text:
        return ()
    return tuple(text.split("\n"))


def _join(lines: tuple) -> str:
    return "\n".join(lines)
