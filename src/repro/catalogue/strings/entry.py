"""The COMPOSERS-STRING repository entry: the asymmetric original.

Curates the Boomerang string-lens form of Composers separately from the
symmetric COMPOSERS entry, because the paper's References distinguish
them ("Original (asymmetric) variant was in [Boomerang]") and the two
have different property profiles — exactly the version-vs-variant
distinction §5.2 insists on.
"""

from __future__ import annotations

from repro.repository.entry import (
    Artefact,
    ExampleEntry,
    ModelDescription,
    PropertyClaim,
    Reference,
    RestorationSpec,
    Variant,
)
from repro.repository.template import EntryType
from repro.repository.versioning import Version

__all__ = ["composers_string_entry"]


def composers_string_entry() -> ExampleEntry:
    """The COMPOSERS-STRING entry (version 0.1, unreviewed, PRECISE)."""
    return ExampleEntry(
        title="COMPOSERS-STRING",
        version=Version(0, 1),
        types=(EntryType.PRECISE,),
        overview=(
            "The original asymmetric Composers: a string lens between a "
            "text of Name, Dates, Nationality lines and its view "
            "without dates. Demonstrates resourceful (alignment-aware) "
            "put."),
        models=(
            ModelDescription(
                "Source text",
                "A text file, one composer per line: name, dates and "
                "nationality separated by commas."),
            ModelDescription(
                "View text",
                "The same lines with the dates column removed."),
        ),
        consistency=(
            "The view is exactly the source with the dates field "
            "deleted from every line, order preserved."),
        restoration=RestorationSpec(
            forward=(
                "Recompute the view by deleting the dates field from "
                "every source line."),
            backward=(
                "Align view lines with source lines by (name, "
                "nationality) key, first-come first-served; aligned "
                "lines keep their source dates, unaligned view lines "
                "become new composers with ????-???? dates, and "
                "unclaimed source lines are deleted.")),
        properties=(
            PropertyClaim("correct", holds=True),
            PropertyClaim("hippocratic", holds=True),
            PropertyClaim("undoable", holds=False,
                          note="PutPut fails: resourceful lenses are "
                           "not very well behaved"),
        ),
        variants=(
            Variant(
                "Alignment policy",
                "By key first-come first-served (this artefact), by "
                "position (the naive lens, which loses dates on "
                "reordering), or by minimal edit distance (chunked "
                "lenses with speculative alignment)."),
            Variant(
                "Separator robustness",
                "Whether put must preserve the exact whitespace of "
                "untouched lines; this artefact canonicalises to a "
                "single space after each comma."),
        ),
        discussion=(
            "The string form is where the Composers example began; its "
            "put alignment question is the direct ancestor of the "
            "symmetric entry's variant about modifying versus creating "
            "composers. Comparing this lens's induced bx against the "
            "symmetric COMPOSERS bx (they agree on deletion and "
            "addition, differ on ordering guarantees) is experiment "
            "E13's cross-formalism exercise."),
        references=(
            Reference(
                "Aaron Bohannon, J. Nathan Foster, Benjamin C. Pierce, "
                "Alexandre Pilkiewicz, and Alan Schmitt. \"Boomerang: "
                "Resourceful Lenses for String Data\". POPL 2008.",
                doi="10.1145/1328438.1328487"),
        ),
        authors=("James Cheney", "Jeremy Gibbons"),
        reviewers=(),
        comments=(),
        artefacts=(
            Artefact("lines lens", "code",
                     "repro.catalogue.strings.lens.ComposerLinesLens"),
            Artefact("text lens", "code",
                     "repro.catalogue.strings.lens.ComposerTextLens"),
        ),
    )
