"""The built-in catalogue: every shipped example, and store population.

:func:`builtin_catalogue` returns the full list of
:class:`~repro.catalogue.base.CatalogueExample` bundles;
:func:`populate_store` loads their entries into a repository store —
the programmatic equivalent of the authors seeding the wiki.
"""

from __future__ import annotations

from repro.catalogue.base import CatalogueExample
from repro.catalogue.composers import (
    CanonicalOrderComposersBx,
    KeyOnNameComposersBx,
    RememberingComposersLens,
    composers_bx,
    composers_entry,
)
from repro.catalogue.composers.variants import composers_bx_with_position
from repro.catalogue.dbview import dbview_entry
from repro.catalogue.misc import (
    composers_benchmark_entry,
    dirtree_bx,
    dirtree_entry,
    model_code_sketch_entry,
    roman_bx,
    roman_entry,
)
from repro.catalogue.strings import (
    ComposerLinesLens,
    ComposerTextLens,
    composers_string_entry,
)
from repro.catalogue.uml2rdbms import uml2rdbms_bx, uml2rdbms_entry
from repro.repository.store import RepositoryStore

__all__ = ["builtin_catalogue", "catalogue_example", "populate_store"]


def builtin_catalogue() -> list[CatalogueExample]:
    """Every example shipped with the library, flagship first."""
    return [
        CatalogueExample(
            name="composers",
            entry_factory=composers_entry,
            bx_factory=composers_bx,
            extra_artefacts={
                "insert-front":
                    lambda: composers_bx_with_position("front"),
                "insert-alphabetic":
                    lambda: composers_bx_with_position("alphabetic"),
                "canonical-order": CanonicalOrderComposersBx,
                "key-on-name": KeyOnNameComposersBx,
                "remembering-lens": RememberingComposersLens,
            }),
        CatalogueExample(
            name="composers-string",
            entry_factory=composers_string_entry,
            bx_factory=lambda: ComposerLinesLens().to_bx(),
            extra_artefacts={
                "lines-lens": ComposerLinesLens,
                "text-lens": ComposerTextLens,
            }),
        CatalogueExample(
            name="uml2rdbms",
            entry_factory=uml2rdbms_entry,
            bx_factory=uml2rdbms_bx,
            extra_artefacts={
                "with-inheritance": lambda: uml2rdbms_bx(True),
            }),
        CatalogueExample(
            name="dbview",
            entry_factory=dbview_entry,
            bx_factory=None,  # lens family; see extra artefacts in tests
            extra_artefacts={}),
        CatalogueExample(
            name="roman-numerals",
            entry_factory=roman_entry,
            bx_factory=roman_bx),
        CatalogueExample(
            name="dirtree",
            entry_factory=dirtree_entry,
            bx_factory=dirtree_bx),
        CatalogueExample(
            name="model-code-sync",
            entry_factory=model_code_sketch_entry,
            bx_factory=None),
        CatalogueExample(
            name="composers-bench",
            entry_factory=composers_benchmark_entry,
            bx_factory=None),
    ]


def catalogue_example(name: str) -> CatalogueExample:
    """Look up one built-in example by name."""
    for example in builtin_catalogue():
        if example.name == name:
            return example
    known = ", ".join(example.name for example in builtin_catalogue())
    raise KeyError(f"no catalogue example {name!r}; known: {known}")


def populate_store(store: RepositoryStore) -> int:
    """Add every built-in entry to ``store``; returns the count added.

    Entries already present (by identifier) are skipped, so population
    is idempotent.
    """
    added = 0
    for example in builtin_catalogue():
        entry = example.entry()
        if not store.has(entry.identifier):
            store.add(entry)
            added += 1
    return added
