"""Model spaces for the COMPOSERS example (§4 of the paper).

Two classes of models:

* ``M`` — "a set of (unrelated) objects of class Composer, representing
  musical composers, each with a name, dates and nationality";
* ``N`` — "an ordered list of pairs, each comprising a name and a
  nationality".

Composers are :class:`~repro.models.records.Record` values of
:data:`COMPOSER_TYPE`; an ``M`` model is a frozenset of them
(:func:`composer_set_space`), an ``N`` model a tuple of ``(name,
nationality)`` pairs (:func:`pair_list_space`).

Dates are a single string (e.g. ``"1913-1976"``); the paper's placeholder
for composers created by backward restoration is ``"????-????"``
(:data:`UNKNOWN_DATES`).  Name/nationality pools are deliberately small so
random sampling produces plenty of matching-name collisions — the
interesting cases for consistency restoration.
"""

from __future__ import annotations

import re

from repro.models.lists import OrderedListSpace
from repro.models.records import FieldDef, Record, RecordSetSpace, RecordType
from repro.models.space import (
    FiniteSpace,
    ModelSpace,
    PredicateSpace,
    ProductSpace,
)

__all__ = [
    "UNKNOWN_DATES",
    "NAMES",
    "NATIONALITIES",
    "DATES",
    "COMPOSER_TYPE",
    "make_composer",
    "raw_composer",
    "composer_set_space",
    "pair_space",
    "pair_list_space",
    "pair_of",
    "pairs_of_model",
]

#: "The dates of any newly added composer should be ????-????."
UNKNOWN_DATES = "????-????"

#: Name pool; includes Britten for the paper's Britten/British/English
#: variant discussion.
NAMES: tuple[str, ...] = (
    "Britten", "Elgar", "Tippett", "Purcell", "Holst", "Byrd",
)

#: Nationality pool; "British" and "English" both present, per the
#: variants discussion.
NATIONALITIES: tuple[str, ...] = ("British", "English", "Scottish", "Welsh")

#: Date pool for sampled composers (plus the unknown placeholder).
DATES: tuple[str, ...] = (
    "1913-1976", "1857-1934", "1905-1998", "1659-1695", "1874-1934",
    "1543-1623", UNKNOWN_DATES,
)

_NAME_SPACE = FiniteSpace(NAMES, name="composer names")
_NATIONALITY_SPACE = FiniteSpace(NATIONALITIES, name="nationalities")

_DATES_RE = re.compile(r"^(\d{4}|\?{4})-(\d{4}|\?{4})$")


def _is_dates(value: object) -> bool:
    return isinstance(value, str) and bool(_DATES_RE.match(value))


#: Membership is any YYYY-YYYY (or ????-????) string — date policies and
#: benchmark models may fall outside the small sampling pool; sampling
#: draws from :data:`DATES`.
_DATES_SPACE = PredicateSpace(
    _is_dates,
    lambda rng: rng.choice(DATES),
    name="dates",
    explain=lambda value: "expected 'YYYY-YYYY' or '????-????'")

#: The Composer class of the paper's M metamodel.
COMPOSER_TYPE = RecordType("Composer", [
    FieldDef("name", _NAME_SPACE),
    FieldDef("dates", _DATES_SPACE),
    FieldDef("nationality", _NATIONALITY_SPACE),
])


def make_composer(name: str, dates: str, nationality: str) -> Record:
    """Construct a Composer record, validating against the metamodel."""
    return COMPOSER_TYPE.make(name=name, dates=dates,
                              nationality=nationality)


def raw_composer(name: str, dates: str, nationality: str) -> Record:
    """Construct a Composer record *without* pool validation.

    Restoration functions use this so the bx scales beyond the small
    sampling pools (benchmark models have synthetic names); membership
    checking still happens at the law-harness boundary via
    :class:`~repro.core.bx.SpaceCheckedBx`.
    """
    return Record(COMPOSER_TYPE, {"name": name, "dates": dates,
                                  "nationality": nationality})


def composer_set_space(min_size: int = 0, max_size: int = 6,
                       name: str = "M (sets of Composers)"
                       ) -> RecordSetSpace:
    """The space M: finite sets of Composer objects."""
    return COMPOSER_TYPE.set_space(min_size, max_size, name=name)


def pair_space() -> ModelSpace:
    """The space of single (name, nationality) pairs."""
    return ProductSpace(_NAME_SPACE, _NATIONALITY_SPACE,
                        name="(name, nationality)")


def pair_list_space(min_length: int = 0, max_length: int = 8,
                    name: str = "N (lists of name/nationality pairs)"
                    ) -> OrderedListSpace:
    """The space N: ordered lists of (name, nationality) pairs.

    Duplicates are allowed — the paper's forward restoration explicitly
    handles entries that occur more than once ("no duplicates should be
    added", implying existing duplicates may persist).
    """
    return OrderedListSpace(pair_space(), min_length, max_length, name=name)


def pair_of(composer: Record) -> tuple[str, str]:
    """The (name, nationality) pair derivable from a composer."""
    return (composer.name, composer.nationality)


def pairs_of_model(model: frozenset) -> set[tuple[str, str]]:
    """All pairs derivable from an M model."""
    return {pair_of(composer) for composer in model}
