"""The COMPOSERS variation points (§4 "Variants"), implemented.

The paper's Variants field poses three questions a bx programmer must
still resolve, plus the Discussion's undoability point.  Each becomes an
executable variant here, so the behavioural consequences the paper argues
informally are machine-checkable (experiment E9):

1. *Mismatch handling* — "Do we ever modify the name and/or nationality
   of an existing composer, or do we create a new composer in the event
   of any mismatch?"  :class:`KeyOnNameComposersBx` takes name as the key
   (the paper: "if name is a key in the models then there is no choice")
   and **modifies** the nationality in place, preserving dates and list
   position; the base bx creates/deletes instead.

2. *Insert position* — "Where in the list n is a new composer added?"
   :func:`composers_bx_with_position` offers ``"end"`` (base),
   ``"front"``, and ``"alphabetic"`` (each new entry slots into an
   alphabetically determined position — still hippocratic, because
   nothing moves when nothing is added).
   :class:`CanonicalOrderComposersBx` is the tempting-but-wrong fourth
   choice the paper warns about: it keeps the whole list sorted and
   therefore "fail[s] hippocraticness if we choose to reorder when
   nothing at all need be changed" — the property check refutes
   hippocraticness for it.

3. *Dates for new composers* — "What dates are used for a newly added
   composer in m?"  :func:`composers_bx_with_date_policy` parameterises
   the base bx over a :class:`DatePolicy`: the paper's ``????-????``
   placeholder, a fixed epoch, or copy-from-namesake.

4. *Undoability via a complement* — the Discussion notes state-based
   Composers cannot restore deleted dates.
   :class:`RememberingComposersLens` is the symmetric-lens rendering
   whose complement remembers dates of deleted composers, making the
   delete/re-add scenario undo cleanly (experiment E5's counterpoint).
"""

from __future__ import annotations

import random
from typing import Callable, Iterable

from repro.core.bx import Bx
from repro.core.symmetric import SymmetricLens
from repro.models.lists import (
    append_sorted_block,
    insert_sorted,
    stable_delete,
)
from repro.models.records import Record
from repro.models.space import ModelSpace, PredicateSpace
from repro.catalogue.composers.bx import ComposersBx
from repro.catalogue.composers.models import (
    UNKNOWN_DATES,
    composer_set_space,
    raw_composer,
    pair_list_space,
    pair_of,
    pairs_of_model,
)

__all__ = [
    "DatePolicy",
    "unknown_dates_policy",
    "epoch_dates_policy",
    "copy_namesake_dates_policy",
    "composers_bx_with_date_policy",
    "composers_bx_with_position",
    "PositionComposersBx",
    "CanonicalOrderComposersBx",
    "KeyOnNameComposersBx",
    "RememberingComposersLens",
]

# ----------------------------------------------------------------------
# Variant 3: date policies.
# ----------------------------------------------------------------------

#: A date policy decides the dates of a composer created by backward
#: restoration, given its (name, nationality) pair and the old left model.
DatePolicy = Callable[[tuple[str, str], frozenset], str]


def unknown_dates_policy(pair: tuple[str, str],
                         old_left: frozenset) -> str:
    """The paper's base choice: ????-????."""
    return UNKNOWN_DATES


def epoch_dates_policy(pair: tuple[str, str], old_left: frozenset) -> str:
    """A fixed sentinel epoch — distinguishable from 'unknown'."""
    return "0000-0000"


def copy_namesake_dates_policy(pair: tuple[str, str],
                               old_left: frozenset) -> str:
    """Copy dates from an existing composer with the same name, if any.

    Deterministic: the alphabetically least dates among namesakes win.
    Falls back to ????-???? when the name is new.
    """
    name, _nationality = pair
    candidates = sorted(composer.dates for composer in old_left
                        if composer.name == name)
    return candidates[0] if candidates else UNKNOWN_DATES


class _DatePolicyComposersBx(ComposersBx):
    """Base bx with the new-composer date choice factored out."""

    def __init__(self, policy: DatePolicy, policy_name: str,
                 max_model_size: int = 6) -> None:
        super().__init__(max_model_size=max_model_size)
        self.name = f"composers/dates={policy_name}"
        self._policy = policy

    def bwd(self, left: frozenset, right: tuple) -> frozenset:
        authoritative = set(right)
        kept = {composer for composer in left
                if pair_of(composer) in authoritative}
        derivable = {pair_of(composer) for composer in kept}
        added = {raw_composer(name, self._policy((name, nationality), left),
                               nationality)
                 for name, nationality in authoritative - derivable}
        return frozenset(kept | added)


def composers_bx_with_date_policy(policy: DatePolicy, policy_name: str,
                                  max_model_size: int = 6) -> ComposersBx:
    """The base bx with a chosen date policy for new composers."""
    return _DatePolicyComposersBx(policy, policy_name, max_model_size)


# ----------------------------------------------------------------------
# Variant 2: insert position.
# ----------------------------------------------------------------------

class PositionComposersBx(ComposersBx):
    """Base bx with the insert-position choice factored out.

    ``position`` is one of ``"end"`` (base behaviour), ``"front"``, or
    ``"alphabetic"``.  All three are correct and hippocratic; they differ
    only in where additions land — the point the paper's second variant
    bullet makes.
    """

    POSITIONS = ("end", "front", "alphabetic")

    def __init__(self, position: str = "end",
                 max_model_size: int = 6) -> None:
        if position not in self.POSITIONS:
            raise ValueError(
                f"position must be one of {self.POSITIONS}, got "
                f"{position!r}")
        super().__init__(max_model_size=max_model_size)
        self.name = f"composers/insert={position}"
        self.position = position

    def fwd(self, left: frozenset, right: tuple) -> tuple:
        authoritative = pairs_of_model(left)
        kept = stable_delete(right, lambda pair: pair in authoritative)
        missing = sorted(authoritative - set(kept))
        if self.position == "end":
            return append_sorted_block(kept, missing)
        if self.position == "front":
            return tuple(missing) + kept
        result = kept
        for pair in missing:
            result = insert_sorted(result, pair)
        return result


def composers_bx_with_position(position: str,
                               max_model_size: int = 6) -> ComposersBx:
    """The base bx with a chosen insert position for additions."""
    return PositionComposersBx(position, max_model_size)


class CanonicalOrderComposersBx(ComposersBx):
    """The reordering variant the paper warns against.

    Forward restoration always returns the *fully sorted* consistent
    list.  Correct — but not hippocratic: handed an already-consistent
    pair whose list is in user order, it reorders anyway ("we fail
    hippocraticness if we choose to reorder when nothing at all need be
    changed").  Kept in the catalogue as a deliberate negative example.
    """

    def __init__(self, max_model_size: int = 6) -> None:
        super().__init__(max_model_size=max_model_size)
        self.name = "composers/canonical-order"

    def fwd(self, left: frozenset, right: tuple) -> tuple:
        return tuple(sorted(pairs_of_model(left)))


# ----------------------------------------------------------------------
# Variant 1: name as key — modify instead of create.
# ----------------------------------------------------------------------

def _unique_name_set_space(max_size: int = 5) -> ModelSpace:
    """Sets of composers with distinct names (name is a key)."""
    base = composer_set_space(max_size=max_size)

    def _is_member(value) -> bool:
        if not base.contains(value):
            return False
        names = [composer.name for composer in value]
        return len(set(names)) == len(names)

    def _sample(rng: random.Random):
        raw = base.sample(rng)
        by_name: dict[str, Record] = {}
        for composer in sorted(raw, key=lambda c: c.as_tuple()):
            by_name.setdefault(composer.name, composer)
        return frozenset(by_name.values())

    return PredicateSpace(_is_member, _sample,
                          name="M (name-keyed sets of Composers)")


def _unique_name_list_space(max_length: int = 5) -> ModelSpace:
    """Pair lists with distinct names (name is a key)."""
    base = pair_list_space(max_length=max_length)

    def _is_member(value) -> bool:
        if not base.contains(value):
            return False
        names = [name for name, _nationality in value]
        return len(set(names)) == len(names)

    def _sample(rng: random.Random):
        raw = base.sample(rng)
        seen: set[str] = set()
        result = []
        for name, nationality in raw:
            if name not in seen:
                seen.add(name)
                result.append((name, nationality))
        return tuple(result)

    return PredicateSpace(_is_member, _sample,
                          name="N (name-keyed pair lists)")


class KeyOnNameComposersBx(Bx):
    """Name-keyed Composers: mismatches *modify*, never duplicate.

    Both spaces are restricted so name is a key ("if name is a key in the
    models then there is no choice").  Consistency is unchanged — same
    derived pair set — but restoration matches items by *name*:

    * a name present on both sides with differing nationality has its
      nationality updated in place (fwd keeps the entry's list position;
      bwd keeps the composer's dates — the Britten, British/English case);
    * names only on the authoritative side are added (fwd: appended
      alphabetically; bwd: with ????-???? dates);
    * names only on the stale side are deleted.

    Correct and hippocratic; still not undoable (dates of a deleted
    composer stay unrecoverable).  Notably **not** simply matching, even
    with name as the key: simple matching requires matched items to
    survive *unchanged*, and this variant's whole point is to repair
    matched items in place — the property check exhibits the difference
    from the base bx (experiment E9).
    """

    def __init__(self, max_size: int = 5) -> None:
        self.name = "composers/key=name"
        self.left_space = _unique_name_set_space(max_size)
        self.right_space = _unique_name_list_space(max_size)

    def consistent(self, left: frozenset, right: tuple) -> bool:
        return pairs_of_model(left) == set(right)

    def fwd(self, left: frozenset, right: tuple) -> tuple:
        by_name = {composer.name: composer for composer in left}
        result = []
        for name, _nationality in right:
            composer = by_name.get(name)
            if composer is None:
                continue  # name gone: delete the entry
            # Name survives: keep position, update nationality on mismatch.
            result.append((name, composer.nationality))
        present = {name for name, _nationality in result}
        additions = sorted(pair_of(composer) for composer in left
                           if composer.name not in present)
        return tuple(result) + tuple(additions)

    def bwd(self, left: frozenset, right: tuple) -> frozenset:
        wanted = dict(right)  # name -> nationality (name is a key)
        result = set()
        for composer in left:
            nationality = wanted.pop(composer.name, None)
            if nationality is None:
                continue  # name gone: delete the composer
            if composer.nationality == nationality:
                result.add(composer)
            else:
                # The Britten case: change nationality, keep the dates.
                result.add(composer.with_field("nationality", nationality))
        for name, nationality in wanted.items():
            result.add(raw_composer(name, UNKNOWN_DATES, nationality))
        return frozenset(result)

    def default_left(self) -> frozenset:
        return frozenset()

    def default_right(self) -> tuple:
        return ()

    # Matching is by name for this variant.
    def items_left(self, left: frozenset) -> Iterable[Record]:
        return left

    def items_right(self, right: tuple) -> Iterable[tuple[str, str]]:
        return right

    def key_left(self, item: Record) -> str:
        return item.name

    def key_right(self, item: tuple[str, str]) -> str:
        return item[0]


# ----------------------------------------------------------------------
# The Discussion's counterpoint: remembering dates in a complement.
# ----------------------------------------------------------------------

def _dates_map(left: frozenset) -> tuple:
    """Dates per pair, as a sorted hashable mapping.

    Each (name, nationality) pair maps to the sorted tuple of dates of
    the composers deriving it (several composers may share a pair).
    """
    grouped: dict[tuple[str, str], list[str]] = {}
    for composer in left:
        grouped.setdefault(pair_of(composer), []).append(composer.dates)
    return tuple(sorted((pair, tuple(sorted(dates)))
                        for pair, dates in grouped.items()))


def _merge_memory(old: tuple, current: tuple) -> tuple:
    """Current models win; otherwise old memory is retained."""
    merged = dict(old)
    merged.update(dict(current))
    return tuple(sorted(merged.items()))


class RememberingComposersLens(SymmetricLens):
    """Composers as a symmetric lens whose complement remembers dates.

    The complement is ``(pair_order, memory)``: the last-synchronised
    entry order, plus a mapping from (name, nationality) pairs to the
    dates of the composers that once derived them.  Deleting a composer's
    entry and re-adding it therefore restores the original dates — the
    Discussion's "extra information besides the models" made concrete.
    Satisfies PutRL/PutLR (checked in tests).
    """

    def __init__(self, max_size: int = 6) -> None:
        self.name = "composers/remembering"
        self.left_space = composer_set_space(max_size=max_size)
        self.right_space = pair_list_space(max_length=max_size + 2)

    def missing(self) -> tuple:
        return ((), ())

    def putr(self, left: frozenset, complement: tuple) -> tuple:
        pair_order, memory = complement
        authoritative = pairs_of_model(left)
        kept = stable_delete(pair_order,
                             lambda pair: pair in authoritative)
        right = append_sorted_block(kept, authoritative - set(kept))
        new_memory = _merge_memory(memory, _dates_map(left))
        return right, (right, new_memory)

    def putl(self, right: tuple, complement: tuple) -> tuple:
        _pair_order, memory = complement
        remembered = dict(memory)
        composers = set()
        for pair in set(right):
            name, nationality = pair
            for dates in remembered.get(pair, (UNKNOWN_DATES,)):
                composers.add(raw_composer(name, dates, nationality))
        left = frozenset(composers)
        new_memory = _merge_memory(memory, _dates_map(left))
        return left, (right, new_memory)
