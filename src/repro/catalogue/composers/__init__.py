"""COMPOSERS: the paper's §4 worked example, in full.

The base state-based bx (:mod:`repro.catalogue.composers.bx`), its model
spaces (:mod:`repro.catalogue.composers.models`), the executable variants
(:mod:`repro.catalogue.composers.variants`), and the repository entry
transcribing the paper's text (:mod:`repro.catalogue.composers.entry`).
"""

from repro.catalogue.composers.bx import ComposersBx, composers_bx
from repro.catalogue.composers.entry import composers_entry
from repro.catalogue.composers.models import (
    COMPOSER_TYPE,
    UNKNOWN_DATES,
    composer_set_space,
    make_composer,
    pair_list_space,
    pair_of,
    pairs_of_model,
)
from repro.catalogue.composers.variants import (
    CanonicalOrderComposersBx,
    KeyOnNameComposersBx,
    PositionComposersBx,
    RememberingComposersLens,
    composers_bx_with_date_policy,
    composers_bx_with_position,
    copy_namesake_dates_policy,
    epoch_dates_policy,
    unknown_dates_policy,
)

__all__ = [
    "ComposersBx", "composers_bx", "composers_entry",
    "COMPOSER_TYPE", "UNKNOWN_DATES", "make_composer",
    "composer_set_space", "pair_list_space", "pair_of", "pairs_of_model",
    "PositionComposersBx", "CanonicalOrderComposersBx",
    "KeyOnNameComposersBx", "RememberingComposersLens",
    "composers_bx_with_position", "composers_bx_with_date_policy",
    "unknown_dates_policy", "epoch_dates_policy",
    "copy_namesake_dates_policy",
]
