"""The COMPOSERS bx, exactly as specified in §4 of the paper.

Consistency
-----------
"Models m and n are consistent if they embody the same set of (name,
nationality) pairs": every composer in ``m`` has a matching entry in ``n``
and vice versa — i.e. the two derived pair *sets* are equal.

Forward restoration (``fwd(m, n)``)
-----------------------------------
* delete from ``n`` any entry with no matching composer in ``m``;
* append at the end of ``n`` one entry for each pair derivable from ``m``
  but not already present, the appended block "in alphabetical order by
  name, and within name, by nationality; no duplicates should be added
  (even if there are several composers in m with the same name and
  nationality)".

Backward restoration (``bwd(m, n)``)
------------------------------------
* delete from ``m`` any composer with no matching entry in ``n``;
* add a new composer for each pair occurring in ``n`` but not derivable
  from ``m``; "the dates of any newly added composer should be
  ????-????".

Properties (§4, verified by experiments E3–E6): Correct, Hippocratic,
**not** Undoable, Simply matching.  The class implements the
:class:`~repro.core.properties.MatchingKeys` protocol with key
``(name, nationality)``, which is what the simply-matching check uses.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.bx import Bx
from repro.models.lists import append_sorted_block, stable_delete
from repro.models.records import Record
from repro.catalogue.composers.models import (
    UNKNOWN_DATES,
    composer_set_space,
    raw_composer,
    pair_list_space,
    pair_of,
    pairs_of_model,
)

__all__ = ["ComposersBx", "composers_bx"]


class ComposersBx(Bx):
    """The base (symmetric, state-based) Composers bx of §4."""

    def __init__(self, max_model_size: int = 6) -> None:
        self.name = "composers"
        self.left_space = composer_set_space(max_size=max_model_size)
        self.right_space = pair_list_space(max_length=max_model_size + 2)

    # ------------------------------------------------------------------
    # Consistency.
    # ------------------------------------------------------------------

    def consistent(self, left: frozenset, right: tuple) -> bool:
        return pairs_of_model(left) == set(right)

    # ------------------------------------------------------------------
    # Restoration.
    # ------------------------------------------------------------------

    def fwd(self, left: frozenset, right: tuple) -> tuple:
        authoritative = pairs_of_model(left)
        kept = stable_delete(right, lambda pair: pair in authoritative)
        missing = authoritative - set(kept)
        # Alphabetical by name, then nationality; a pair sorts exactly so.
        return append_sorted_block(kept, missing)

    def bwd(self, left: frozenset, right: tuple) -> frozenset:
        authoritative = set(right)
        kept = {composer for composer in left
                if pair_of(composer) in authoritative}
        derivable = {pair_of(composer) for composer in kept}
        added = {raw_composer(name, UNKNOWN_DATES, nationality)
                 for name, nationality in authoritative - derivable}
        return frozenset(kept | added)

    # ------------------------------------------------------------------
    # Defaults (synchronising from scratch).
    # ------------------------------------------------------------------

    def default_left(self) -> frozenset:
        return frozenset()

    def default_right(self) -> tuple:
        return ()

    # ------------------------------------------------------------------
    # MatchingKeys protocol: restoration matches on (name, nationality).
    # ------------------------------------------------------------------

    def items_left(self, left: frozenset) -> Iterable[Record]:
        return left

    def items_right(self, right: tuple) -> Iterable[tuple[str, str]]:
        return right

    def key_left(self, item: Record) -> tuple[str, str]:
        return pair_of(item)

    def key_right(self, item: tuple[str, str]) -> tuple[str, str]:
        return item


def composers_bx(max_model_size: int = 6) -> ComposersBx:
    """Factory for the base Composers bx (stable public name)."""
    return ComposersBx(max_model_size=max_model_size)
