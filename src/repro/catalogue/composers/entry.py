"""The COMPOSERS repository entry — the paper's §4 instance, as data.

This transcribes the paper's worked example into an
:class:`~repro.repository.entry.ExampleEntry`, field for field: version
0.1, type PRECISE, the two models, the consistency relation, forward and
backward restoration, the four property claims (Correct, Hippocratic,
**Not** undoable, Simply matching), the three variant questions, the
undoability discussion, the two references (Stevens GTTSE 2008; the
Boomerang POPL 2008 original), authors, and the paper's literal "None
yet" reviewer/comment state — here, empty tuples, which render as "None
yet" (experiment E2 compares the rendering against the paper).

Artefact pointers link the entry to this library's executable
implementations, exactly the "auxiliary materials" role §1 proposes.
"""

from __future__ import annotations

from repro.repository.entry import (
    Artefact,
    ExampleEntry,
    ModelDescription,
    PropertyClaim,
    Reference,
    RestorationSpec,
    Variant,
)
from repro.repository.template import EntryType
from repro.repository.versioning import Version

__all__ = ["composers_entry"]


def composers_entry() -> ExampleEntry:
    """The §4 COMPOSERS entry (version 0.1, unreviewed, PRECISE)."""
    return ExampleEntry(
        title="COMPOSERS",
        version=Version(0, 1),
        types=(EntryType.PRECISE,),
        overview=(
            "This example stands for many cases where two slightly, but "
            "significantly, different representations of the same real "
            "world data are needed. The definition of consistency is "
            "easy, but there is a choice of ways to restore consistency."),
        models=(
            ModelDescription(
                "M",
                "A model m in M comprises a set of (unrelated) objects "
                "of class Composer, representing musical composers, each "
                "with a name, dates and nationality.",
                metamodel=("class Composer:\n"
                           "    name: string\n"
                           "    dates: string\n"
                           "    nationality: string")),
            ModelDescription(
                "N",
                "A model n in N is an ordered list of pairs, each "
                "comprising a name and a nationality.",
                metamodel="N = list of (name: string, nationality: string)"),
        ),
        consistency=(
            "Models m and n are consistent if they embody the same set "
            "of (name, nationality) pairs. That is, both: (i) for every "
            "composer in m, there is at least one entry in the list n "
            "with the same name and nationality; and (ii) for every "
            "entry in n, there is at least one element of m with the "
            "same name and nationality (there may be many such, each "
            "with distinct dates)."),
        restoration=RestorationSpec(
            forward=(
                "Produce a modified version of n by: deleting from n any "
                "entry for which there is no element of m with the same "
                "name and nationality; adding at the end of n an entry "
                "comprising each (name, nationality) pair derivable from "
                "an element of m but not already occurring in n. Such "
                "additional entries should be in alphabetical order by "
                "name, and within name, by nationality; no duplicates "
                "should be added (even if there are several composers in "
                "m with the same name and nationality)."),
            backward=(
                "Produce a modified version of m by: deleting from m any "
                "composer for which there is no entry in n with the same "
                "name and nationality; adding to m a new composer for "
                "each (name, nationality) pair that occurs in n but is "
                "not derivable from an element already occurring in m. "
                "The dates of any newly added composer should be "
                "????-????.")),
        properties=(
            PropertyClaim("correct", holds=True),
            PropertyClaim("hippocratic", holds=True),
            PropertyClaim("undoable", holds=False),
            PropertyClaim("simply matching", holds=True),
        ),
        variants=(
            Variant(
                "Modify or create on mismatch",
                "Do we ever modify the name and/or nationality of an "
                "existing composer, or do we create a new composer in "
                "the event of any mismatch? E.g. if one side has "
                "Britten, British and the other has Britten, English, "
                "does consistency restoration involve changing one of "
                "the nationalities, or adding a second Britten? Of "
                "course, if name is a key in the models then there is "
                "no choice."),
            Variant(
                "Insert position in n",
                "Where in the list n is a new composer added? Choices "
                "include: at the beginning; at the end. We might "
                "consider an alphabetically determined position, but "
                "note that the user is not constrained to add composers "
                "in alphabetical order, and we fail hippocraticness if "
                "we choose to reorder when nothing at all need be "
                "changed. It therefore seems unlikely that changing the "
                "order of user-added composers will be wanted."),
            Variant(
                "Dates for new composers",
                "What dates are used for a newly added composer in m?"),
        ),
        discussion=(
            "This has been used as an example of why undoability is too "
            "strong. Consider a composer currently present (just once) "
            "in both of a consistent pair of models. If we delete it "
            "from n, and enforce consistency on m, the representation "
            "of the composer in m, including this composer's dates, is "
            "lost. If we now restore it to n and re-enforce consistency "
            "on m, then the absence of any extra information besides "
            "the models means that the dates cannot be restored, so m "
            "cannot return to exactly its original state."),
        references=(
            Reference(
                "Perdita Stevens, \"A Landscape of Bidirectional Model "
                "Transformations\", in Generative and Transformational "
                "Techniques in Software Engineering II, 2008, Springer "
                "LNCS 5235, pp408-424.",
                doi="10.1007/978-3-540-75209-7_1",
                note="this version"),
            Reference(
                "Aaron Bohannon, J. Nathan Foster, Benjamin C. Pierce, "
                "Alexandre Pilkiewicz, and Alan Schmitt. \"Boomerang: "
                "Resourceful Lenses for String Data\". In ACM "
                "SIGPLAN-SIGACT Symposium on Principles of Programming "
                "Languages (POPL), San Francisco, California, January "
                "2008.",
                doi="10.1145/1328438.1328487",
                note="original asymmetric variant"),
        ),
        authors=("Perdita Stevens", "James McKinna", "James Cheney"),
        reviewers=(),
        comments=(),
        artefacts=(
            Artefact("base bx", "code",
                     "repro.catalogue.composers.bx.composers_bx",
                     "the state-based bx exactly as specified"),
            Artefact("variants", "code",
                     "repro.catalogue.composers.variants",
                     "executable renderings of each variation point"),
            Artefact("remembering lens", "code",
                     "repro.catalogue.composers.variants."
                     "RememberingComposersLens",
                     "symmetric lens whose complement restores deleted "
                     "dates"),
        ),
    )
