"""Relational view-update lenses: projection, selection, join.

The repository's database heritage (Boomerang's authors, the Buneman
curated-database lineage the paper cites) is represented by the classic
*relational lenses* trio.  Each is an asymmetric lens whose source is a
relation (or database) and whose view is a derived relation; ``put``
translates a view update back to the source — the view-update problem
with lens laws as the correctness contract.

* :class:`ProjectionLens` — view = πₚ(R) where the key ⊆ P.  ``put``
  rejoins hidden columns by key; brand-new keys take supplied defaults.
* :class:`SelectionLens` — view = σ_pred(R).  Hidden (unselected) rows
  are preserved; putting back a row the predicate rejects raises — the
  classic view-update anomaly surfaced as an error instead of a silent
  law break.
* :class:`JoinLens` — view = R ⋈ S (one shared key column).  ``put``
  splits view rows across R and S; dangling rows (joinless) are
  preserved unless the view claims their key.

Laws: all three satisfy GetPut and PutGet on their spaces (checked in
``tests/catalogue/test_dbview.py``); none satisfies PutPut, as is
standard for non-oblivious lenses.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.errors import TransformationError
from repro.core.lens import Lens
from repro.models.relational import (
    Relation,
    RelationSchema,
    RelationSpace,
    natural_join,
    project,
    select,
)
from repro.models.space import PredicateSpace

__all__ = ["ProjectionLens", "SelectionLens", "JoinLens"]


class ProjectionLens(Lens):
    """π: project a relation onto columns that include its key.

    Hidden (projected-away) columns are restored by key on ``put``; rows
    whose key is new take the ``defaults`` mapping for hidden columns.
    """

    def __init__(self, schema: RelationSchema, view_columns: Sequence[str],
                 defaults: dict[str, Any], max_rows: int = 8) -> None:
        if schema.key is None:
            raise TransformationError(
                "projection lens needs a declared key")
        missing_key = [k for k in schema.key if k not in view_columns]
        if missing_key:
            raise TransformationError(
                f"view must retain the key; missing {missing_key}")
        self.schema = schema
        self.view_columns = list(view_columns)
        self.hidden_columns = [a.name for a in schema.attributes
                               if a.name not in view_columns]
        for column in self.hidden_columns:
            if column not in defaults:
                raise TransformationError(
                    f"no default for hidden column {column!r}")
        self.defaults = dict(defaults)
        self.name = f"project[{','.join(self.view_columns)}]"
        self.source_space = RelationSpace(schema, max_rows=max_rows)
        self._view_schema = RelationSchema(
            f"{schema.name}_view",
            [schema.attributes[schema.index_of(c)]
             for c in self.view_columns],
            key=schema.key)
        self.view_space = _projected_space(self, max_rows)

    def get(self, source: Relation) -> Relation:
        return project(source, self.view_columns,
                       schema_name=self._view_schema.name,
                       key=self.schema.key)

    def put(self, view: Relation, source: Relation) -> Relation:
        by_key = {self.schema.key_of(row): row for row in source.rows}
        rows = []
        for view_row in view.rows:
            view_dict = view.schema.row_as_dict(view_row)
            key = tuple(view_dict[k] for k in self.schema.key or ())
            old_row = by_key.get(key)
            merged = dict(view_dict)
            if old_row is not None:
                old_dict = self.schema.row_as_dict(old_row)
                for column in self.hidden_columns:
                    merged[column] = old_dict[column]
            else:
                for column in self.hidden_columns:
                    merged[column] = self.defaults[column]
            rows.append(tuple(merged[a.name]
                              for a in self.schema.attributes))
        return Relation(self.schema, rows)

    def create(self, view: Relation) -> Relation:
        return self.put(view, Relation(self.schema))


class SelectionLens(Lens):
    """σ: the rows satisfying a predicate; hidden rows are preserved.

    ``put`` unions the new view rows with the preserved hidden rows.
    Putting a row the predicate rejects raises
    :class:`TransformationError` (PutGet would otherwise break).  A key
    clash between a new view row and a hidden row resolves in favour of
    the view (the hidden row is superseded).
    """

    def __init__(self, schema: RelationSchema,
                 predicate: Callable[[dict[str, Any]], bool],
                 max_rows: int = 8, name: str | None = None) -> None:
        self.schema = schema
        self.predicate = predicate
        self.name = name or f"select[{schema.name}]"
        self.source_space = RelationSpace(schema, max_rows=max_rows)
        self.view_space = _selected_space(self, max_rows)

    def get(self, source: Relation) -> Relation:
        return select(source, self.predicate,
                      schema_name=f"{self.schema.name}_sel")

    def put(self, view: Relation, source: Relation) -> Relation:
        rejected = [row for row in view.rows
                    if not self.predicate(view.schema.row_as_dict(row))]
        if rejected:
            raise TransformationError(
                "selection lens cannot put back rows the predicate "
                f"rejects: {sorted(rejected)!r}")
        hidden = {row for row in source.rows
                  if not self.predicate(self.schema.row_as_dict(row))}
        view_keys = {self.schema.key_of(row) for row in view.rows}
        kept_hidden = {row for row in hidden
                       if self.schema.key_of(row) not in view_keys}
        return Relation(self.schema, set(view.rows) | kept_hidden)

    def create(self, view: Relation) -> Relation:
        return self.put(view, Relation(self.schema))


class JoinLens(Lens):
    """⋈: natural join of R(k, b) and S(k, c) on the shared key column k.

    The source is a pair ``(r, s)`` of relations keyed on the shared
    column.  ``put`` splits every view row into its R- and S-halves;
    rows of R or S whose key the view no longer mentions are deleted
    *unless* they were dangling (had no join partner), in which case
    they are preserved — they were never visible, so deleting them
    would violate hippocraticness.  A view row whose key matches a
    dangling row supersedes it.
    """

    def __init__(self, left_schema: RelationSchema,
                 right_schema: RelationSchema, max_rows: int = 6) -> None:
        shared = [a.name for a in left_schema.attributes
                  if a.name in right_schema.attribute_names]
        if len(shared) != 1:
            raise TransformationError(
                "join lens expects exactly one shared column, got "
                f"{shared}")
        self.key_column = shared[0]
        if left_schema.key != (self.key_column,) \
                or right_schema.key != (self.key_column,):
            raise TransformationError(
                "both relations must be keyed on the shared column")
        self.left_schema = left_schema
        self.right_schema = right_schema
        self.name = f"join[{left_schema.name}*{right_schema.name}]"
        left_space = RelationSpace(left_schema, max_rows=max_rows)
        right_space = RelationSpace(right_schema, max_rows=max_rows)
        from repro.models.space import ProductSpace
        self.source_space = ProductSpace(left_space, right_space,
                                         name="(R, S)")
        self.view_space = _joined_space(self, max_rows)

    def get(self, source: tuple[Relation, Relation]) -> Relation:
        left, right = source
        return natural_join(left, right, schema_name="V")

    def put(self, view: Relation,
            source: tuple[Relation, Relation]) -> tuple[Relation, Relation]:
        left, right = source
        key_idx_left = self.left_schema.index_of(self.key_column)
        key_idx_right = self.right_schema.index_of(self.key_column)
        joined_keys = {row[key_idx_left] for row in left.rows} & \
            {row[key_idx_right] for row in right.rows}

        view_left_rows = set()
        view_right_rows = set()
        view_keys = set()
        for row in view.rows:
            row_dict = view.schema.row_as_dict(row)
            view_keys.add(row_dict[self.key_column])
            view_left_rows.add(tuple(
                row_dict[a.name] for a in self.left_schema.attributes))
            view_right_rows.add(tuple(
                row_dict[a.name] for a in self.right_schema.attributes))

        dangling_left = {row for row in left.rows
                         if row[key_idx_left] not in joined_keys
                         and row[key_idx_left] not in view_keys}
        dangling_right = {row for row in right.rows
                          if row[key_idx_right] not in joined_keys
                          and row[key_idx_right] not in view_keys}
        return (Relation(self.left_schema, view_left_rows | dangling_left),
                Relation(self.right_schema,
                         view_right_rows | dangling_right))

    def create(self, view: Relation) -> tuple[Relation, Relation]:
        empty = (Relation(self.left_schema), Relation(self.right_schema))
        return self.put(view, empty)


# ----------------------------------------------------------------------
# View spaces: derived by sampling a source and taking its view, so the
# law harness draws views that are genuinely achievable.
# ----------------------------------------------------------------------

def _projected_space(lens: ProjectionLens, max_rows: int):
    return PredicateSpace(
        predicate=lambda value: isinstance(value, Relation)
        and value.schema.attribute_names == lens.view_columns,
        sampler=lambda rng: lens.get(lens.source_space.sample(rng)),
        name=f"views[{lens.name}]")


def _selected_space(lens: SelectionLens, max_rows: int):
    def _member(value) -> bool:
        if not isinstance(value, Relation):
            return False
        if value.schema.attribute_names != lens.schema.attribute_names:
            return False
        return all(lens.predicate(value.schema.row_as_dict(row))
                   for row in value.rows)

    return PredicateSpace(
        predicate=_member,
        sampler=lambda rng: lens.get(lens.source_space.sample(rng)),
        name=f"views[{lens.name}]")


def _joined_space(lens: JoinLens, max_rows: int):
    # natural_join keeps the left schema's order, then right-only columns.
    expected = (list(lens.left_schema.attribute_names)
                + [a.name for a in lens.right_schema.attributes
                   if a.name not in lens.left_schema.attribute_names])

    def _member(value) -> bool:
        return (isinstance(value, Relation)
                and value.schema.attribute_names == expected)

    return PredicateSpace(
        predicate=_member,
        sampler=lambda rng: lens.get(lens.source_space.sample(rng)),
        name=f"views[{lens.name}]")
