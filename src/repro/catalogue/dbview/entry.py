"""The DBVIEW repository entry: relational view update as lenses.

One entry covering the projection/selection/join trio, with the classic
anomalies recorded as variation points.  Kept as a single entry because
the three lenses share models and the literature treats them as one
example family (relational lenses).
"""

from __future__ import annotations

from repro.repository.entry import (
    Artefact,
    ExampleEntry,
    ModelDescription,
    PropertyClaim,
    Reference,
    RestorationSpec,
    Variant,
)
from repro.repository.template import EntryType
from repro.repository.versioning import Version

__all__ = ["dbview_entry"]


def dbview_entry() -> ExampleEntry:
    """The DBVIEW entry (version 0.1, unreviewed, PRECISE)."""
    return ExampleEntry(
        title="DBVIEW",
        version=Version(0, 1),
        types=(EntryType.PRECISE,),
        overview=(
            "The relational view-update problem rendered as lenses: a "
            "stored relation (source) and a derived view stay "
            "consistent while either side is edited. Included because "
            "it is the database community's canonical bx."),
        models=(
            ModelDescription(
                "Source database",
                "One or two relations with declared candidate keys; "
                "rows are typed tuples over the relation schema.",
                metamodel=("R = (name, attributes: list of (name, "
                           "domain), key: subset of attributes)")),
            ModelDescription(
                "View relation",
                "A relation derived by projection, selection, or "
                "natural join of the source relations."),
        ),
        consistency=(
            "The view equals the query applied to the source: "
            "projection onto columns including the key, selection by a "
            "row predicate, or natural join on a shared key column."),
        restoration=RestorationSpec(
            forward=(
                "Recompute the view from the source (the view is "
                "functionally determined)."),
            backward=(
                "Projection: rejoin hidden columns by key, defaults for "
                "new keys. Selection: keep the hidden rows that fail "
                "the predicate, replace the visible ones with the view; "
                "reject view rows the predicate fails. Join: split view "
                "rows across the sources; preserve dangling rows unless "
                "the view claims their key.")),
        properties=(
            PropertyClaim("correct", holds=True),
            PropertyClaim("hippocratic", holds=True),
            PropertyClaim("undoable", holds=False,
                          note="hidden columns of deleted rows are lost"),
        ),
        variants=(
            Variant(
                "Deletion policy under join",
                "When a view row disappears, delete from the left "
                "relation, the right, or both? The artefact deletes "
                "from both; relational-lens literature names all three "
                "policies."),
            Variant(
                "Selection anomaly handling",
                "A view row the predicate rejects can be rejected (the "
                "artefact's choice), silently dropped, or have the "
                "predicate's columns coerced."),
            Variant(
                "Defaults for new keys under projection",
                "New view rows need values for hidden columns: a "
                "per-column default (the artefact), NULLs, or rejecting "
                "the insert."),
        ),
        discussion=(
            "View update is the oldest bx problem; the lens laws turn "
            "its classic anomalies into precise side conditions. Like "
            "COMPOSERS, the projection lens loses hidden data when a "
            "row is deleted and re-added through the view, so the "
            "family is not undoable. The join lens's treatment of "
            "dangling rows is exactly a hippocraticness argument."),
        references=(
            Reference(
                "Aaron Bohannon, Benjamin C. Pierce and Jeffrey A. "
                "Vaughan. \"Relational lenses: a language for updatable "
                "views\". PODS 2006.",
                doi="10.1145/1142351.1142399"),
            Reference(
                "F. Bancilhon and N. Spyratos. \"Update semantics of "
                "relational views\". ACM TODS 6(4), 1981.",
                doi="10.1145/319628.319634"),
        ),
        authors=("James Cheney",),
        reviewers=(),
        comments=(),
        artefacts=(
            Artefact("projection lens", "code",
                     "repro.catalogue.dbview.lenses.ProjectionLens"),
            Artefact("selection lens", "code",
                     "repro.catalogue.dbview.lenses.SelectionLens"),
            Artefact("join lens", "code",
                     "repro.catalogue.dbview.lenses.JoinLens"),
        ),
    )
