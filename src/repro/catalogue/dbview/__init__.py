"""DBVIEW: relational view-update lenses (projection, selection, join)."""

from repro.catalogue.dbview.entry import dbview_entry
from repro.catalogue.dbview.lenses import (
    JoinLens,
    ProjectionLens,
    SelectionLens,
)

__all__ = ["ProjectionLens", "SelectionLens", "JoinLens", "dbview_entry"]
