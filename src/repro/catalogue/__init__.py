"""The example catalogue: curated entries paired with executable bx.

COMPOSERS (the paper's §4 instance, with every variant),
COMPOSERS-STRING (the Boomerang original), UML2RDBMS (the notorious
one), DBVIEW (relational lenses), plus bijection, tree, sketch and
benchmark entries — the "broad church" of §2.
"""

from repro.catalogue.base import CatalogueExample
from repro.catalogue.collection import (
    builtin_catalogue,
    catalogue_example,
    populate_store,
)

__all__ = [
    "CatalogueExample",
    "builtin_catalogue",
    "catalogue_example",
    "populate_store",
]
