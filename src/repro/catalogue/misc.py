"""Further catalogue examples: bijections, documents, sketches, benchmarks.

The paper wants a "broad church" (§2): precise micro-examples, sketches
"of particular benefit to outsiders", and benchmarks as "a distinct
class".  This module contributes one of each beyond the flagship
entries:

* **ROMAN-NUMERALS** — a pure bijection (decimal ↔ Roman numeral,
  1..3999).  Pedagogically the degenerate bx: trivially correct,
  hippocratic, undoable and history ignorant; a sanity anchor for the
  law harness.
* **DIRTREE** — a directory tree ↔ its sorted path listing.  Bijective
  on canonical trees, but the interesting direction (listing → tree)
  must *reconstruct* hierarchy; included as the smallest example whose
  models are trees.
* **MODEL-CODE-SYNC** — a SKETCH: round-trip engineering between UML
  models and program code, described but deliberately not worked out,
  exactly the §2 "sketch" class.
* **COMPOSERS-BENCH** — a BENCHMARK entry pointing at this library's
  workload harness, per the BenchmarX discussion the paper cites.
"""

from __future__ import annotations

import random

from repro.core.bx import BijectiveBx, Bx
from repro.models.space import IntRangeSpace, ModelSpace, PredicateSpace
from repro.models.trees import Node
from repro.repository.entry import (
    Artefact,
    ExampleEntry,
    ModelDescription,
    PropertyClaim,
    Reference,
    RestorationSpec,
    Variant,
)
from repro.repository.template import EntryType
from repro.repository.versioning import Version

__all__ = [
    "int_to_roman",
    "roman_to_int",
    "roman_bx",
    "roman_entry",
    "tree_to_paths",
    "paths_to_tree",
    "dirtree_bx",
    "dirtree_entry",
    "model_code_sketch_entry",
    "composers_benchmark_entry",
]

# ----------------------------------------------------------------------
# ROMAN-NUMERALS: a bijection.
# ----------------------------------------------------------------------

_ROMAN_TABLE = (
    (1000, "M"), (900, "CM"), (500, "D"), (400, "CD"),
    (100, "C"), (90, "XC"), (50, "L"), (40, "XL"),
    (10, "X"), (9, "IX"), (5, "V"), (4, "IV"), (1, "I"),
)


def int_to_roman(number: int) -> str:
    """Canonical Roman numeral for 1..3999."""
    if not 1 <= number <= 3999:
        raise ValueError(f"number out of Roman range: {number}")
    pieces = []
    remaining = number
    for value, letters in _ROMAN_TABLE:
        while remaining >= value:
            pieces.append(letters)
            remaining -= value
    return "".join(pieces)


def roman_to_int(numeral: str) -> int:
    """Parse a canonical Roman numeral; rejects non-canonical forms."""
    values = {"I": 1, "V": 5, "X": 10, "L": 50, "C": 100, "D": 500,
              "M": 1000}
    total = 0
    previous = 0
    for letter in reversed(numeral):
        if letter not in values:
            raise ValueError(f"bad Roman letter {letter!r}")
        value = values[letter]
        if value < previous:
            total -= value
        else:
            total += value
            previous = value
    if not 1 <= total <= 3999 or int_to_roman(total) != numeral:
        raise ValueError(f"non-canonical Roman numeral {numeral!r}")
    return total


def _roman_space() -> ModelSpace:
    return PredicateSpace(
        predicate=lambda value: isinstance(value, str)
        and _is_roman(value),
        sampler=lambda rng: int_to_roman(rng.randint(1, 3999)),
        name="Roman numerals")


def _is_roman(text: str) -> bool:
    try:
        roman_to_int(text)
    except ValueError:
        return False
    return True


def roman_bx() -> Bx:
    """The decimal ↔ Roman bijective bx (1..3999)."""
    return BijectiveBx("roman-numerals",
                       IntRangeSpace(1, 3999, name="1..3999"),
                       _roman_space(),
                       to_right=int_to_roman,
                       to_left=roman_to_int)


def roman_entry() -> ExampleEntry:
    """The ROMAN-NUMERALS entry (version 0.1, PRECISE)."""
    return ExampleEntry(
        title="ROMAN-NUMERALS",
        version=Version(0, 1),
        types=(EntryType.PRECISE,),
        overview=(
            "A pure bijection: integers 1..3999 and their canonical "
            "Roman numerals. The degenerate bx every formalism handles; "
            "useful as a sanity anchor when comparing tools."),
        models=(
            ModelDescription("Decimal", "An integer between 1 and 3999."),
            ModelDescription("Roman",
                             "A canonical Roman numeral (subtractive "
                             "notation, no more than three repeats)."),
        ),
        consistency=(
            "The numeral is the canonical rendering of the integer."),
        restoration=RestorationSpec(
            combined=(
                "Each side determines the other: restoration simply "
                "converts the authoritative side.")),
        properties=(
            PropertyClaim("correct", holds=True),
            PropertyClaim("hippocratic", holds=True),
            PropertyClaim("undoable", holds=True),
            PropertyClaim("history ignorant", holds=True),
        ),
        variants=(
            Variant("Non-canonical numerals",
                    "Accepting IIII-style forms makes the right model "
                    "class larger than the bijection's image; the bx "
                    "must then normalise, losing hippocraticness on "
                    "the right."),
        ),
        discussion=(
            "Bijections are the trivial corner of the bx design space: "
            "every property in the glossary holds. In the repository "
            "they serve as the first example to try a new formalism "
            "on, before the genuinely bidirectional cases."),
        references=(),
        authors=("Jeremy Gibbons",),
        reviewers=(),
        comments=(),
        artefacts=(
            Artefact("bx", "code", "repro.catalogue.misc.roman_bx"),
        ),
    )


# ----------------------------------------------------------------------
# DIRTREE: a tree ↔ its sorted path listing.
# ----------------------------------------------------------------------

def tree_to_paths(tree: Node) -> tuple[str, ...]:
    """All root-to-node paths of a directory tree, sorted.

    The root node's label is the volume name; a path lists labels
    joined by '/'.  Only leaf-to-root chains appear for leaves, but
    interior directories appear as their own prefix paths too, so the
    listing determines the tree.
    """
    paths: list[str] = []

    def walk(node: Node, prefix: str) -> None:
        here = f"{prefix}/{node.label}" if prefix else node.label
        paths.append(here)
        for child in node.children:
            walk(child, here)

    walk(tree, "")
    return tuple(sorted(paths))


def paths_to_tree(paths: tuple[str, ...]) -> Node:
    """Rebuild the canonical tree from a sorted path listing.

    Children are ordered alphabetically (the canonical form); raises
    ValueError on listings with no common root or with gaps.
    """
    if not paths:
        raise ValueError("empty listing has no tree")
    roots = {path.split("/")[0] for path in paths}
    if len(roots) != 1:
        raise ValueError(f"listing has multiple roots: {sorted(roots)}")
    split = [path.split("/") for path in sorted(paths)]

    def build(label: str, members: list[list[str]], depth: int) -> Node:
        children: dict[str, list[list[str]]] = {}
        for parts in members:
            if len(parts) > depth:
                children.setdefault(parts[depth], []).append(parts)
        for _name, group in children.items():
            if not any(len(parts) == depth + 1 for parts in group):
                raise ValueError(
                    "listing omits interior directory "
                    f"{'/'.join(group[0][:depth + 1])!r}")
        return Node(label, children=[
            build(name, group, depth + 1)
            for name, group in sorted(children.items())])

    return build(split[0][0], split, 1)


def _canonical_tree(node: Node) -> Node:
    """Sort children recursively; labels must be unique per directory."""
    children = sorted((_canonical_tree(child) for child in node.children),
                      key=lambda child: child.label)
    return Node(node.label, children=children)


def _dirtree_space() -> ModelSpace:
    labels = ("bin", "doc", "src", "lib", "a", "b")

    def _unique_labels(node: Node) -> bool:
        names = [child.label for child in node.children]
        if len(set(names)) != len(names):
            return False
        return all(_unique_labels(child) for child in node.children)

    def _sample(rng: random.Random) -> Node:
        def grow(label: str, depth: int) -> Node:
            count = rng.randint(0, 2) if depth < 3 else 0
            child_labels = rng.sample(labels, count)  # distinct siblings
            return Node(label, children=sorted(
                (grow(child, depth + 1) for child in child_labels),
                key=lambda child: child.label))

        return grow("root", 0)

    return PredicateSpace(
        predicate=lambda value: isinstance(value, Node)
        and value == _canonical_tree(value) and _unique_labels(value),
        sampler=_sample,
        name="canonical directory trees")


def _listing_space() -> ModelSpace:
    tree_space = _dirtree_space()

    def _member(value) -> bool:
        if not isinstance(value, tuple) or not value:
            return False
        try:
            tree = paths_to_tree(value)
        except ValueError:
            return False
        return tree_to_paths(tree) == value

    return PredicateSpace(
        predicate=_member,
        sampler=lambda rng: tree_to_paths(tree_space.sample(rng)),
        name="sorted path listings")


def dirtree_bx() -> Bx:
    """Directory tree ↔ sorted path listing (bijective on canonical trees)."""
    return BijectiveBx("dirtree",
                       _dirtree_space(), _listing_space(),
                       to_right=tree_to_paths,
                       to_left=paths_to_tree)


def dirtree_entry() -> ExampleEntry:
    """The DIRTREE entry (version 0.1, PRECISE)."""
    return ExampleEntry(
        title="DIRTREE",
        version=Version(0, 1),
        types=(EntryType.PRECISE,),
        overview=(
            "A directory tree and its sorted path listing. Bijective on "
            "canonical trees, but the listing-to-tree direction must "
            "reconstruct hierarchy, so implementations differ "
            "instructively."),
        models=(
            ModelDescription(
                "Tree",
                "A rooted tree of labelled directories; sibling labels "
                "are unique and children are alphabetically ordered "
                "(the canonical form)."),
            ModelDescription(
                "Listing",
                "The sorted tuple of slash-joined root-to-node paths, "
                "including interior directories."),
        ),
        consistency=(
            "The listing is exactly the set of paths of the tree."),
        restoration=RestorationSpec(
            combined=(
                "Each side determines the other on canonical models: "
                "flatten the tree, or group the listing by prefix and "
                "rebuild.")),
        properties=(
            PropertyClaim("correct", holds=True),
            PropertyClaim("hippocratic", holds=True),
            PropertyClaim("undoable", holds=True),
        ),
        variants=(
            Variant("Non-canonical trees",
                    "If sibling order is user-controlled, the listing "
                    "no longer determines the tree and restoration "
                    "must preserve the old order, as COMPOSERS "
                    "preserves list positions."),
            Variant("Listings without interior paths",
                    "If only leaf paths are listed, empty directories "
                    "are invisible and the bx loses information in one "
                    "direction."),
        ),
        discussion=(
            "Included as the smallest tree-structured example; its "
            "variants show how quickly bijectivity evaporates when a "
            "model class is relaxed, which is the repository's reason "
            "for recording variation points explicitly."),
        references=(),
        authors=("James McKinna",),
        reviewers=(),
        comments=(),
        artefacts=(
            Artefact("bx", "code", "repro.catalogue.misc.dirtree_bx"),
        ),
    )


# ----------------------------------------------------------------------
# Sketch and benchmark entries (no executable bx by design).
# ----------------------------------------------------------------------

def model_code_sketch_entry() -> ExampleEntry:
    """The MODEL-CODE-SYNC sketch entry (§2's SKETCH class)."""
    return ExampleEntry(
        title="MODEL-CODE-SYNC",
        version=Version(0, 1),
        types=(EntryType.SKETCH,),
        overview=(
            "Round-trip engineering: a UML model and the program code "
            "generated from it are edited independently and must be "
            "re-synchronised. A situation where a bx clearly applies "
            "but the details are not worked out."),
        models=(
            ModelDescription(
                "Model", "A UML class model as used by an MDE tool."),
            ModelDescription(
                "Code", "Source code in a mainstream object-oriented "
                "language, partly generated and partly hand-written."),
        ),
        consistency=(
            "Informally: the code implements the model; generated "
            "regions agree with the model and hand-written regions are "
            "unconstrained."),
        restoration=RestorationSpec(
            combined=(
                "Not worked out. Candidate approaches: protected "
                "regions, delta propagation over an extraction "
                "function, or a lens per generated artefact.")),
        properties=(),
        variants=(),
        discussion=(
            "Included as a sketch per the template's class system: "
            "outsiders wondering whether bx matter to them usually "
            "arrive with exactly this problem. Making it precise would "
            "need fixing a language subset and a generation scheme, "
            "which is why it stays a sketch."),
        references=(),
        authors=("Perdita Stevens",),
        reviewers=(),
        comments=(),
        artefacts=(),
    )


def composers_benchmark_entry() -> ExampleEntry:
    """The COMPOSERS-BENCH benchmark entry (the BenchmarX class)."""
    return ExampleEntry(
        title="COMPOSERS-BENCH",
        version=Version(0, 1),
        types=(EntryType.BENCHMARK,),
        overview=(
            "A scaling benchmark over the COMPOSERS example: model "
            "sizes and edit scripts are generated, restoration is "
            "timed, and property checks are run at each size. Included "
            "because benchmarks are a distinct class of repository "
            "entry."),
        models=(
            ModelDescription(
                "Workload",
                "Seeded generators produce composer sets of a given "
                "size and random edit scripts (add, delete, reorder) "
                "against them.",
                metamodel="see repro.harness.workloads"),
        ),
        consistency=(
            "As for COMPOSERS; the benchmark measures the cost of "
            "restoring it."),
        restoration=RestorationSpec(
            combined=(
                "As for COMPOSERS, at sizes 10 to 10000, timed via "
                "pytest-benchmark (benchmarks/bench_scaling.py).")),
        properties=(),
        variants=(
            Variant("Edit mix",
                    "The add/delete/reorder ratio is a benchmark "
                    "parameter; deletion-heavy mixes stress backward "
                    "restoration."),
        ),
        discussion=(
            "Benchmark entries need fields precise entries do not "
            "(workload parameters, measurement protocol), which is the "
            "discussion the paper reports having begun with the "
            "BenchmarX authors."),
        references=(
            Reference(
                "Anthony Anjorin, Manuel Alcino Cunha, Holger Giese, "
                "Frank Hermann, Arend Rensink, and Andy Schuerr. "
                "\"BenchmarX\". In Proceedings of Bx 2014.",
                note="the benchmark class proposal"),
        ),
        authors=("James Cheney", "Jeremy Gibbons"),
        reviewers=(),
        comments=(),
        artefacts=(
            Artefact("workloads", "code", "repro.harness.workloads"),
            Artefact("bench", "code", "benchmarks.bench_scaling",
                     "pytest-benchmark suite"),
        ),
    )
