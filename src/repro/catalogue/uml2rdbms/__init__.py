"""UML2RDBMS: the notorious class-diagram ↔ relational-schema example."""

from repro.catalogue.uml2rdbms.bx import (
    Uml2RdbmsBx,
    uml2rdbms_bx,
    uml2rdbms_lens,
)
from repro.catalogue.uml2rdbms.entry import uml2rdbms_entry
from repro.catalogue.uml2rdbms.models import (
    SQL_TYPES,
    UML_TYPES,
    Table,
    add_class,
    diagram_space,
    empty_diagram,
    schema_space,
    sql_to_uml_type,
    tables_of_diagram,
    uml_metamodel,
    uml_to_sql_type,
)

__all__ = [
    "Uml2RdbmsBx", "uml2rdbms_bx", "uml2rdbms_lens", "uml2rdbms_entry",
    "Table", "add_class", "diagram_space", "schema_space",
    "empty_diagram", "tables_of_diagram", "uml_metamodel",
    "UML_TYPES", "SQL_TYPES", "uml_to_sql_type", "sql_to_uml_type",
]
