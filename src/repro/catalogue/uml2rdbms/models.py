"""Model spaces for the UML-class-diagram ↔ RDBMS-schema example.

The paper calls this "the notorious UML class diagram to RDBMS schema
example [that] has appeared in many variants in papers by many authors" —
the proliferation-of-variants problem the repository exists to fix.  The
*base* variant here (following the QVT lineage) relates:

* **left** — a class diagram: an object graph of Class nodes (name,
  persistent flag) owning Attribute nodes (name, UML type, primary flag)
  via ``attrs`` edges; the inheritance variant adds ``parent`` edges;
* **right** — a relational schema: a set of :class:`Table` values (name,
  ordered columns of (name, SQL type), primary-key column names).

Consistency: the tables are exactly the persistent classes, each table's
columns exactly the class's attributes (name-sorted) with UML types
mapped to SQL types, and its key exactly the primary attributes.
Non-persistent classes are invisible in the schema — the source of the
example's non-bijectivity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.models.graphs import Graph, GraphEdge, GraphNode
from repro.models.metamodel import (
    AttributeDef,
    ClassDef,
    Metamodel,
    ReferenceDef,
)
from repro.models.space import FiniteSpace, ModelSpace, PredicateSpace

__all__ = [
    "UML_TYPES",
    "SQL_TYPES",
    "uml_to_sql_type",
    "sql_to_uml_type",
    "CLASS_NAMES",
    "ATTR_NAMES",
    "Table",
    "uml_metamodel",
    "class_node",
    "attribute_node",
    "add_class",
    "diagram_space",
    "schema_space",
    "tables_of_diagram",
    "empty_diagram",
]

#: UML attribute types and their SQL images (the classic mapping).
UML_TYPES: tuple[str, ...] = ("String", "Integer", "Boolean")
SQL_TYPES: tuple[str, ...] = ("VARCHAR", "INT", "BOOLEAN")

_TYPE_MAP = dict(zip(UML_TYPES, SQL_TYPES, strict=True))
_TYPE_MAP_BACK = dict(zip(SQL_TYPES, UML_TYPES, strict=True))


def uml_to_sql_type(uml_type: str) -> str:
    """Map a UML attribute type to its SQL column type."""
    return _TYPE_MAP[uml_type]


def sql_to_uml_type(sql_type: str) -> str:
    """Map a SQL column type back to its UML attribute type."""
    return _TYPE_MAP_BACK[sql_type]


#: Small pools so samples collide on names (the interesting cases).
CLASS_NAMES: tuple[str, ...] = ("Customer", "Order", "Product", "Invoice")
ATTR_NAMES: tuple[str, ...] = ("id", "name", "total", "paid")

_BOOL_SPACE = FiniteSpace([True, False], name="bool")
_CLASS_NAME_SPACE = FiniteSpace(CLASS_NAMES, name="class names")
_ATTR_NAME_SPACE = FiniteSpace(ATTR_NAMES, name="attribute names")
_UML_TYPE_SPACE = FiniteSpace(UML_TYPES, name="UML types")


@dataclass(frozen=True)
class Table:
    """One relational table: name, ordered columns, primary-key columns."""

    name: str
    columns: tuple[tuple[str, str], ...]
    key: tuple[str, ...] = ()

    def column_names(self) -> tuple[str, ...]:
        return tuple(name for name, _sql_type in self.columns)


def uml_metamodel(with_inheritance: bool = False) -> Metamodel:
    """The class-diagram metamodel (optionally with single inheritance)."""
    class_refs = [ReferenceDef("attrs", "Attribute", lower=0, upper=None)]
    if with_inheritance:
        class_refs.append(ReferenceDef("parent", "Class", lower=0, upper=1))
    return Metamodel("UML", [
        ClassDef("Class",
                 attributes=[AttributeDef("name", _CLASS_NAME_SPACE),
                             AttributeDef("persistent", _BOOL_SPACE)],
                 references=class_refs),
        ClassDef("Attribute",
                 attributes=[AttributeDef("name", _ATTR_NAME_SPACE),
                             AttributeDef("type", _UML_TYPE_SPACE),
                             AttributeDef("primary", _BOOL_SPACE)]),
    ])


def class_node(name: str, persistent: bool) -> GraphNode:
    """A Class node; its id is derived from the (unique) class name."""
    return GraphNode.make(f"class:{name}", "Class",
                          {"name": name, "persistent": persistent})


def attribute_node(class_name: str, name: str, uml_type: str,
                   primary: bool = False) -> GraphNode:
    """An Attribute node owned by the named class."""
    return GraphNode.make(f"attr:{class_name}:{name}", "Attribute",
                          {"name": name, "type": uml_type,
                           "primary": primary})


def add_class(diagram: Graph, name: str, persistent: bool,
              attributes: list[tuple[str, str, bool]],
              parent: str | None = None) -> Graph:
    """Add a class with attributes (name, uml type, primary) to a diagram."""
    result = diagram.add_node(class_node(name, persistent))
    for attr_name, uml_type, primary in attributes:
        node = attribute_node(name, attr_name, uml_type, primary)
        result = result.add_node(node)
        result = result.add_edge(
            GraphEdge(f"class:{name}", "attrs", node.node_id))
    if parent is not None:
        result = result.add_edge(
            GraphEdge(f"class:{name}", "parent", f"class:{parent}"))
    return result


def empty_diagram() -> Graph:
    return Graph()


def _class_names_unique(graph: Graph) -> bool:
    names = [node.attribute("name") for node in graph.nodes("Class")]
    return len(set(names)) == len(names)


def _attr_names_unique_per_class(graph: Graph) -> bool:
    for class_nd in graph.nodes("Class"):
        names = [attr.attribute("name")
                 for attr in graph.targets(class_nd.node_id, "attrs")]
        if len(set(names)) != len(names):
            return False
    return True


def _sample_diagram(rng: random.Random,
                    with_inheritance: bool = False) -> Graph:
    """A random well-formed class diagram."""
    count = rng.randint(0, len(CLASS_NAMES))
    chosen = rng.sample(CLASS_NAMES, count)
    diagram = Graph()
    for index, name in enumerate(chosen):
        attr_count = rng.randint(0, 3)
        attr_names = rng.sample(ATTR_NAMES, attr_count)
        attributes = [(attr_name, rng.choice(UML_TYPES),
                       rng.random() < 0.3)
                      for attr_name in attr_names]
        parent = None
        if with_inheritance and index > 0 and rng.random() < 0.4:
            parent = chosen[rng.randrange(index)]
        diagram = add_class(diagram, name, rng.random() < 0.7,
                            attributes, parent=parent)
    return diagram


def diagram_space(with_inheritance: bool = False) -> ModelSpace:
    """The space of well-formed class diagrams.

    Well-formedness: conforms to the metamodel, class names unique,
    attribute names unique per class (and, with inheritance, no parent
    cycles — guaranteed by the sampler's construction order and checked
    for membership).
    """
    metamodel = uml_metamodel(with_inheritance)

    def _acyclic(graph: Graph) -> bool:
        for node in graph.nodes("Class"):
            seen = {node.node_id}
            current = node
            while True:
                parents = graph.targets(current.node_id, "parent")
                if not parents:
                    break
                current = parents[0]
                if current.node_id in seen:
                    return False
                seen.add(current.node_id)
        return True

    def _is_member(value) -> bool:
        if not isinstance(value, Graph):
            return False
        if not metamodel.conforms(value):
            return False
        if not (_class_names_unique(value)
                and _attr_names_unique_per_class(value)):
            return False
        if with_inheritance and not _acyclic(value):
            return False
        # Every Attribute node must be owned by exactly one class.
        owned = [edge.target for edge in value.edges("attrs")]
        attr_ids = [node.node_id for node in value.nodes("Attribute")]
        return sorted(owned) == sorted(attr_ids)

    kind = "diagrams+inh" if with_inheritance else "diagrams"
    return PredicateSpace(
        _is_member,
        lambda rng: _sample_diagram(rng, with_inheritance),
        name=f"UML {kind}")


def _sample_schema(rng: random.Random) -> frozenset:
    count = rng.randint(0, len(CLASS_NAMES))
    tables = []
    for name in rng.sample(CLASS_NAMES, count):
        column_names = sorted(rng.sample(ATTR_NAMES, rng.randint(0, 3)))
        columns = tuple((column, rng.choice(SQL_TYPES))
                        for column in column_names)
        key = tuple(column for column, _sql in columns
                    if rng.random() < 0.3)
        tables.append(Table(name, columns, key))
    return frozenset(tables)


def schema_space() -> ModelSpace:
    """The space of relational schemas: frozensets of well-formed Tables."""

    def _is_member(value) -> bool:
        if not isinstance(value, frozenset):
            return False
        names = []
        for table in value:
            if not isinstance(table, Table):
                return False
            names.append(table.name)
            column_names = table.column_names()
            if list(column_names) != sorted(set(column_names)):
                return False  # columns name-sorted and unique
            if any(sql not in SQL_TYPES for _name, sql in table.columns):
                return False
            if any(key not in column_names for key in table.key):
                return False
        return len(set(names)) == len(names)

    return PredicateSpace(_is_member, _sample_schema,
                          name="RDBMS schemas")


def tables_of_diagram(diagram: Graph,
                      flatten_inheritance: bool = False) -> frozenset:
    """The schema a diagram *should* map to (the consistency function).

    One table per persistent class; columns are the class's attributes
    (name-sorted), with inherited attributes included when
    ``flatten_inheritance``; key columns are the primary attributes.
    Name clashes between inherited and own attributes resolve in favour
    of the subclass (the usual override rule).
    """
    tables = set()
    for node in diagram.nodes("Class"):
        if not node.attribute("persistent"):
            continue
        collected: dict[str, tuple[str, bool]] = {}
        chain = [node]
        if flatten_inheritance:
            current = node
            while True:
                parents = diagram.targets(current.node_id, "parent")
                if not parents:
                    break
                current = parents[0]
                chain.append(current)
        for owner in reversed(chain):  # ancestors first; subclass overrides
            for attr in diagram.targets(owner.node_id, "attrs"):
                collected[attr.attribute("name")] = (
                    attr.attribute("type"), attr.attribute("primary"))
        columns = tuple((name, uml_to_sql_type(uml_type))
                        for name, (uml_type, _primary)
                        in sorted(collected.items()))
        key = tuple(name for name, (_uml, primary)
                    in sorted(collected.items()) if primary)
        tables.add(Table(node.attribute("name"), columns, key))
    return frozenset(tables)
