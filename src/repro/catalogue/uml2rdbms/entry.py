"""The UML2RDBMS repository entry.

§1 of the paper names this the motivating case: "the notorious UML class
diagram to RDBMS schema example, ha[s] appeared in many variants in
papers by many authors.  It can be difficult to identify whether examples
in different papers are really identical" — exactly what a curated entry
with explicit variation points fixes.  The entry below curates the *base*
variant implemented in this library and records the classic variation
points (inheritance flattening, association handling, type mappings).
"""

from __future__ import annotations

from repro.repository.entry import (
    Artefact,
    ExampleEntry,
    ModelDescription,
    PropertyClaim,
    Reference,
    RestorationSpec,
    Variant,
)
from repro.repository.template import EntryType
from repro.repository.versioning import Version

__all__ = ["uml2rdbms_entry"]


def uml2rdbms_entry() -> ExampleEntry:
    """The UML2RDBMS entry (version 0.1, unreviewed, PRECISE)."""
    return ExampleEntry(
        title="UML2RDBMS",
        version=Version(0, 1),
        types=(EntryType.PRECISE,),
        overview=(
            "The notorious object-relational mapping example: a UML "
            "class diagram is kept consistent with the relational "
            "schema that persists it. Chosen because it has appeared in "
            "many hard-to-compare variants across the literature."),
        models=(
            ModelDescription(
                "Class diagram",
                "A set of classes, each with a name, a persistent flag "
                "and a set of attributes; each attribute has a name, a "
                "type (String, Integer or Boolean) and a primary flag. "
                "Class names are unique; attribute names are unique "
                "within a class.",
                metamodel=("class Class:\n"
                           "    name: string (key)\n"
                           "    persistent: bool\n"
                           "    attrs: set of Attribute\n"
                           "class Attribute:\n"
                           "    name: string\n"
                           "    type: String | Integer | Boolean\n"
                           "    primary: bool")),
            ModelDescription(
                "Relational schema",
                "A set of tables, each with a name, a list of columns "
                "(name and SQL type, sorted by name) and a primary key "
                "(a subset of the column names). Table names are "
                "unique.",
                metamodel=("Table = (name: string,\n"
                           "         columns: list of (name, "
                           "VARCHAR | INT | BOOLEAN),\n"
                           "         key: list of column names)")),
        ),
        consistency=(
            "The schema contains exactly one table per persistent "
            "class, named after it; the table's columns are exactly the "
            "class's attributes in name order, with String, Integer and "
            "Boolean mapped to VARCHAR, INT and BOOLEAN respectively; "
            "the table's key is exactly the class's primary attributes. "
            "Non-persistent classes have no counterpart in the schema."),
        restoration=RestorationSpec(
            forward=(
                "The schema is functionally determined by the diagram: "
                "recompute the table for every persistent class and "
                "discard tables with no persistent class."),
            backward=(
                "Delete persistent classes whose table has disappeared, "
                "together with their attributes. For each table whose "
                "class survives but disagrees, repair the class in "
                "place: its attributes become exactly the table's "
                "columns, with primary flags from the key. Create a new "
                "persistent class for each table with no class. Never "
                "touch non-persistent classes: they are invisible in "
                "the schema.")),
        properties=(
            PropertyClaim("correct", holds=True),
            PropertyClaim("hippocratic", holds=True),
            PropertyClaim("undoable", holds=False,
                          note="dropping a table forgets the class"),
        ),
        variants=(
            Variant(
                "Inheritance flattening",
                "With single inheritance, a persistent class's table "
                "also carries inherited attributes (subclass overrides "
                "on name clashes). Backward repair must then flatten: "
                "column provenance is not recorded in the schema, so a "
                "repaired class drops its parent edge and owns all "
                "columns. Implemented as the with_inheritance artefact."),
            Variant(
                "Associations",
                "Many published variants also map associations to "
                "foreign keys; the base example omits associations "
                "entirely, which is itself a variant choice to state "
                "explicitly when citing."),
            Variant(
                "Type mapping",
                "The String/Integer/Boolean to VARCHAR/INT/BOOLEAN "
                "mapping is fixed here; variants differ (sizes on "
                "VARCHAR, vendor types), which matters because the "
                "mapping must be injective for backward restoration."),
        ),
        discussion=(
            "This example's proliferation of mutually incompatible "
            "variants is the paper's §1 motivation for a repository: "
            "papers citing UML2RDBMS rarely pin down inheritance, "
            "association and type-mapping choices, making results "
            "incomparable. The base entry here fixes one precise choice "
            "and names the variation points. Like COMPOSERS it is "
            "correct and hippocratic but not undoable: deleting a "
            "table and re-adding it yields a flat reconstruction, "
            "losing hierarchy exactly as COMPOSERS loses dates."),
        references=(
            Reference(
                "Object Management Group. \"MOF 2.0 Query / View / "
                "Transformation\", the standard's running example.",
                note="one lineage of the example"),
            Reference(
                "Perdita Stevens. \"Bidirectional model transformations "
                "in QVT: semantic issues and open questions\". SoSyM "
                "9(1), 2010.",
                doi="10.1007/s10270-008-0109-9"),
        ),
        authors=("James Cheney", "James McKinna", "Perdita Stevens"),
        reviewers=(),
        comments=(),
        artefacts=(
            Artefact("base bx", "code",
                     "repro.catalogue.uml2rdbms.bx.uml2rdbms_bx",
                     "flat variant, no inheritance"),
            Artefact("inheritance variant", "code",
                     "repro.catalogue.uml2rdbms.bx.uml2rdbms_bx",
                     "pass with_inheritance=True"),
            Artefact("lens form", "code",
                     "repro.catalogue.uml2rdbms.bx.uml2rdbms_lens",
                     "asymmetric rendering for cross-formalism tests"),
        ),
    )
