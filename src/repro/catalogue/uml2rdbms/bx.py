"""The UML ↔ RDBMS bx: base (flat) variant and inheritance variant.

Consistency: ``tables_of_diagram(m) == s`` — the schema is exactly the
image of the diagram's persistent classes.

Forward (diagram authoritative): the schema is simply recomputed — the
view is functionally determined by the diagram, so ``fwd`` ignores the
stale schema (this makes the example naturally *asymmetric*; a lens view
via :func:`uml2rdbms_lens` is provided for the cross-formalism
experiment E13).

Backward (schema authoritative) is where the choices live:

* persistent classes whose table disappeared are deleted (with their
  attribute nodes);
* tables with no class create a fresh persistent class, all attributes
  own, no hierarchy — the information destroyed by flattening cannot be
  re-invented;
* a persistent class whose table changed is *repaired in place*: its own
  attribute set is made to match the table's columns (primary flags from
  the key).  In the inheritance variant, repair **flattens** the class —
  the parent edge is dropped and all columns become own attributes —
  because column provenance (own vs. inherited) is not recorded in the
  schema.  This is precisely a dates-style information loss, so the
  example is *not undoable* (experiment E9's sibling for UML2RDBMS);
* **non-persistent classes are never touched** — they are invisible in
  the schema, and hippocraticness demands leaving them alone.
"""

from __future__ import annotations

from repro.core.bx import Bx
from repro.models.graphs import Graph, GraphEdge
from repro.catalogue.uml2rdbms.models import (
    Table,
    add_class,
    attribute_node,
    diagram_space,
    schema_space,
    sql_to_uml_type,
    tables_of_diagram,
)

__all__ = ["Uml2RdbmsBx", "uml2rdbms_bx", "uml2rdbms_lens"]


class Uml2RdbmsBx(Bx):
    """The class-diagram ↔ relational-schema bx."""

    def __init__(self, with_inheritance: bool = False) -> None:
        self.with_inheritance = with_inheritance
        suffix = "+inheritance" if with_inheritance else ""
        self.name = f"uml2rdbms{suffix}"
        self.left_space = diagram_space(with_inheritance)
        self.right_space = schema_space()

    # ------------------------------------------------------------------
    # Consistency and forward.
    # ------------------------------------------------------------------

    def consistent(self, left: Graph, right: frozenset) -> bool:
        return tables_of_diagram(left, self.with_inheritance) == right

    def fwd(self, left: Graph, right: frozenset) -> frozenset:
        return tables_of_diagram(left, self.with_inheritance)

    # ------------------------------------------------------------------
    # Backward: the interesting direction.
    # ------------------------------------------------------------------

    def bwd(self, left: Graph, right: frozenset) -> Graph:
        by_name = {table.name: table for table in right}
        result = left

        # Pass 1: delete persistent classes whose table is gone.
        for node in left.nodes("Class"):
            if not node.attribute("persistent"):
                continue
            if node.attribute("name") not in by_name:
                result = self._delete_class(result, node.node_id)

        # Pass 2: repair surviving classes named by a table, ancestors
        # first so flattening decisions see the already-repaired
        # hierarchy.  A non-persistent class that now has a table is made
        # persistent (the schema is authoritative about what persists);
        # in consistent states this never fires, preserving
        # hippocraticness.
        for node in self._classes_ancestors_first(result):
            table = by_name.get(node.attribute("name"))
            if table is None:
                continue
            if not node.attribute("persistent"):
                result = result.replace_node(
                    node.with_attribute("persistent", True))
                result = self._repair_class(result, node.node_id, table)
                continue
            current = tables_of_diagram(result, self.with_inheritance)
            if table not in current:
                result = self._repair_class(result, node.node_id, table)

        # Pass 3: create classes for brand-new tables.
        existing = {node.attribute("name")
                    for node in result.nodes("Class")}
        for table in sorted(right, key=lambda t: t.name):
            if table.name not in existing:
                result = add_class(
                    result, table.name, True,
                    [(column, sql_to_uml_type(sql), column in table.key)
                     for column, sql in table.columns])
        return result

    # ------------------------------------------------------------------
    # Defaults.
    # ------------------------------------------------------------------

    def default_left(self) -> Graph:
        return Graph()

    def default_right(self) -> frozenset:
        return frozenset()

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _classes_ancestors_first(self, diagram: Graph) -> list:
        """Classes ordered so that parents precede children."""
        nodes = diagram.nodes("Class")
        order: list = []
        placed: set[str] = set()

        def place(node) -> None:
            if node.node_id in placed:
                return
            for parent in diagram.targets(node.node_id, "parent"):
                place(parent)
            placed.add(node.node_id)
            order.append(node)

        for node in nodes:
            place(node)
        return order

    def _delete_class(self, diagram: Graph, class_id: str) -> Graph:
        """Delete a class node with its attribute nodes and edges."""
        result = diagram
        for attr in diagram.targets(class_id, "attrs"):
            result = result.remove_node(attr.node_id)
        return result.remove_node(class_id)

    def _repair_class(self, diagram: Graph, class_id: str,
                      table: Table) -> Graph:
        """Make a class's image equal to ``table``, flattening if needed."""
        result = diagram
        # Drop the parent edge (inheritance variant): provenance of the
        # columns is unknowable from the schema, so the repaired class
        # owns everything.
        for edge in list(result.out_edges(class_id, "parent")):
            result = result.remove_edge(edge)
        # Replace own attributes with exactly the table's columns.
        for attr in result.targets(class_id, "attrs"):
            result = result.remove_node(attr.node_id)
        class_name = result.node(class_id).attribute("name")
        for column, sql_type in table.columns:
            node = attribute_node(class_name, column,
                                  sql_to_uml_type(sql_type),
                                  column in table.key)
            result = result.add_node(node)
            result = result.add_edge(
                GraphEdge(class_id, "attrs", node.node_id))
        return result


def uml2rdbms_bx(with_inheritance: bool = False) -> Uml2RdbmsBx:
    """Factory for the UML ↔ RDBMS bx (stable public name)."""
    return Uml2RdbmsBx(with_inheritance)


def uml2rdbms_lens(with_inheritance: bool = False):
    """The same transformation as an asymmetric lens (diagram source).

    ``get`` computes the schema; ``put`` is the bx's backward direction;
    ``create`` builds a diagram of flat persistent classes.  Used by the
    cross-formalism agreement experiment (E13).
    """
    from repro.core.lens import FunctionalLens

    bx = Uml2RdbmsBx(with_inheritance)
    return FunctionalLens(
        name=f"{bx.name}-lens",
        source_space=bx.left_space,
        view_space=bx.right_space,
        get=lambda diagram: bx.fwd(diagram, frozenset()),
        put=lambda schema, diagram: bx.bwd(diagram, schema),
        create=lambda schema: bx.bwd(Graph(), schema),
    )
