"""Tree models: immutable labelled ordered trees (XML-ish).

Used by catalogue examples whose models are documents, and by the wiki
synchronisation bx (§5.4), whose structured side parses wiki markup into a
tree of sections and fields.

A :class:`Node` has a label, a mapping of attributes (stored as a sorted
tuple of pairs so nodes stay hashable), optional text content, and a tuple
of children.  All update helpers return new trees.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.models.space import ModelSpace

__all__ = ["Node", "TreeSpace"]


class Node:
    """An immutable labelled ordered tree node."""

    __slots__ = ("label", "_attributes", "text", "children")

    def __init__(self, label: str,
                 attributes: Mapping[str, str] | None = None,
                 text: str = "",
                 children: Iterable["Node"] = ()) -> None:
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_attributes",
                           tuple(sorted((attributes or {}).items())))
        object.__setattr__(self, "text", text)
        object.__setattr__(self, "children", tuple(children))

    @property
    def attributes(self) -> dict[str, str]:
        """Attributes as a fresh dict (mutating it cannot affect the node)."""
        return dict(self._attributes)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("tree nodes are immutable; use with_* helpers")

    # ------------------------------------------------------------------
    # Pure update helpers.
    # ------------------------------------------------------------------

    def with_text(self, text: str) -> "Node":
        return Node(self.label, self.attributes, text, self.children)

    def with_attribute(self, name: str, value: str) -> "Node":
        updated = self.attributes
        updated[name] = value
        return Node(self.label, updated, self.text, self.children)

    def with_children(self, children: Iterable["Node"]) -> "Node":
        return Node(self.label, self.attributes, self.text, children)

    def append_child(self, child: "Node") -> "Node":
        return self.with_children(self.children + (child,))

    def replace_child(self, index: int, child: "Node") -> "Node":
        children = list(self.children)
        children[index] = child
        return self.with_children(children)

    def remove_child(self, index: int) -> "Node":
        children = list(self.children)
        del children[index]
        return self.with_children(children)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def find(self, label: str) -> "Node | None":
        """First child (not descendant) with the given label, or None."""
        for child in self.children:
            if child.label == label:
                return child
        return None

    def find_all(self, label: str) -> list["Node"]:
        """All children with the given label, in order."""
        return [child for child in self.children if child.label == label]

    def walk(self) -> Iterator["Node"]:
        """Depth-first pre-order traversal of the subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def size(self) -> int:
        """Number of nodes in the subtree."""
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        """Height of the subtree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def map_nodes(self, transform: Callable[["Node"], "Node"]) -> "Node":
        """Bottom-up structural map over the subtree."""
        rebuilt = self.with_children(
            child.map_nodes(transform) for child in self.children)
        return transform(rebuilt)

    # ------------------------------------------------------------------
    # Value semantics.
    # ------------------------------------------------------------------

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Node)
                and self.label == other.label
                and self._attributes == other._attributes
                and self.text == other.text
                and self.children == other.children)

    def __hash__(self) -> int:
        return hash((self.label, self._attributes, self.text, self.children))

    def __repr__(self) -> str:
        bits = [repr(self.label)]
        if self._attributes:
            bits.append(f"attrs={dict(self._attributes)!r}")
        if self.text:
            bits.append(f"text={self.text!r}")
        if self.children:
            bits.append(f"children={len(self.children)}")
        return f"Node({', '.join(bits)})"

    def pretty(self, indent: int = 0) -> str:
        """Multi-line indented rendering for diagnostics."""
        pad = "  " * indent
        attrs = "".join(f" {k}={v!r}" for k, v in self._attributes)
        text = f" {self.text!r}" if self.text else ""
        lines = [f"{pad}<{self.label}{attrs}>{text}"]
        lines.extend(child.pretty(indent + 1) for child in self.children)
        return "\n".join(lines)


class TreeSpace(ModelSpace):
    """The space of trees over given label and text alphabets.

    Sampling produces trees bounded by ``max_depth`` and ``max_children``;
    membership checks labels and recursion depth only, so restored trees of
    any width remain members.
    """

    def __init__(self, labels: Iterable[str],
                 texts: Iterable[str] = ("", "x", "hello"),
                 max_depth: int = 3, max_children: int = 3,
                 name: str | None = None) -> None:
        self.labels = tuple(labels)
        if not self.labels:
            raise ValueError("TreeSpace needs at least one label")
        self.texts = tuple(texts)
        self.max_depth = max_depth
        self.max_children = max_children
        self.name = name or f"tree[{','.join(self.labels[:3])}...]"

    def contains(self, value: Any) -> bool:
        if not isinstance(value, Node):
            return False
        if value.depth() > self.max_depth:
            return False
        return all(node.label in self.labels for node in value.walk())

    def sample(self, rng: random.Random) -> Node:
        return self._sample_node(rng, self.max_depth)

    def _sample_node(self, rng: random.Random, budget: int) -> Node:
        label = rng.choice(self.labels)
        text = rng.choice(self.texts)
        if budget <= 1:
            return Node(label, text=text)
        count = rng.randint(0, self.max_children)
        children = [self._sample_node(rng, budget - 1) for _ in range(count)]
        return Node(label, text=text, children=children)
