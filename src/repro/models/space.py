"""Model spaces: the typed universes that bidirectional transformations relate.

The BX 2014 repository paper describes an example as defining "two or more
classes of models, together with a consistency relation between them, and
appropriate consistency restoration functions" (after Stevens).  A *model
space* is our rendering of "a class of models": a set-like object that knows

* membership (``contains``) — is this Python value one of my models?
* validation (``validate``) — like ``contains`` but explains failures;
* sampling (``sample``) — draw a pseudo-random member from a seeded RNG,
  which is what the law-checking harness uses to hunt counterexamples;
* optionally enumeration (``enumerate_members``) for small finite spaces,
  enabling exhaustive law checking.

Because Python is dynamically typed, model spaces are how the library
recovers the typing discipline that lens laws assume: every bx is typed by
two spaces, and the law harness checks membership at every boundary.
"""

from __future__ import annotations

import itertools
import random
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator
from typing import Any, Callable

from repro.core.errors import ModelSpaceError

__all__ = [
    "ModelSpace",
    "FiniteSpace",
    "PredicateSpace",
    "ProductSpace",
    "SumSpace",
    "MappedSpace",
    "UniversalSpace",
    "IntRangeSpace",
    "TextSpace",
]


class ModelSpace(ABC):
    """Abstract base class for model spaces.

    Subclasses must implement :meth:`contains` and :meth:`sample`.  Spaces
    are immutable descriptions; all state needed to draw samples comes from
    the ``rng`` argument so that checking runs are reproducible.
    """

    #: Human-readable name used in reports and error messages.
    name: str = "model space"

    @abstractmethod
    def contains(self, value: Any) -> bool:
        """Return True if ``value`` is a member of this space."""

    @abstractmethod
    def sample(self, rng: random.Random) -> Any:
        """Draw a pseudo-random member using ``rng``.

        Implementations must be deterministic functions of the RNG state, so
        that a seeded checking run is exactly reproducible.
        """

    def validate(self, value: Any) -> None:
        """Raise :class:`ModelSpaceError` if ``value`` is not a member.

        Subclasses with structured members should override this to produce a
        diagnostic that says *why* membership fails, not merely that it does.
        """
        if not self.contains(value):
            raise ModelSpaceError(self, value)

    def is_finite(self) -> bool:
        """Return True if this space supports exhaustive enumeration."""
        return False

    def enumerate_members(self) -> Iterator[Any]:
        """Yield every member, for finite spaces only.

        The default raises; finite spaces override.  The law harness uses
        this to upgrade randomized checking to exhaustive checking when the
        space is small enough.
        """
        raise ModelSpaceError(self, None, "space is not enumerable")

    def sample_many(self, rng: random.Random, count: int) -> list[Any]:
        """Draw ``count`` members (with repetition possible)."""
        return [self.sample(rng) for _ in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class FiniteSpace(ModelSpace):
    """A space given by an explicit, finite collection of members.

    Members must be hashable (membership is a set lookup) unless
    ``hashable=False`` is passed, in which case membership degrades to a
    linear scan with equality.
    """

    def __init__(self, members: Iterable[Any], name: str = "finite space",
                 hashable: bool = True) -> None:
        self.name = name
        self._members = list(members)
        if not self._members:
            raise ValueError("a FiniteSpace must have at least one member")
        self._member_set = set(self._members) if hashable else None

    def contains(self, value: Any) -> bool:
        if self._member_set is not None:
            try:
                return value in self._member_set
            except TypeError:
                return False
        return any(value == member for member in self._members)

    def sample(self, rng: random.Random) -> Any:
        return rng.choice(self._members)

    def is_finite(self) -> bool:
        return True

    def enumerate_members(self) -> Iterator[Any]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)


class PredicateSpace(ModelSpace):
    """A space defined by a membership predicate plus a sampler.

    This is the escape hatch for spaces that are easiest to describe by a
    characteristic function, e.g. "all well-formed relational databases over
    schema S".
    """

    def __init__(self, predicate: Callable[[Any], bool],
                 sampler: Callable[[random.Random], Any],
                 name: str = "predicate space",
                 explain: Callable[[Any], str] | None = None) -> None:
        self.name = name
        self._predicate = predicate
        self._sampler = sampler
        self._explain = explain

    def contains(self, value: Any) -> bool:
        return bool(self._predicate(value))

    def validate(self, value: Any) -> None:
        if not self.contains(value):
            reason = self._explain(value) if self._explain else ""
            raise ModelSpaceError(self, value, reason)

    def sample(self, rng: random.Random) -> Any:
        value = self._sampler(rng)
        if not self.contains(value):
            raise ModelSpaceError(
                self, value, "sampler produced a non-member; sampler is buggy")
        return value


class ProductSpace(ModelSpace):
    """Cartesian product of spaces; members are tuples."""

    def __init__(self, *factors: ModelSpace, name: str | None = None) -> None:
        if not factors:
            raise ValueError("ProductSpace needs at least one factor")
        self.factors = tuple(factors)
        self.name = name or " x ".join(f.name for f in factors)

    def contains(self, value: Any) -> bool:
        if not isinstance(value, tuple) or len(value) != len(self.factors):
            return False
        return all(space.contains(item)
                   for space, item in zip(self.factors, value,
                                          strict=True))

    def sample(self, rng: random.Random) -> tuple:
        return tuple(space.sample(rng) for space in self.factors)

    def is_finite(self) -> bool:
        return all(space.is_finite() for space in self.factors)

    def enumerate_members(self) -> Iterator[tuple]:
        if not self.is_finite():
            raise ModelSpaceError(self, None, "some factor is not enumerable")
        return itertools.product(
            *(space.enumerate_members() for space in self.factors))


class SumSpace(ModelSpace):
    """Tagged disjoint union of spaces; members are ``(tag, value)`` pairs."""

    def __init__(self, variants: dict[str, ModelSpace],
                 name: str | None = None) -> None:
        if not variants:
            raise ValueError("SumSpace needs at least one variant")
        self.variants = dict(variants)
        self.name = name or " + ".join(self.variants)

    def contains(self, value: Any) -> bool:
        if not isinstance(value, tuple) or len(value) != 2:
            return False
        tag, inner = value
        space = self.variants.get(tag)
        return space is not None and space.contains(inner)

    def sample(self, rng: random.Random) -> tuple[str, Any]:
        tag = rng.choice(sorted(self.variants))
        return (tag, self.variants[tag].sample(rng))

    def is_finite(self) -> bool:
        return all(space.is_finite() for space in self.variants.values())

    def enumerate_members(self) -> Iterator[tuple[str, Any]]:
        if not self.is_finite():
            raise ModelSpaceError(self, None, "some variant is not enumerable")
        for tag in sorted(self.variants):
            for inner in self.variants[tag].enumerate_members():
                yield (tag, inner)


class MappedSpace(ModelSpace):
    """The image of a space under a bijection.

    Useful for wrapping raw tuple spaces into domain objects: provide
    ``forward`` (raw -> member) and ``backward`` (member -> raw), plus a
    membership check on the wrapped representation.
    """

    def __init__(self, base: ModelSpace,
                 forward: Callable[[Any], Any],
                 backward: Callable[[Any], Any],
                 contains: Callable[[Any], bool],
                 name: str | None = None) -> None:
        self.base = base
        self._forward = forward
        self._backward = backward
        self._contains = contains
        self.name = name or f"mapped({base.name})"

    def contains(self, value: Any) -> bool:
        if not self._contains(value):
            return False
        return self.base.contains(self._backward(value))

    def sample(self, rng: random.Random) -> Any:
        return self._forward(self.base.sample(rng))

    def is_finite(self) -> bool:
        return self.base.is_finite()

    def enumerate_members(self) -> Iterator[Any]:
        for raw in self.base.enumerate_members():
            yield self._forward(raw)


class UniversalSpace(ModelSpace):
    """The space of all Python values.  Membership is always true.

    Sampling draws from a small pool of representative values; this space is
    mainly for tests and for bx whose domain genuinely is unconstrained.
    """

    _POOL: tuple[Any, ...] = (None, 0, 1, -1, "", "x", (), (1, 2), True, False)

    def __init__(self, name: str = "any") -> None:
        self.name = name

    def contains(self, value: Any) -> bool:
        return True

    def sample(self, rng: random.Random) -> Any:
        return rng.choice(self._POOL)


class IntRangeSpace(ModelSpace):
    """Integers in ``[low, high]`` inclusive."""

    def __init__(self, low: int, high: int, name: str | None = None) -> None:
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        self.low = low
        self.high = high
        self.name = name or f"int[{low}..{high}]"

    def contains(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) \
            and self.low <= value <= self.high

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)

    def is_finite(self) -> bool:
        return True

    def enumerate_members(self) -> Iterator[int]:
        return iter(range(self.low, self.high + 1))


class TextSpace(ModelSpace):
    """Strings over an alphabet, with lengths in ``[min_length, max_length]``."""

    def __init__(self, alphabet: str = "abcdefghijklmnopqrstuvwxyz",
                 min_length: int = 0, max_length: int = 12,
                 name: str | None = None) -> None:
        if min_length < 0 or min_length > max_length:
            raise ValueError("invalid length bounds")
        if not alphabet and max_length > 0:
            raise ValueError("empty alphabet cannot produce non-empty strings")
        self.alphabet = alphabet
        self.min_length = min_length
        self.max_length = max_length
        self.name = name or f"text[{min_length}..{max_length}]"
        self._letters = set(alphabet)

    def contains(self, value: Any) -> bool:
        if not isinstance(value, str):
            return False
        if not self.min_length <= len(value) <= self.max_length:
            return False
        return all(ch in self._letters for ch in value)

    def sample(self, rng: random.Random) -> str:
        length = rng.randint(self.min_length, self.max_length)
        return "".join(rng.choice(self.alphabet) for _ in range(length))

    def is_finite(self) -> bool:
        # Exponential, but technically finite; only enumerate tiny spaces.
        return len(self.alphabet) ** self.max_length <= 10_000

    def enumerate_members(self) -> Iterator[str]:
        if not self.is_finite():
            raise ModelSpaceError(self, None, "text space too large to enumerate")
        for length in range(self.min_length, self.max_length + 1):
            for combo in itertools.product(self.alphabet, repeat=length):
                yield "".join(combo)
