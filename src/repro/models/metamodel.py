"""Metamodels: precise descriptions of what counts as a model.

The template's Models field invites "(formal) expressions of their
meta-models", with "model" and "meta-model" read inclusively: "any
appropriately precise description of the information sources being
transformed is acceptable."  This module gives catalogue examples a way to
make that description executable for graph-shaped models:

* :class:`ClassDef` — a node type: required attributes (each typed by a
  :class:`~repro.models.space.ModelSpace`) and outgoing reference
  definitions with multiplicities;
* :class:`ReferenceDef` — an edge label with target type and multiplicity
  bounds;
* :class:`Metamodel` — a set of class definitions; :meth:`check` returns a
  list of conformance problems for a graph, and :meth:`conforms` is the
  boolean view.

Record- and relation-shaped models carry their typing in
:class:`~repro.models.records.RecordType` and
:class:`~repro.models.relational.RelationSchema`; this module is the
analogue for graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import MetamodelError
from repro.models.graphs import Graph
from repro.models.space import ModelSpace

__all__ = ["ReferenceDef", "ClassDef", "Metamodel"]


@dataclass(frozen=True)
class ReferenceDef:
    """An outgoing reference: edge label, target class, multiplicity.

    ``upper=None`` means unbounded (``*``).
    """

    label: str
    target: str
    lower: int = 0
    upper: int | None = None

    def multiplicity(self) -> str:
        upper = "*" if self.upper is None else str(self.upper)
        return f"{self.lower}..{upper}"


@dataclass(frozen=True)
class AttributeDef:
    """A required node attribute with its value space."""

    name: str
    space: ModelSpace


class ClassDef:
    """A node type: attributes and references it must carry."""

    def __init__(self, name: str,
                 attributes: Iterable[AttributeDef] = (),
                 references: Iterable[ReferenceDef] = (),
                 abstract: bool = False) -> None:
        self.name = name
        self.attributes = tuple(attributes)
        self.references = tuple(references)
        self.abstract = abstract

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ClassDef {self.name}>"


class Metamodel:
    """A named collection of class definitions, with conformance checking."""

    def __init__(self, name: str, classes: Iterable[ClassDef]) -> None:
        self.name = name
        self.classes = {c.name: c for c in classes}
        if not self.classes:
            raise MetamodelError(f"metamodel {name!r} needs >= 1 class")
        # Validate reference targets up front.
        for class_def in self.classes.values():
            for ref in class_def.references:
                if ref.target not in self.classes:
                    raise MetamodelError(
                        f"{name}.{class_def.name}.{ref.label}: unknown "
                        f"target class {ref.target!r}")

    def class_def(self, name: str) -> ClassDef:
        try:
            return self.classes[name]
        except KeyError:
            known = ", ".join(sorted(self.classes))
            raise MetamodelError(
                f"metamodel {self.name!r} has no class {name!r}; "
                f"known: {known}") from None

    def check(self, graph: Graph) -> list[str]:
        """Return all conformance problems (empty list = conforms)."""
        problems: list[str] = []
        for node in graph.nodes():
            class_def = self.classes.get(node.node_type)
            if class_def is None:
                problems.append(
                    f"node {node.node_id!r} has unknown type "
                    f"{node.node_type!r}")
                continue
            if class_def.abstract:
                problems.append(
                    f"node {node.node_id!r} instantiates abstract class "
                    f"{class_def.name!r}")
            for attr in class_def.attributes:
                value = node.attribute(attr.name, default=_MISSING)
                if value is _MISSING:
                    problems.append(
                        f"node {node.node_id!r} missing attribute "
                        f"{attr.name!r}")
                elif not attr.space.contains(value):
                    problems.append(
                        f"node {node.node_id!r}.{attr.name}: {value!r} "
                        f"not in {attr.space.name}")
            declared = {ref.label: ref for ref in class_def.references}
            for ref in class_def.references:
                targets = graph.targets(node.node_id, ref.label)
                count = len(targets)
                if count < ref.lower or (ref.upper is not None
                                         and count > ref.upper):
                    problems.append(
                        f"node {node.node_id!r}.{ref.label}: {count} "
                        f"targets, multiplicity {ref.multiplicity()}")
                for target in targets:
                    if target.node_type != ref.target:
                        problems.append(
                            f"node {node.node_id!r}.{ref.label}: target "
                            f"{target.node_id!r} has type "
                            f"{target.node_type!r}, expected {ref.target!r}")
            for edge in graph.out_edges(node.node_id):
                if edge.label not in declared:
                    problems.append(
                        f"node {node.node_id!r} has undeclared edge label "
                        f"{edge.label!r}")
        return problems

    def conforms(self, graph: Graph) -> bool:
        """True if the graph has no conformance problems."""
        return not self.check(graph)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Metamodel {self.name} ({len(self.classes)} classes)>"


class _Missing:
    """Sentinel distinguishing absent attributes from explicit None."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<missing>"


_MISSING = _Missing()
