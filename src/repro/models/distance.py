"""Edit distances on models, for least-change properties and metrics.

The authors' motivating project is *A Theory of Least Change for
Bidirectional Transformations*; the repository template anticipates
property claims such as least change, which need a metric on each model
space.  This module provides the standard distances for the model kinds in
:mod:`repro.models`:

* :func:`sequence_edit_distance` — Levenshtein on tuples (insert, delete,
  substitute all cost 1);
* :func:`set_distance` — symmetric-difference cardinality on (frozen)sets;
* :func:`record_distance` — number of differing fields between two records;
* :func:`mapping_distance` — add/remove/change counts between dicts;
* :func:`tree_distance` — a simple top-down tree edit distance for
  :mod:`repro.models.trees` nodes.

All distances are true metrics on their domains (identity, symmetry,
triangle inequality); ``tests/models/test_distance.py`` property-checks
this with hypothesis.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = [
    "sequence_edit_distance",
    "set_distance",
    "record_distance",
    "mapping_distance",
    "tree_distance",
]


def sequence_edit_distance(old: Sequence[Any], new: Sequence[Any]) -> int:
    """Levenshtein distance between two sequences (unit costs)."""
    rows = len(old)
    cols = len(new)
    if rows == 0:
        return cols
    if cols == 0:
        return rows
    previous = list(range(cols + 1))
    for i in range(1, rows + 1):
        current = [i] + [0] * cols
        for j in range(1, cols + 1):
            substitution = previous[j - 1] + (0 if old[i - 1] == new[j - 1]
                                              else 1)
            current[j] = min(previous[j] + 1,      # delete
                             current[j - 1] + 1,   # insert
                             substitution)
        previous = current
    return previous[cols]


def set_distance(old: frozenset | set, new: frozenset | set) -> int:
    """Cardinality of the symmetric difference."""
    return len(set(old) ^ set(new))


def record_distance(old: Any, new: Any) -> int:
    """Number of fields on which two records (same type) differ.

    Records of different types are at distance ``max fields + 1`` — farther
    apart than any same-type pair can be.
    """
    from repro.models.records import Record

    if not isinstance(old, Record) or not isinstance(new, Record):
        raise TypeError("record_distance expects Record values")
    if old.record_type.name != new.record_type.name:
        return max(len(old.as_tuple()), len(new.as_tuple())) + 1
    return sum(1 for mine, theirs in zip(old.as_tuple(), new.as_tuple(),
                                         strict=False)
               if mine != theirs)


def mapping_distance(old: Mapping[Any, Any], new: Mapping[Any, Any]) -> int:
    """Keys added + keys removed + keys whose value changed."""
    old_keys = set(old)
    new_keys = set(new)
    added = len(new_keys - old_keys)
    removed = len(old_keys - new_keys)
    changed = sum(1 for key in old_keys & new_keys if old[key] != new[key])
    return added + removed + changed


def tree_distance(old: Any, new: Any) -> int:
    """A simple recursive tree distance for :class:`repro.models.trees.Node`.

    Cost 1 for a label/attribute mismatch at a node, plus a positional
    alignment of children: children are compared pairwise by position, and
    surplus children on either side cost their full size.  Not the optimal
    Zhang-Shasha distance, but a metric, cheap, and adequate for
    least-change comparisons of catalogue-sized trees.
    """
    from repro.models.trees import Node

    if old is None and new is None:
        return 0
    if old is None:
        return _tree_size(new)
    if new is None:
        return _tree_size(old)
    if not isinstance(old, Node) or not isinstance(new, Node):
        raise TypeError("tree_distance expects Node values")
    here = 0 if (old.label == new.label
                 and old.attributes == new.attributes
                 and old.text == new.text) else 1
    total = here
    for mine, theirs in zip(old.children, new.children, strict=False):
        total += tree_distance(mine, theirs)
    for surplus in old.children[len(new.children):]:
        total += _tree_size(surplus)
    for surplus in new.children[len(old.children):]:
        total += _tree_size(surplus)
    return total


def _tree_size(node: Any) -> int:
    from repro.models.trees import Node

    if node is None:
        return 0
    assert isinstance(node, Node)
    return 1 + sum(_tree_size(child) for child in node.children)
