"""Relational models: schemas, instances, and the classic algebra.

The bx literature the paper springs from (Boomerang, relational lenses,
view update) lives in the database world, and the repository itself is "a
curated resource in the sense of Buneman et al.".  This module is the
relational substrate used by the catalogue's database examples
(``repro.catalogue.dbview``) and by the UML↔RDBMS example's right-hand
side:

* :class:`Attribute` — a named, space-typed column;
* :class:`RelationSchema` — attributes plus an optional candidate key;
* :class:`Relation` — an immutable instance: a schema and a frozenset of
  rows (rows are tuples aligned with the schema's attribute order);
* :class:`Database` — a named collection of relations;
* algebra: :func:`project`, :func:`select`, :func:`natural_join`,
  :func:`rename`, :func:`union`, :func:`difference` — enough to express
  the view definitions whose updates the dbview lenses translate.

Key constraints are enforced on construction; violating them raises
:class:`~repro.core.errors.MetamodelError` with the offending rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.core.errors import MetamodelError
from repro.models.space import ModelSpace

__all__ = [
    "Attribute",
    "RelationSchema",
    "Relation",
    "Database",
    "RelationSpace",
    "DatabaseSpace",
    "project",
    "select",
    "natural_join",
    "rename",
    "union",
    "difference",
]


@dataclass(frozen=True)
class Attribute:
    """A relational column: name plus the space of its values."""

    name: str
    space: ModelSpace

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Attribute({self.name!r}: {self.space.name})"


class RelationSchema:
    """A relation schema: ordered attributes and an optional candidate key.

    ``key`` names a subset of attributes; instances must not contain two
    rows agreeing on all key attributes.  ``key=None`` means "whole row is
    the key" (sets already forbid exact duplicates).
    """

    def __init__(self, name: str, attributes: Iterable[Attribute],
                 key: Sequence[str] | None = None) -> None:
        self.name = name
        self.attributes = tuple(attributes)
        if not self.attributes:
            raise MetamodelError(f"schema {name!r} needs >= 1 attribute")
        self.attribute_names = [a.name for a in self.attributes]
        if len(set(self.attribute_names)) != len(self.attribute_names):
            raise MetamodelError(f"schema {name!r} has duplicate attributes")
        self.key = tuple(key) if key is not None else None
        if self.key is not None:
            unknown = [k for k in self.key if k not in self.attribute_names]
            if unknown:
                raise MetamodelError(
                    f"schema {name!r} key names unknown attributes {unknown}")

    def index_of(self, attribute: str) -> int:
        """Position of an attribute in the row tuples."""
        try:
            return self.attribute_names.index(attribute)
        except ValueError:
            raise MetamodelError(
                f"schema {self.name!r} has no attribute {attribute!r}"
            ) from None

    def key_of(self, row: tuple) -> tuple:
        """The key projection of a row (whole row if no declared key)."""
        if self.key is None:
            return row
        return tuple(row[self.index_of(k)] for k in self.key)

    def validate_row(self, row: Any) -> None:
        """Raise unless ``row`` is a well-typed tuple for this schema."""
        if not isinstance(row, tuple) or len(row) != len(self.attributes):
            raise MetamodelError(
                f"schema {self.name!r} expects {len(self.attributes)}-tuples,"
                f" got {row!r}")
        for attribute, value in zip(self.attributes, row, strict=True):
            if not attribute.space.contains(value):
                raise MetamodelError(
                    f"{self.name}.{attribute.name}: {value!r} not in "
                    f"{attribute.space.name}")

    def row_as_dict(self, row: tuple) -> dict[str, Any]:
        return dict(zip(self.attribute_names, row, strict=False))

    def same_shape(self, other: "RelationSchema") -> bool:
        """True if attribute names and order coincide (spaces may differ)."""
        return self.attribute_names == other.attribute_names

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(self.attribute_names)
        key = f" key({', '.join(self.key)})" if self.key else ""
        return f"<RelationSchema {self.name}({cols}){key}>"


class Relation:
    """An immutable relation instance: a schema plus a frozenset of rows."""

    def __init__(self, schema: RelationSchema,
                 rows: Iterable[tuple] = ()) -> None:
        self.schema = schema
        frozen = frozenset(rows)
        for row in frozen:
            schema.validate_row(row)
        if schema.key is not None:
            seen: dict[tuple, tuple] = {}
            for row in sorted(frozen):
                key = schema.key_of(row)
                if key in seen:
                    raise MetamodelError(
                        f"key violation in {schema.name!r}: rows "
                        f"{seen[key]!r} and {row!r} share key {key!r}")
                seen[key] = row
        self.rows = frozen

    def with_rows(self, rows: Iterable[tuple]) -> "Relation":
        """A new instance over the same schema."""
        return Relation(self.schema, rows)

    def insert(self, row: tuple) -> "Relation":
        return self.with_rows(self.rows | {row})

    def delete(self, row: tuple) -> "Relation":
        return self.with_rows(self.rows - {row})

    def contains_row(self, row: tuple) -> bool:
        return row in self.rows

    def column(self, attribute: str) -> frozenset:
        """All values of one attribute."""
        index = self.schema.index_of(attribute)
        return frozenset(row[index] for row in self.rows)

    def rows_as_dicts(self) -> list[dict[str, Any]]:
        """Rows as dicts, sorted for deterministic display."""
        return [self.schema.row_as_dict(row) for row in sorted(self.rows)]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(sorted(self.rows))

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Relation)
                and self.schema.name == other.schema.name
                and self.schema.attribute_names
                == other.schema.attribute_names
                and self.rows == other.rows)

    def __hash__(self) -> int:
        return hash((self.schema.name, tuple(self.schema.attribute_names),
                     self.rows))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Relation {self.schema.name} ({len(self.rows)} rows)>"


class Database:
    """An immutable named collection of relations."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            if relation.schema.name in self._relations:
                raise MetamodelError(
                    f"duplicate relation {relation.schema.name!r}")
            self._relations[relation.schema.name] = relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            known = ", ".join(sorted(self._relations))
            raise MetamodelError(
                f"no relation {name!r}; database has: {known}") from None

    def names(self) -> list[str]:
        return sorted(self._relations)

    def with_relation(self, relation: Relation) -> "Database":
        """A new database with one relation replaced (or added)."""
        updated = dict(self._relations)
        updated[relation.schema.name] = relation
        return Database(updated.values())

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Database)
                and self._relations == other._relations)

    def __hash__(self) -> int:
        return hash(frozenset(self._relations.items()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{name}({len(rel)})"
                          for name, rel in sorted(self._relations.items()))
        return f"<Database {inner}>"


class RelationSpace(ModelSpace):
    """The space of instances of one relation schema, size-bounded sampling."""

    def __init__(self, schema: RelationSchema, min_rows: int = 0,
                 max_rows: int = 8, name: str | None = None) -> None:
        self.schema = schema
        self.min_rows = min_rows
        self.max_rows = max_rows
        self.name = name or f"instances[{schema.name}]"

    def contains(self, value: Any) -> bool:
        if not isinstance(value, Relation):
            return False
        if value.schema.name != self.schema.name:
            return False
        if value.schema.attribute_names != self.schema.attribute_names:
            return False
        try:
            Relation(self.schema, value.rows)
        except MetamodelError:
            return False
        return True

    def sample(self, rng: random.Random) -> Relation:
        target = rng.randint(self.min_rows, self.max_rows)
        rows: dict[tuple, tuple] = {}
        attempts = 0
        while len(rows) < target and attempts < 32 * max(target, 1):
            row = tuple(a.space.sample(rng) for a in self.schema.attributes)
            attempts += 1
            rows.setdefault(self.schema.key_of(row), row)
        return Relation(self.schema, rows.values())

    def empty(self) -> Relation:
        return Relation(self.schema)


class DatabaseSpace(ModelSpace):
    """The space of databases over a fixed set of relation spaces."""

    def __init__(self, relation_spaces: Sequence[RelationSpace],
                 name: str | None = None) -> None:
        self.relation_spaces = tuple(relation_spaces)
        names = [rs.schema.name for rs in self.relation_spaces]
        if len(set(names)) != len(names):
            raise MetamodelError("duplicate schemas in database space")
        self.name = name or "db{" + ", ".join(sorted(names)) + "}"

    def contains(self, value: Any) -> bool:
        if not isinstance(value, Database):
            return False
        expected = sorted(rs.schema.name for rs in self.relation_spaces)
        if value.names() != expected:
            return False
        return all(rs.contains(value.relation(rs.schema.name))
                   for rs in self.relation_spaces)

    def sample(self, rng: random.Random) -> Database:
        return Database(rs.sample(rng) for rs in self.relation_spaces)

    def empty(self) -> Database:
        return Database(rs.empty() for rs in self.relation_spaces)


# ----------------------------------------------------------------------
# Relational algebra (instance level).  Every operation returns a fresh
# Relation over a derived schema; inputs are never modified.
# ----------------------------------------------------------------------

def project(relation: Relation, attributes: Sequence[str],
            schema_name: str | None = None,
            key: Sequence[str] | None = None) -> Relation:
    """Projection onto ``attributes`` (duplicates collapse, as in sets)."""
    indexes = [relation.schema.index_of(a) for a in attributes]
    sub_attrs = [relation.schema.attributes[i] for i in indexes]
    schema = RelationSchema(
        schema_name or f"{relation.schema.name}[{','.join(attributes)}]",
        sub_attrs, key=key)
    return Relation(schema, {tuple(row[i] for i in indexes)
                             for row in relation.rows})


def select(relation: Relation,
           predicate: Callable[[dict[str, Any]], bool],
           schema_name: str | None = None) -> Relation:
    """Selection by a predicate over the row-as-dict."""
    schema = RelationSchema(
        schema_name or relation.schema.name,
        relation.schema.attributes, key=relation.schema.key)
    kept = {row for row in relation.rows
            if predicate(relation.schema.row_as_dict(row))}
    return Relation(schema, kept)


def natural_join(left: Relation, right: Relation,
                 schema_name: str | None = None) -> Relation:
    """Natural join on shared attribute names."""
    shared = [a for a in left.schema.attribute_names
              if a in right.schema.attribute_names]
    right_only = [a for a in right.schema.attribute_names
                  if a not in shared]
    joined_attrs = list(left.schema.attributes) + [
        right.schema.attributes[right.schema.index_of(a)]
        for a in right_only]
    schema = RelationSchema(
        schema_name or f"({left.schema.name}*{right.schema.name})",
        joined_attrs)
    left_shared = [left.schema.index_of(a) for a in shared]
    right_shared = [right.schema.index_of(a) for a in shared]
    right_only_idx = [right.schema.index_of(a) for a in right_only]

    by_key: dict[tuple, list[tuple]] = {}
    for row in right.rows:
        by_key.setdefault(tuple(row[i] for i in right_shared),
                          []).append(row)
    rows = set()
    for row in left.rows:
        key = tuple(row[i] for i in left_shared)
        for partner in by_key.get(key, ()):
            rows.add(row + tuple(partner[i] for i in right_only_idx))
    return Relation(schema, rows)


def rename(relation: Relation, renames: dict[str, str],
           schema_name: str | None = None) -> Relation:
    """Rename attributes; rows are untouched."""
    attributes = [Attribute(renames.get(a.name, a.name), a.space)
                  for a in relation.schema.attributes]
    key = None
    if relation.schema.key is not None:
        key = [renames.get(k, k) for k in relation.schema.key]
    schema = RelationSchema(schema_name or relation.schema.name,
                            attributes, key=key)
    return Relation(schema, relation.rows)


def union(left: Relation, right: Relation) -> Relation:
    """Set union; schemas must have the same shape."""
    if not left.schema.same_shape(right.schema):
        raise MetamodelError(
            f"union of incompatible schemas {left.schema.name!r} and "
            f"{right.schema.name!r}")
    schema = RelationSchema(left.schema.name, left.schema.attributes)
    return Relation(schema, left.rows | right.rows)


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference; schemas must have the same shape."""
    if not left.schema.same_shape(right.schema):
        raise MetamodelError(
            f"difference of incompatible schemas {left.schema.name!r} and "
            f"{right.schema.name!r}")
    return Relation(left.schema, left.rows - right.rows)
