"""Record models: immutable typed records and sets-of-records spaces.

The Composers left model is "a set of (unrelated) objects of class Composer
... each with a name, dates and nationality" — i.e. a *record set*.  This
module provides the generic machinery:

* :class:`FieldDef` — a named, space-typed field;
* :class:`RecordType` — a record shape (ordered fields); produces
  :class:`Record` values and a :class:`ModelSpace` of single records;
* :class:`Record` — an immutable, hashable record value;
* :class:`RecordSetSpace` — the space of *frozensets* of records of one
  type, with size bounds for sampling.

Records are deliberately not plain dataclasses: carrying the
:class:`RecordType` at runtime is what lets metamodel validation, sampling,
and diagnostics work uniformly across catalogue examples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

from repro.core.errors import MetamodelError
from repro.models.space import ModelSpace

__all__ = ["FieldDef", "RecordType", "Record", "RecordSetSpace"]


@dataclass(frozen=True)
class FieldDef:
    """A record field: a name plus the space its values live in."""

    name: str
    space: ModelSpace

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FieldDef({self.name!r}: {self.space.name})"


class Record:
    """An immutable record value tagged with its :class:`RecordType`.

    Field access is attribute-style (``composer.name``) or mapping-style
    (``composer["name"]``).  Equality and hashing are structural over the
    type name and field values, so records work in frozensets and as dict
    keys — which the set-of-records model space requires.
    """

    __slots__ = ("_type", "_values")

    def __init__(self, record_type: "RecordType",
                 values: Mapping[str, Any]) -> None:
        missing = [f.name for f in record_type.fields if f.name not in values]
        extra = [name for name in values
                 if name not in record_type.field_names]
        if missing or extra:
            raise MetamodelError(
                f"record of type {record_type.name!r}: "
                f"missing fields {missing}, unexpected fields {extra}")
        object.__setattr__(self, "_type", record_type)
        object.__setattr__(
            self, "_values",
            tuple(values[f.name] for f in record_type.fields))

    @property
    def record_type(self) -> "RecordType":
        return self._type

    def __getattr__(self, name: str) -> Any:
        try:
            index = self._type.field_names.index(name)
        except ValueError:
            raise AttributeError(name) from None
        return self._values[index]

    def __getitem__(self, name: str) -> Any:
        index = self._type.field_names.index(name)
        return self._values[index]

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("records are immutable; use with_field()")

    def with_field(self, name: str, value: Any) -> "Record":
        """A copy of this record with one field replaced."""
        updated = dict(self.as_dict())
        if name not in updated:
            raise MetamodelError(
                f"record type {self._type.name!r} has no field {name!r}")
        updated[name] = value
        return Record(self._type, updated)

    def as_dict(self) -> dict[str, Any]:
        """The record's fields as a plain dict (field order preserved)."""
        return {f.name: v
                for f, v in zip(self._type.fields, self._values,
                                strict=True)}

    def as_tuple(self) -> tuple:
        """The field values in declaration order."""
        return self._values

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Record)
                and self._type.name == other._type.name
                and self._values == other._values)

    def __hash__(self) -> int:
        return hash((self._type.name, self._values))

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}={v!r}"
                          for f, v in zip(self._type.fields, self._values,
                                          strict=True))
        return f"{self._type.name}({inner})"


class RecordType:
    """A record shape: a name plus ordered, typed fields.

    Doubles as a :class:`ModelSpace` factory: :meth:`space` is the space of
    single records, :meth:`set_space` the space of frozensets of records.
    """

    def __init__(self, name: str, fields: Iterable[FieldDef]) -> None:
        self.name = name
        self.fields = tuple(fields)
        if not self.fields:
            raise MetamodelError(f"record type {name!r} needs >= 1 field")
        self.field_names = [f.name for f in self.fields]
        if len(set(self.field_names)) != len(self.field_names):
            raise MetamodelError(f"record type {name!r} has duplicate fields")

    def make(self, **values: Any) -> Record:
        """Construct a record, validating field values against their spaces."""
        record = Record(self, values)
        self.validate(record)
        return record

    def validate(self, record: Record) -> None:
        """Raise :class:`MetamodelError` unless every field value is typed."""
        if record.record_type.name != self.name:
            raise MetamodelError(
                f"expected {self.name!r} record, got "
                f"{record.record_type.name!r}")
        for fdef, value in zip(self.fields, record.as_tuple(),
                               strict=False):
            if not fdef.space.contains(value):
                raise MetamodelError(
                    f"{self.name}.{fdef.name}: {value!r} not in "
                    f"{fdef.space.name}")

    def contains(self, value: Any) -> bool:
        if not isinstance(value, Record):
            return False
        try:
            self.validate(value)
        except MetamodelError:
            return False
        return True

    def sample(self, rng: random.Random) -> Record:
        return Record(self, {f.name: f.space.sample(rng)
                             for f in self.fields})

    def space(self, name: str | None = None) -> ModelSpace:
        """The model space of single records of this type."""
        return _RecordSpace(self, name or self.name)

    def set_space(self, min_size: int = 0, max_size: int = 8,
                  name: str | None = None) -> "RecordSetSpace":
        """The model space of frozensets of records of this type."""
        return RecordSetSpace(self, min_size, max_size, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RecordType {self.name} ({', '.join(self.field_names)})>"


class _RecordSpace(ModelSpace):
    """Space of single records of one type."""

    def __init__(self, record_type: RecordType, name: str) -> None:
        self.record_type = record_type
        self.name = name

    def contains(self, value: Any) -> bool:
        return self.record_type.contains(value)

    def validate(self, value: Any) -> None:
        if not isinstance(value, Record):
            from repro.core.errors import ModelSpaceError
            raise ModelSpaceError(self, value, "not a Record")
        self.record_type.validate(value)

    def sample(self, rng: random.Random) -> Record:
        return self.record_type.sample(rng)

    def is_finite(self) -> bool:
        return all(f.space.is_finite() for f in self.record_type.fields)

    def enumerate_members(self) -> Iterator[Record]:
        import itertools
        columns = [list(f.space.enumerate_members())
                   for f in self.record_type.fields]
        names = self.record_type.field_names
        for combo in itertools.product(*columns):
            yield Record(self.record_type,
                         dict(zip(names, combo, strict=True)))


class RecordSetSpace(ModelSpace):
    """Space of frozensets of records of one type, size-bounded for sampling.

    Membership does **not** enforce the size bounds (a model with more
    records than the sampler would draw is still a model); bounds only steer
    sampling so law checks stay fast.
    """

    def __init__(self, record_type: RecordType, min_size: int = 0,
                 max_size: int = 8, name: str | None = None) -> None:
        if min_size < 0 or min_size > max_size:
            raise ValueError("invalid size bounds")
        self.record_type = record_type
        self.min_size = min_size
        self.max_size = max_size
        self.name = name or f"set[{record_type.name}]"

    def contains(self, value: Any) -> bool:
        if not isinstance(value, frozenset):
            return False
        return all(self.record_type.contains(item) for item in value)

    def validate(self, value: Any) -> None:
        from repro.core.errors import ModelSpaceError
        if not isinstance(value, frozenset):
            raise ModelSpaceError(self, value, "expected a frozenset")
        for item in value:
            if not self.record_type.contains(item):
                raise ModelSpaceError(
                    self, value, f"element {item!r} is not a valid "
                    f"{self.record_type.name} record")

    def sample(self, rng: random.Random) -> frozenset:
        size = rng.randint(self.min_size, self.max_size)
        members = set()
        attempts = 0
        while len(members) < size and attempts < 32 * max(size, 1):
            members.add(self.record_type.sample(rng))
            attempts += 1
        return frozenset(members)

    def empty(self) -> frozenset:
        """The empty model (useful as a bx default)."""
        return frozenset()
