"""Model substrate: the "classes of models" that bx relate.

Record sets, ordered lists, relational databases, trees, and object graphs
— together with model *spaces* (typed universes supporting membership,
validation, and seeded sampling) and edit distances for least-change
reasoning.
"""

from repro.models.distance import (
    mapping_distance,
    record_distance,
    sequence_edit_distance,
    set_distance,
    tree_distance,
)
from repro.models.graphs import Graph, GraphEdge, GraphNode, GraphSpace
from repro.models.lists import (
    OrderedListSpace,
    append_sorted_block,
    dedupe_preserving_order,
    insert_sorted,
    stable_delete,
)
from repro.models.metamodel import (
    AttributeDef,
    ClassDef,
    Metamodel,
    ReferenceDef,
)
from repro.models.records import FieldDef, Record, RecordSetSpace, RecordType
from repro.models.relational import (
    Attribute,
    Database,
    DatabaseSpace,
    Relation,
    RelationSchema,
    RelationSpace,
    difference,
    natural_join,
    project,
    rename,
    select,
    union,
)
from repro.models.space import (
    FiniteSpace,
    IntRangeSpace,
    MappedSpace,
    ModelSpace,
    PredicateSpace,
    ProductSpace,
    SumSpace,
    TextSpace,
    UniversalSpace,
)
from repro.models.trees import Node, TreeSpace

__all__ = [
    # spaces
    "ModelSpace", "FiniteSpace", "PredicateSpace", "ProductSpace",
    "SumSpace", "MappedSpace", "UniversalSpace", "IntRangeSpace",
    "TextSpace",
    # records
    "FieldDef", "RecordType", "Record", "RecordSetSpace",
    # lists
    "OrderedListSpace", "stable_delete", "append_sorted_block",
    "insert_sorted", "dedupe_preserving_order",
    # relational
    "Attribute", "RelationSchema", "Relation", "Database", "RelationSpace",
    "DatabaseSpace", "project", "select", "natural_join", "rename", "union",
    "difference",
    # trees
    "Node", "TreeSpace",
    # graphs
    "GraphNode", "GraphEdge", "Graph", "GraphSpace",
    # metamodel
    "AttributeDef", "ClassDef", "ReferenceDef", "Metamodel",
    # distances
    "sequence_edit_distance", "set_distance", "record_distance",
    "mapping_distance", "tree_distance",
]
