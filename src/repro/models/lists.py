"""Ordered-list models: the space of tuples, with order-aware helpers.

The Composers right model is "an ordered list of pairs, each comprising a
name and a nationality".  :class:`OrderedListSpace` is the generic space of
bounded-length tuples over an element space, with helpers the catalogue
restoration functions need: stable deletion, ordered insertion, duplicate
detection — all pure (inputs never mutated, tuples returned).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterator, Sequence

from repro.models.space import ModelSpace

__all__ = [
    "OrderedListSpace",
    "stable_delete",
    "append_sorted_block",
    "insert_sorted",
    "dedupe_preserving_order",
]


class OrderedListSpace(ModelSpace):
    """Tuples of members of ``element_space``; order and multiplicity matter.

    ``unique`` restricts membership to duplicate-free lists.  As with
    :class:`~repro.models.records.RecordSetSpace`, the length bounds steer
    sampling only — membership accepts any length so that restoration
    results of unusual size still validate.
    """

    def __init__(self, element_space: ModelSpace, min_length: int = 0,
                 max_length: int = 8, unique: bool = False,
                 name: str | None = None) -> None:
        if min_length < 0 or min_length > max_length:
            raise ValueError("invalid length bounds")
        self.element_space = element_space
        self.min_length = min_length
        self.max_length = max_length
        self.unique = unique
        self.name = name or f"list[{element_space.name}]"

    def contains(self, value: Any) -> bool:
        if not isinstance(value, tuple):
            return False
        if not all(self.element_space.contains(item) for item in value):
            return False
        if self.unique and len(set(value)) != len(value):
            return False
        return True

    def validate(self, value: Any) -> None:
        from repro.core.errors import ModelSpaceError
        if not isinstance(value, tuple):
            raise ModelSpaceError(self, value, "expected a tuple")
        for item in value:
            if not self.element_space.contains(item):
                raise ModelSpaceError(
                    self, value,
                    f"element {item!r} not in {self.element_space.name}")
        if self.unique and len(set(value)) != len(value):
            raise ModelSpaceError(self, value, "duplicates not allowed")

    def sample(self, rng: random.Random) -> tuple:
        length = rng.randint(self.min_length, self.max_length)
        if not self.unique:
            return tuple(self.element_space.sample(rng)
                         for _ in range(length))
        seen: list[Any] = []
        attempts = 0
        while len(seen) < length and attempts < 32 * max(length, 1):
            candidate = self.element_space.sample(rng)
            attempts += 1
            if candidate not in seen:
                seen.append(candidate)
        return tuple(seen)

    def empty(self) -> tuple:
        """The empty list model."""
        return ()

    def is_finite(self) -> bool:
        if not self.element_space.is_finite():
            return False
        size = len(list(self.element_space.enumerate_members()))
        return size ** self.max_length <= 10_000

    def enumerate_members(self) -> Iterator[tuple]:
        import itertools
        elements = list(self.element_space.enumerate_members())
        for length in range(self.min_length, self.max_length + 1):
            for combo in itertools.product(elements, repeat=length):
                if self.unique and len(set(combo)) != len(combo):
                    continue
                yield combo


def stable_delete(items: Sequence[Any],
                  keep: Callable[[Any], bool]) -> tuple:
    """Remove elements failing ``keep`` without disturbing survivor order.

    The Composers forward direction's first clause ("deleting from n any
    entry for which there is no element of m ...") is exactly this shape.
    """
    return tuple(item for item in items if keep(item))


def append_sorted_block(items: Sequence[Any], additions: Sequence[Any],
                        key: Callable[[Any], Any] | None = None) -> tuple:
    """Append ``additions`` as one sorted block at the end of ``items``.

    Matches the Composers forward second clause: new entries go "at the end
    of n ... in alphabetical order" — the existing prefix is untouched, only
    the appended block is sorted.
    """
    block = sorted(additions, key=key) if key else sorted(additions)
    return tuple(items) + tuple(block)


def insert_sorted(items: Sequence[Any], addition: Any,
                  key: Callable[[Any], Any] | None = None) -> tuple:
    """Insert one element at its sorted position (first such position).

    Provided for the Composers *variant* "in an alphabetically determined
    position" — the paper notes this choice sacrifices hippocraticness when
    the user's own ordering was not alphabetical; the variants test exhibits
    exactly that failure.
    """
    sort_key = key or (lambda item: item)
    position = len(items)
    for index, existing in enumerate(items):
        if sort_key(existing) > sort_key(addition):
            position = index
            break
    return tuple(items[:position]) + (addition,) + tuple(items[position:])


def dedupe_preserving_order(items: Sequence[Any]) -> tuple:
    """Drop duplicate elements, keeping first occurrences in order."""
    seen: set[Any] = set()
    result: list[Any] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            result.append(item)
    return tuple(result)
