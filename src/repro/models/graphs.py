"""Object-graph models: typed nodes and labelled edges (for MDE examples).

The "notorious UML class diagram to RDBMS schema example" needs a model
kind richer than records or relations: an *object graph* with typed nodes
(classes, attributes, associations) and labelled edges between them.  This
module provides a small immutable graph representation that the
``repro.catalogue.uml2rdbms`` example builds on, with validation against a
:class:`repro.models.metamodel.Metamodel`.

Nodes are identified by string ids; edges are (source id, label, target
id) triples.  Graphs compare by value.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.core.errors import MetamodelError
from repro.models.space import ModelSpace

__all__ = ["GraphNode", "GraphEdge", "Graph", "GraphSpace"]


@dataclass(frozen=True)
class GraphNode:
    """A typed node: an id, a type name, and attribute values.

    Attributes are stored as a sorted tuple of (name, value) pairs so the
    node is hashable; use :meth:`attribute` / :meth:`as_dict` for access.
    """

    node_id: str
    node_type: str
    attributes: tuple[tuple[str, Any], ...] = ()

    @staticmethod
    def make(node_id: str, node_type: str,
             attributes: Mapping[str, Any] | None = None) -> "GraphNode":
        return GraphNode(node_id, node_type,
                         tuple(sorted((attributes or {}).items())))

    def attribute(self, name: str, default: Any = None) -> Any:
        for key, value in self.attributes:
            if key == name:
                return value
        return default

    def as_dict(self) -> dict[str, Any]:
        return dict(self.attributes)

    def with_attribute(self, name: str, value: Any) -> "GraphNode":
        updated = self.as_dict()
        updated[name] = value
        return GraphNode.make(self.node_id, self.node_type, updated)


@dataclass(frozen=True)
class GraphEdge:
    """A directed labelled edge between two node ids."""

    source: str
    label: str
    target: str


class Graph:
    """An immutable typed graph: nodes by id, plus labelled edges.

    Construction validates referential integrity: every edge endpoint must
    name an existing node.
    """

    def __init__(self, nodes: Iterable[GraphNode] = (),
                 edges: Iterable[GraphEdge] = ()) -> None:
        self._nodes: dict[str, GraphNode] = {}
        for node in nodes:
            if node.node_id in self._nodes:
                raise MetamodelError(f"duplicate node id {node.node_id!r}")
            self._nodes[node.node_id] = node
        self._edges = frozenset(edges)
        for edge in self._edges:
            if edge.source not in self._nodes:
                raise MetamodelError(
                    f"edge {edge} has unknown source {edge.source!r}")
            if edge.target not in self._nodes:
                raise MetamodelError(
                    f"edge {edge} has unknown target {edge.target!r}")

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def node(self, node_id: str) -> GraphNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise MetamodelError(f"no node {node_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def nodes(self, node_type: str | None = None) -> list[GraphNode]:
        """All nodes (sorted by id), optionally filtered by type."""
        selected = (node for node in self._nodes.values()
                    if node_type is None or node.node_type == node_type)
        return sorted(selected, key=lambda node: node.node_id)

    def edges(self, label: str | None = None) -> list[GraphEdge]:
        selected = (edge for edge in self._edges
                    if label is None or edge.label == label)
        return sorted(selected,
                      key=lambda e: (e.source, e.label, e.target))

    def out_edges(self, node_id: str, label: str | None = None
                  ) -> list[GraphEdge]:
        return [edge for edge in self.edges(label) if edge.source == node_id]

    def in_edges(self, node_id: str, label: str | None = None
                 ) -> list[GraphEdge]:
        return [edge for edge in self.edges(label) if edge.target == node_id]

    def targets(self, node_id: str, label: str) -> list[GraphNode]:
        """Nodes reachable from ``node_id`` via one ``label`` edge."""
        return [self.node(edge.target)
                for edge in self.out_edges(node_id, label)]

    # ------------------------------------------------------------------
    # Pure updates.
    # ------------------------------------------------------------------

    def add_node(self, node: GraphNode) -> "Graph":
        return Graph(list(self._nodes.values()) + [node], self._edges)

    def remove_node(self, node_id: str) -> "Graph":
        """Remove a node and every incident edge."""
        nodes = [n for n in self._nodes.values() if n.node_id != node_id]
        edges = [e for e in self._edges
                 if e.source != node_id and e.target != node_id]
        return Graph(nodes, edges)

    def replace_node(self, node: GraphNode) -> "Graph":
        nodes = [node if n.node_id == node.node_id else n
                 for n in self._nodes.values()]
        return Graph(nodes, self._edges)

    def add_edge(self, edge: GraphEdge) -> "Graph":
        return Graph(self._nodes.values(), self._edges | {edge})

    def remove_edge(self, edge: GraphEdge) -> "Graph":
        return Graph(self._nodes.values(), self._edges - {edge})

    # ------------------------------------------------------------------
    # Value semantics.
    # ------------------------------------------------------------------

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, Graph)
                and self._nodes == other._nodes
                and self._edges == other._edges)

    def __hash__(self) -> int:
        return hash((frozenset(self._nodes.items()), self._edges))

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Graph {len(self._nodes)} nodes, {len(self._edges)} edges>"


class GraphSpace(ModelSpace):
    """Graphs over a metamodel; membership delegates to metamodel validation.

    Sampling is delegated to a caller-supplied generator because plausible
    model graphs (e.g. UML diagrams) need domain-aware construction; see
    ``repro.catalogue.uml2rdbms.models`` for one.
    """

    def __init__(self, metamodel: "Any", sampler,
                 name: str | None = None) -> None:
        self.metamodel = metamodel
        self._sampler = sampler
        self.name = name or f"graphs[{metamodel.name}]"

    def contains(self, value: Any) -> bool:
        if not isinstance(value, Graph):
            return False
        return self.metamodel.conforms(value)

    def validate(self, value: Any) -> None:
        from repro.core.errors import ModelSpaceError
        if not isinstance(value, Graph):
            raise ModelSpaceError(self, value, "expected a Graph")
        problems = self.metamodel.check(value)
        if problems:
            raise ModelSpaceError(self, value, "; ".join(problems))

    def sample(self, rng: random.Random) -> Graph:
        return self._sampler(rng)
