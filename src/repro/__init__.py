"""bx-repository: a curated repository of bidirectional transformation examples.

A full reproduction of Cheney, McKinna, Stevens and Gibbons, *Towards a
Repository of Bx Examples* (BX 2014 @ EDBT/ICDT): the §3 entry template,
the §5.1 curation workflow, versioned storage with stable references,
citations, search, wikidot export with the §5.4 wiki-sync bx — plus the
bx formalisms themselves (state-based bx, lenses, symmetric lenses,
delta bx), a law-checking harness, and a catalogue of classic examples
headed by the §4 COMPOSERS instance.

Quickstart::

    from repro import catalogue, repository
    from repro.core import check_bx_properties

    store = repository.MemoryStore()
    catalogue.populate_store(store)
    composers = catalogue.catalogue_example("composers")
    print(repository.render_wikidot(composers.entry()))
    print(composers.verify_claims().summary())
"""

from repro import catalogue, core, harness, models, repository

__version__ = "0.1.0"

__all__ = ["core", "models", "repository", "catalogue", "harness",
           "__version__"]
