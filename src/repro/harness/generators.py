"""Seeded workload generators: models and edit scripts at scale.

The catalogue's model spaces sample *small* models (good for law
checking); benchmarks need models of controlled, possibly large size.
This module generates composer models, pair lists, diagrams and edit
scripts parameterised by size, always from an explicit seed so every
benchmark run is reproducible.
"""

from __future__ import annotations

import random

from repro.catalogue.composers.models import pair_of, raw_composer
from repro.core.delta import Delete, Edit, EditScript, Insert, Update
from repro.models.records import Record

__all__ = [
    "composer_pool",
    "large_composer_model",
    "large_pair_list",
    "consistent_composer_pair",
    "random_pair_edit_script",
    "scaled_names",
]


def scaled_names(count: int) -> list[str]:
    """``count`` distinct synthetic composer-like names, deterministic."""
    return [f"Composer{index:05d}" for index in range(count)]


def composer_pool(size: int, seed: int = 0) -> list[Record]:
    """``size`` distinct composers with synthetic names and random data.

    Uses unconstrained record construction (no pool-membership check) so
    benchmarks can exceed the catalogue's tiny sampling pools; the
    resulting models still satisfy the Composers bx's *structural*
    expectations (records with name/dates/nationality).
    """
    rng = random.Random(seed)
    nationalities = ("British", "English", "Scottish", "Welsh", "Irish")
    composers = []
    for name in scaled_names(size):
        birth = rng.randint(1400, 1950)
        dates = f"{birth}-{birth + rng.randint(20, 80)}"
        composers.append(raw_composer(name, dates,
                                      rng.choice(nationalities)))
    return composers


def large_composer_model(size: int, seed: int = 0) -> frozenset:
    """A left model (set of composers) of exactly ``size`` elements."""
    return frozenset(composer_pool(size, seed))


def large_pair_list(size: int, seed: int = 0,
                    shuffle: bool = True) -> tuple:
    """A right model (pair list) of ``size`` entries, optionally shuffled."""
    rng = random.Random(seed)
    pairs = [pair_of(composer) for composer in composer_pool(size, seed)]
    if shuffle:
        rng.shuffle(pairs)
    return tuple(pairs)


def consistent_composer_pair(size: int,
                             seed: int = 0) -> tuple[frozenset, tuple]:
    """A consistent (m, n) pair of the given size, n in shuffled order."""
    composers = composer_pool(size, seed)
    rng = random.Random(seed + 1)
    pairs = [pair_of(composer) for composer in composers]
    rng.shuffle(pairs)
    return frozenset(composers), tuple(pairs)


def random_pair_edit_script(model: tuple, edits: int, seed: int = 0,
                            add_ratio: float = 0.4,
                            delete_ratio: float = 0.4) -> EditScript:
    """A random edit script against a pair list.

    ``add_ratio``/``delete_ratio`` control the operation mix; the
    remainder are in-place updates (entry replaced by a fresh pair).
    Scripts stay applicable by tracking the evolving length.
    """
    rng = random.Random(seed)
    length = len(model)
    known_pairs = list(model) or [("Composer00000", "British")]
    script: list[Edit] = []
    for _ in range(edits):
        roll = rng.random()
        fresh = (f"Composer{rng.randint(0, 10**5):05d}",
                 rng.choice(("British", "English", "Scottish")))
        if roll < add_ratio or length == 0:
            script.append(Insert(rng.randint(0, length), fresh))
            length += 1
        elif roll < add_ratio + delete_ratio:
            script.append(Delete(rng.randrange(length)))
            length -= 1
        else:
            script.append(Update(rng.randrange(length),
                                 rng.choice(known_pairs + [fresh])))
    return EditScript(script)
