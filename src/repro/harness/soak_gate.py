"""The soak trend gate: fail CI when resilience regresses run-over-run.

A soak that passes says "the stack survived tonight"; the *trend* says
whether surviving got slower.  This gate compares the current soak
report (the ``--json`` output of :mod:`repro.harness.soak`) against the
previous run's artifact and fails — exit code 1 — when recovery
genuinely regressed:

* any fault's **recovery time** grew beyond ``--max-recovery-ratio``
  (default 2.0) times the baseline for the same fault name, provided
  both sides are above a noise floor (``--noise-floor-ms``, default
  50 ms — comparing a 3 ms recovery to a 7 ms one is jitter, not a
  regression);
* **throughput** fell below ``--min-throughput-ratio`` (default 0.5)
  of the baseline;
* the current report itself is red (violations), which fails
  regardless of any baseline.

With no baseline (first nightly, cache miss, new fault names) the gate
passes and says so: a missing history is a bootstrap, not a regression.
The comparison is name-keyed, so adding or removing faults between
runs never trips the gate — only a fault present in *both* reports is
compared.

CI wiring (see ``.github/workflows/ci.yml``): the nightly soak job
restores the previous night's report from the actions cache, runs the
gate, then saves the fresh report under a run-unique key so the next
night restores it by prefix.

Run it directly::

    PYTHONPATH=src python -m repro.harness.soak_gate soak-http.json \
        --baseline previous/soak-http.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Sequence

__all__ = ["compare_reports", "gate", "main"]

#: Below this recovery time (milliseconds) run-to-run scheduler jitter
#: dominates; ratios between two sub-floor numbers are meaningless.
DEFAULT_NOISE_FLOOR_MS = 50.0
DEFAULT_MAX_RECOVERY_RATIO = 2.0
DEFAULT_MIN_THROUGHPUT_RATIO = 0.5


def _fault_recoveries(report: dict[str, Any]) -> dict[str, float]:
    """Per-fault recovery time in milliseconds, keyed by fault name."""
    recoveries: dict[str, float] = {}
    for record in report.get("faults", []):
        recoveries[record["name"]] = record["recovery_seconds"] * 1e3
    return recoveries


def compare_reports(
    current: dict[str, Any],
    baseline: dict[str, Any],
    *,
    max_recovery_ratio: float = DEFAULT_MAX_RECOVERY_RATIO,
    min_throughput_ratio: float = DEFAULT_MIN_THROUGHPUT_RATIO,
    noise_floor_ms: float = DEFAULT_NOISE_FLOOR_MS,
) -> list[str]:
    """Regressions of ``current`` against ``baseline`` (empty = pass)."""
    regressions: list[str] = []
    base_recoveries = _fault_recoveries(baseline)
    for name, recovery_ms in sorted(_fault_recoveries(current).items()):
        base_ms = base_recoveries.get(name)
        if base_ms is None:
            continue  # new fault: no history to regress against
        if recovery_ms <= noise_floor_ms:
            continue  # fast either way; ratios below the floor are jitter
        threshold = max(base_ms, noise_floor_ms) * max_recovery_ratio
        if recovery_ms > threshold:
            regressions.append(
                f"fault {name!r}: recovery {recovery_ms:.0f} ms is "
                f"worse than {max_recovery_ratio:.1f}x the previous "
                f"{base_ms:.0f} ms")
    current_ops = float(current.get("throughput_ops", 0.0))
    baseline_ops = float(baseline.get("throughput_ops", 0.0))
    if baseline_ops > 0 and current_ops < baseline_ops * min_throughput_ratio:
        regressions.append(
            f"throughput {current_ops:.0f} ops/s fell below "
            f"{min_throughput_ratio:.2f}x the previous "
            f"{baseline_ops:.0f} ops/s")
    return regressions


def gate(
    current_path: Path,
    baseline_path: Path | None,
    *,
    max_recovery_ratio: float = DEFAULT_MAX_RECOVERY_RATIO,
    min_throughput_ratio: float = DEFAULT_MIN_THROUGHPUT_RATIO,
    noise_floor_ms: float = DEFAULT_NOISE_FLOOR_MS,
    out=None,
) -> int:
    """Compare one report pair; 0 = pass, 1 = regression/red report."""
    if out is None:
        out = sys.stdout
    current = json.loads(current_path.read_text())
    label = current_path.name
    if current.get("violations"):
        print(f"{label}: soak itself is red "
              f"({len(current['violations'])} violation(s)); "
              f"the gate does not compare broken runs", file=out)
        return 1
    if baseline_path is None or not baseline_path.exists():
        print(f"{label}: no previous soak artifact — trend bootstrap, "
              f"gate passes", file=out)
        return 0
    baseline = json.loads(baseline_path.read_text())
    regressions = compare_reports(
        current, baseline,
        max_recovery_ratio=max_recovery_ratio,
        min_throughput_ratio=min_throughput_ratio,
        noise_floor_ms=noise_floor_ms)
    if regressions:
        print(f"{label}: REGRESSED vs {baseline_path}:", file=out)
        for regression in regressions:
            print(f"  - {regression}", file=out)
        return 1
    compared = sorted(set(_fault_recoveries(current))
                      & set(_fault_recoveries(baseline)))
    print(f"{label}: trend OK vs {baseline_path} "
          f"({len(compared)} fault(s) compared: {', '.join(compared)}; "
          f"throughput {current.get('throughput_ops', 0):.0f} vs "
          f"{baseline.get('throughput_ops', 0):.0f} ops/s)", file=out)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.soak_gate",
        description="Fail when a soak report regresses vs the previous "
                    "run's artifact (>2x recovery time or <0.5x "
                    "throughput by default).")
    parser.add_argument("current", type=Path,
                        help="the soak --json report from this run")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="the previous run's report; missing file "
                             "or flag = bootstrap pass")
    parser.add_argument("--max-recovery-ratio", type=float,
                        default=DEFAULT_MAX_RECOVERY_RATIO)
    parser.add_argument("--min-throughput-ratio", type=float,
                        default=DEFAULT_MIN_THROUGHPUT_RATIO)
    parser.add_argument("--noise-floor-ms", type=float,
                        default=DEFAULT_NOISE_FLOOR_MS)
    options = parser.parse_args(argv)
    return gate(
        options.current, options.baseline,
        max_recovery_ratio=options.max_recovery_ratio,
        min_throughput_ratio=options.min_throughput_ratio,
        noise_floor_ms=options.noise_floor_ms)


if __name__ == "__main__":
    sys.exit(main())
