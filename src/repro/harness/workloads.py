"""Benchmark workloads: named scenarios, access patterns, and a corpus
factory.

A :class:`Workload` packages what a benchmark row needs: build the
starting state, perturb it, and name the operation under test.  The
benchmark files in ``benchmarks/`` iterate these definitions so that
every EXPERIMENTS.md row maps to exactly one workload.

Storage benchmarks additionally need realistic *access patterns*:
repository reads are not uniform (a few canonical examples are fetched
constantly, the long tail rarely), so :func:`zipfian_indices` /
:func:`zipfian_identifiers` generate deterministic rank-skewed request
streams for cache-sizing and shard-sweep rows.

Soak runs (:mod:`repro.harness.soak`) need a corpus, not just a stream:
:class:`CorpusSpec` + :func:`corpus_entries` form the **corpus factory**
— 100k+ synthetic bx example entries with realistic Zipf skew over
entry types, claimed properties and authors (a few canonical types and
prolific contributors dominate, with a long tail), generated
deterministically from a seed.  Every entry is addressable by index
(:func:`corpus_entry`), so two processes given the same spec produce
byte-identical corpora (:func:`corpus_digest` proves it) and a failing
soak run is reproducible from ``(seed, index)`` alone.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.catalogue.composers import composers_bx
from repro.core.bx import Bx
from repro.harness.generators import (
    consistent_composer_pair,
    random_pair_edit_script,
)
from repro.repository.entry import (
    ExampleEntry,
    ModelDescription,
    PropertyClaim,
    Reference,
    RestorationSpec,
)
from repro.repository.template import EntryType
from repro.repository.versioning import Version

__all__ = [
    "Workload",
    "SyncResult",
    "composers_fwd_workload",
    "composers_bwd_workload",
    "composers_edit_workload",
    "run_sync_workload",
    "zipfian_indices",
    "zipfian_identifiers",
    "DEFAULT_SIZES",
    "CorpusSpec",
    "ZipfPool",
    "corpus_entry",
    "corpus_entries",
    "corpus_digest",
    "corpus_author_pool",
    "CORPUS_TYPE_RANKS",
    "CORPUS_PROPERTY_RANKS",
]

#: Model sizes for scaling rows (E14).
DEFAULT_SIZES: tuple[int, ...] = (10, 100, 1000)


@dataclass(frozen=True)
class Workload:
    """A named scenario: setup builds state, operation is what we time."""

    name: str
    size: int
    setup: Callable[[], Any]
    operation: Callable[[Any], Any]

    def run_once(self) -> Any:
        """Setup and run the operation once (correctness checks, warmup)."""
        return self.operation(self.setup())


@dataclass(frozen=True)
class SyncResult:
    """Outcome of a synchronisation run: sizes before/after, consistency."""

    size_before: int
    size_after: int
    consistent_after: bool


def composers_fwd_workload(size: int, perturbation: int = 10,
                           seed: int = 0,
                           bx: Bx | None = None) -> Workload:
    """Forward restoration after ``perturbation`` edits to the pair list."""
    bx = bx or composers_bx()

    def setup() -> tuple:
        left, right = consistent_composer_pair(size, seed)
        script = random_pair_edit_script(right, perturbation, seed)
        return (left, script.apply(right))

    return Workload(
        name=f"composers-fwd-{size}",
        size=size,
        setup=setup,
        operation=lambda state: bx.fwd(*state))


def composers_bwd_workload(size: int, perturbation: int = 10,
                           seed: int = 0,
                           bx: Bx | None = None) -> Workload:
    """Backward restoration after ``perturbation`` edits to the pair list.

    The *right* model is edited and then treated as authoritative, so
    backward restoration must delete and create composers.
    """
    bx = bx or composers_bx()

    def setup() -> tuple:
        left, right = consistent_composer_pair(size, seed)
        script = random_pair_edit_script(right, perturbation, seed)
        return (left, script.apply(right))

    return Workload(
        name=f"composers-bwd-{size}",
        size=size,
        setup=setup,
        operation=lambda state: bx.bwd(*state))


def composers_edit_workload(size: int, edits: int = 50,
                            seed: int = 0) -> Workload:
    """An edit-session: apply a long script with restoration after each
    edit — the interactive-synchroniser usage pattern."""
    bx = composers_bx()

    def setup() -> tuple:
        left, right = consistent_composer_pair(size, seed)
        script = random_pair_edit_script(right, edits, seed)
        return (left, right, script)

    def run(state: tuple) -> SyncResult:
        left, right, script = state
        for edit in script.edits:
            right = edit.apply(right)
            left = bx.bwd(left, right)
        return SyncResult(size, len(left), bx.consistent(left, right))

    return Workload(
        name=f"composers-session-{size}x{edits}",
        size=size,
        setup=setup,
        operation=run)


def zipfian_indices(count: int, population: int, *,
                    skew: float = 1.1, seed: int = 0) -> list[int]:
    """``count`` indices in ``[0, population)``, Zipf-distributed.

    Index ``i`` (rank ``i + 1``) is drawn with probability proportional
    to ``1 / (i + 1) ** skew`` — a few hot items dominate, with a long
    cold tail.  Deterministic for a given ``(skew, seed)``, so
    benchmark rows are reproducible.
    """
    if population <= 0:
        raise ValueError("population must be positive")
    weights = (1.0 / (rank ** skew) for rank in range(1, population + 1))
    cumulative = list(itertools.accumulate(weights))
    total = cumulative[-1]
    rng = random.Random(seed)
    return [bisect.bisect_left(cumulative, rng.random() * total)
            for _draw in range(count)]


def zipfian_identifiers(count: int, identifiers: Iterable[str], *,
                        skew: float = 1.1, seed: int = 0) -> list[str]:
    """A Zipf-skewed read stream over a fixed identifier population.

    The identifier list's order defines hotness: the first identifier
    is the hottest.  Feed the result to ``get_many`` (or loop ``get``)
    to model realistic repository read traffic.
    """
    population: Sequence[str] = list(identifiers)
    picks = zipfian_indices(count, len(population), skew=skew, seed=seed)
    return [population[index] for index in picks]


def run_sync_workload(workload: Workload,
                      check: Callable[[Any], bool] | None = None) -> Any:
    """Run a workload once, optionally asserting a post-condition."""
    result = workload.run_once()
    if check is not None and not check(result):
        raise AssertionError(
            f"workload {workload.name} post-condition failed: {result!r}")
    return result


# ----------------------------------------------------------------------
# The corpus factory: 100k+ synthetic entries, Zipf-skewed, seeded.
# ----------------------------------------------------------------------

class ZipfPool:
    """A fixed pool sampled with Zipf-skewed probability by rank.

    The pool's order defines hotness: item 0 (rank 1) is drawn with
    probability proportional to ``1 / 1**skew``, item 1 with
    ``1 / 2**skew``, and so on.  ``pick`` draws one item, ``sample``
    draws ``k`` distinct ones — both from a caller-supplied
    ``random.Random``, so the pool itself is stateless and shareable.
    """

    def __init__(self, items: Sequence[Any], *, skew: float = 1.1) -> None:
        self.items: tuple[Any, ...] = tuple(items)
        if not self.items:
            raise ValueError("a ZipfPool needs at least one item")
        self.skew = skew
        weights = (1.0 / (rank ** skew)
                   for rank in range(1, len(self.items) + 1))
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def pick(self, rng: random.Random) -> Any:
        return self.items[bisect.bisect_left(self._cumulative,
                                             rng.random() * self._total)]

    def sample(self, rng: random.Random, k: int) -> list[Any]:
        """``k`` distinct Zipf-weighted picks (k capped at the pool size)."""
        k = min(k, len(self.items))
        chosen: list[Any] = []
        while len(chosen) < k:
            item = self.pick(rng)
            if item not in chosen:
                chosen.append(item)
        return chosen


#: Entry types by corpus hotness rank: most curated collections are
#: dominated by worked-out PRECISE examples, with sketches next and the
#: industrial/benchmark tail rare (§2's classes, skewed as a real
#: repository would be).
CORPUS_TYPE_RANKS: tuple[EntryType, ...] = (
    EntryType.PRECISE, EntryType.SKETCH,
    EntryType.INDUSTRIAL, EntryType.BENCHMARK,
)

#: Property claims by hotness rank — every name is a glossary term, so
#: corpus entries validate against the real property registry.
CORPUS_PROPERTY_RANKS: tuple[str, ...] = (
    "correct", "hippocratic", "least change",
    "undoable", "history ignorant", "simply matching",
)

#: Topic fragments titles and prose are assembled from (uniform picks;
#: the *skew* lives in types/properties/authors, where the soak's
#: queries and facets look).
_CORPUS_TOPICS: tuple[str, ...] = (
    "composers", "uml to rdbms", "string formatting", "tree alignment",
    "database views", "model merge", "spreadsheet sync", "lens composition",
    "schema evolution", "graph layout", "feature models", "access control",
    "build caches", "citation graphs", "ontology mapping", "record linkage",
)

_CORPUS_VERBS: tuple[str, ...] = (
    "synchronises", "restores", "aligns", "projects", "mirrors",
    "reconciles", "propagates", "rebuilds",
)


def corpus_author_pool(size: int) -> list[str]:
    """``size`` distinct synthetic contributor names, hotness-ordered."""
    return [f"Contributor {index:04d}" for index in range(size)]


@dataclass(frozen=True)
class CorpusSpec:
    """Everything that determines a synthetic corpus, and nothing else.

    Two processes holding equal specs generate byte-identical corpora:
    each entry is derived from a ``random.Random`` seeded with the
    string ``"<seed>:<index>"`` (string seeding hashes the bytes, so it
    is stable across processes and Python builds, unlike object
    ``hash()``), which also makes :func:`corpus_entry` random-access —
    a soak runner can draw entry 73_201 without generating the 73_200
    before it.
    """

    count: int
    seed: int = 0
    authors: int = 128
    type_skew: float = 1.0
    property_skew: float = 1.1
    author_skew: float = 1.05
    start: int = 0

    def pools(self) -> tuple[ZipfPool, ZipfPool, ZipfPool]:
        """The shared (type, property, author) pools for this spec."""
        return (
            ZipfPool(CORPUS_TYPE_RANKS, skew=self.type_skew),
            ZipfPool(CORPUS_PROPERTY_RANKS, skew=self.property_skew),
            ZipfPool(corpus_author_pool(self.authors),
                     skew=self.author_skew),
        )


def corpus_entry(spec: CorpusSpec, index: int,
                 pools: tuple[ZipfPool, ZipfPool, ZipfPool] | None = None,
                 ) -> ExampleEntry:
    """The corpus entry at ``index`` — pure function of ``(spec, index)``.

    ``pools`` lets bulk callers reuse the cumulative-weight tables; the
    draws themselves come from the per-entry rng either way, so passing
    pools changes speed, never content.
    """
    types, properties, authors = pools or spec.pools()
    rng = random.Random(f"{spec.seed}:{index}")
    topic = rng.choice(_CORPUS_TOPICS)
    verb = rng.choice(_CORPUS_VERBS)
    other = rng.choice(_CORPUS_TOPICS)

    primary = types.pick(rng)
    chosen_types = [primary]
    # PRECISE and SKETCH are mutually exclusive; INDUSTRIAL combines
    # with either, so it is the only legal secondary type.
    if primary is not EntryType.INDUSTRIAL and rng.random() < 0.12:
        chosen_types.append(EntryType.INDUSTRIAL)

    claim_names = properties.sample(rng, 1 + int(rng.random() * 4))
    claims = tuple(PropertyClaim(name, holds=rng.random() < 0.8)
                   for name in claim_names)
    byline = tuple(authors.sample(rng, 1 + int(rng.random() * 3)))
    reviewers = tuple(authors.sample(rng, 1)) if rng.random() < 0.3 else ()
    references = (
        (Reference(f"On {other} ({1990 + int(rng.random() * 30)}).",
                   doi=f"10.0000/corpus.{index}"),)
        if rng.random() < 0.2 else ())

    title = f"CORPUS {index:06d} {topic.upper()}"
    return ExampleEntry(
        title=title,
        version=Version(0, 1),
        types=tuple(chosen_types),
        overview=(f"A synthetic {topic} example that {verb} the left "
                  f"model into {other}. Generated by the corpus factory "
                  f"(seed {spec.seed}, index {index})."),
        models=(ModelDescription("M", f"The {topic} source model."),
                ModelDescription("N", f"The derived {other} view.")),
        consistency=f"N {verb} exactly the published part of M.",
        restoration=RestorationSpec(
            forward=f"Recompute N from M and the {other} overlay.",
            backward=f"Push edits on N back into M, preserving {topic}."),
        discussion=(f"Index {index} of the soak corpus; the {topic} "
                    f"shape recurs across the collection."),
        authors=byline,
        properties=claims,
        references=references,
        reviewers=reviewers,
    )


def corpus_entries(spec: CorpusSpec) -> Iterator[ExampleEntry]:
    """Generate the corpus lazily: entries ``start .. start+count-1``."""
    pools = spec.pools()
    for index in range(spec.start, spec.start + spec.count):
        yield corpus_entry(spec, index, pools)


def corpus_digest(spec: CorpusSpec) -> str:
    """SHA-256 over the canonical encoding of every entry, in order.

    The cross-process reproducibility witness: equal specs must yield
    equal digests in any process, interpreter session, or machine —
    the determinism tests and the nightly soak job both assert exactly
    this before trusting a seed printed by a failing run.
    """
    from repro.repository.codec import encode_entry

    digest = hashlib.sha256()
    for entry in corpus_entries(spec):
        digest.update(encode_entry(entry).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()
