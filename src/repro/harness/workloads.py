"""Benchmark workloads: named, parameterised synchronisation scenarios.

A :class:`Workload` packages what a benchmark row needs: build the
starting state, perturb it, and name the operation under test.  The
benchmark files in ``benchmarks/`` iterate these definitions so that
every EXPERIMENTS.md row maps to exactly one workload.

Storage benchmarks additionally need realistic *access patterns*:
repository reads are not uniform (a few canonical examples are fetched
constantly, the long tail rarely), so :func:`zipfian_indices` /
:func:`zipfian_identifiers` generate deterministic rank-skewed request
streams for cache-sizing and shard-sweep rows.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.catalogue.composers import composers_bx
from repro.core.bx import Bx
from repro.harness.generators import (
    consistent_composer_pair,
    random_pair_edit_script,
)

__all__ = [
    "Workload",
    "SyncResult",
    "composers_fwd_workload",
    "composers_bwd_workload",
    "composers_edit_workload",
    "run_sync_workload",
    "zipfian_indices",
    "zipfian_identifiers",
    "DEFAULT_SIZES",
]

#: Model sizes for scaling rows (E14).
DEFAULT_SIZES: tuple[int, ...] = (10, 100, 1000)


@dataclass(frozen=True)
class Workload:
    """A named scenario: setup builds state, operation is what we time."""

    name: str
    size: int
    setup: Callable[[], Any]
    operation: Callable[[Any], Any]

    def run_once(self) -> Any:
        """Setup and run the operation once (correctness checks, warmup)."""
        return self.operation(self.setup())


@dataclass(frozen=True)
class SyncResult:
    """Outcome of a synchronisation run: sizes before/after, consistency."""

    size_before: int
    size_after: int
    consistent_after: bool


def composers_fwd_workload(size: int, perturbation: int = 10,
                           seed: int = 0,
                           bx: Bx | None = None) -> Workload:
    """Forward restoration after ``perturbation`` edits to the pair list."""
    bx = bx or composers_bx()

    def setup() -> tuple:
        left, right = consistent_composer_pair(size, seed)
        script = random_pair_edit_script(right, perturbation, seed)
        return (left, script.apply(right))

    return Workload(
        name=f"composers-fwd-{size}",
        size=size,
        setup=setup,
        operation=lambda state: bx.fwd(*state))


def composers_bwd_workload(size: int, perturbation: int = 10,
                           seed: int = 0,
                           bx: Bx | None = None) -> Workload:
    """Backward restoration after ``perturbation`` edits to the pair list.

    The *right* model is edited and then treated as authoritative, so
    backward restoration must delete and create composers.
    """
    bx = bx or composers_bx()

    def setup() -> tuple:
        left, right = consistent_composer_pair(size, seed)
        script = random_pair_edit_script(right, perturbation, seed)
        return (left, script.apply(right))

    return Workload(
        name=f"composers-bwd-{size}",
        size=size,
        setup=setup,
        operation=lambda state: bx.bwd(*state))


def composers_edit_workload(size: int, edits: int = 50,
                            seed: int = 0) -> Workload:
    """An edit-session: apply a long script with restoration after each
    edit — the interactive-synchroniser usage pattern."""
    bx = composers_bx()

    def setup() -> tuple:
        left, right = consistent_composer_pair(size, seed)
        script = random_pair_edit_script(right, edits, seed)
        return (left, right, script)

    def run(state: tuple) -> SyncResult:
        left, right, script = state
        for edit in script.edits:
            right = edit.apply(right)
            left = bx.bwd(left, right)
        return SyncResult(size, len(left), bx.consistent(left, right))

    return Workload(
        name=f"composers-session-{size}x{edits}",
        size=size,
        setup=setup,
        operation=run)


def zipfian_indices(count: int, population: int, *,
                    skew: float = 1.1, seed: int = 0) -> list[int]:
    """``count`` indices in ``[0, population)``, Zipf-distributed.

    Index ``i`` (rank ``i + 1``) is drawn with probability proportional
    to ``1 / (i + 1) ** skew`` — a few hot items dominate, with a long
    cold tail.  Deterministic for a given ``(skew, seed)``, so
    benchmark rows are reproducible.
    """
    if population <= 0:
        raise ValueError("population must be positive")
    weights = (1.0 / (rank ** skew) for rank in range(1, population + 1))
    cumulative = list(itertools.accumulate(weights))
    total = cumulative[-1]
    rng = random.Random(seed)
    return [bisect.bisect_left(cumulative, rng.random() * total)
            for _draw in range(count)]


def zipfian_identifiers(count: int, identifiers: Iterable[str], *,
                        skew: float = 1.1, seed: int = 0) -> list[str]:
    """A Zipf-skewed read stream over a fixed identifier population.

    The identifier list's order defines hotness: the first identifier
    is the hottest.  Feed the result to ``get_many`` (or loop ``get``)
    to model realistic repository read traffic.
    """
    population: Sequence[str] = list(identifiers)
    picks = zipfian_indices(count, len(population), skew=skew, seed=seed)
    return [population[index] for index in picks]


def run_sync_workload(workload: Workload,
                      check: Callable[[Any], bool] | None = None) -> Any:
    """Run a workload once, optionally asserting a post-condition."""
    result = workload.run_once()
    if check is not None and not check(result):
        raise AssertionError(
            f"workload {workload.name} post-condition failed: {result!r}")
    return result
