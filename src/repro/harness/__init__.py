"""Benchmark harness: seeded generators, workloads, metrics, reporting."""

from repro.harness.generators import (
    composer_pool,
    consistent_composer_pair,
    large_composer_model,
    large_pair_list,
    random_pair_edit_script,
    scaled_names,
)
from repro.harness.metrics import (
    RestorationReport,
    Timer,
    bwd_change_size,
    fwd_change_size,
    restoration_report,
    time_callable,
)
from repro.harness.reporting import claims_table, law_report_table, text_table
from repro.harness.workloads import (
    DEFAULT_SIZES,
    SyncResult,
    Workload,
    composers_bwd_workload,
    composers_edit_workload,
    composers_fwd_workload,
    run_sync_workload,
)

__all__ = [
    "composer_pool", "large_composer_model", "large_pair_list",
    "consistent_composer_pair", "random_pair_edit_script", "scaled_names",
    "Timer", "time_callable", "fwd_change_size", "bwd_change_size",
    "restoration_report", "RestorationReport",
    "text_table", "law_report_table", "claims_table",
    "Workload", "SyncResult", "DEFAULT_SIZES",
    "composers_fwd_workload", "composers_bwd_workload",
    "composers_edit_workload", "run_sync_workload",
]
