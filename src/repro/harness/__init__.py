"""Benchmark harness: seeded generators, workloads, metrics, reporting."""

from repro.harness.generators import (
    composer_pool,
    consistent_composer_pair,
    large_composer_model,
    large_pair_list,
    random_pair_edit_script,
    scaled_names,
)
from repro.harness.metrics import (
    LatencyRecorder,
    RestorationReport,
    Timer,
    bwd_change_size,
    fwd_change_size,
    percentile,
    restoration_report,
    time_callable,
)
from repro.harness.reporting import (
    claims_table,
    law_report_table,
    soak_report_table,
    text_table,
)

# ``repro.harness.soak`` is deliberately NOT imported here: it pulls in
# the whole repository/serving stack, and the harness package should
# stay importable by lightweight benchmark collection.  Reach it as
# ``from repro.harness.soak import SoakRunner, build_soak_stack``.
from repro.harness.workloads import (
    DEFAULT_SIZES,
    CorpusSpec,
    SyncResult,
    Workload,
    ZipfPool,
    composers_bwd_workload,
    composers_edit_workload,
    composers_fwd_workload,
    corpus_author_pool,
    corpus_digest,
    corpus_entries,
    corpus_entry,
    run_sync_workload,
    zipfian_identifiers,
    zipfian_indices,
)

__all__ = [
    "composer_pool", "large_composer_model", "large_pair_list",
    "consistent_composer_pair", "random_pair_edit_script", "scaled_names",
    "Timer", "time_callable", "fwd_change_size", "bwd_change_size",
    "restoration_report", "RestorationReport",
    "percentile", "LatencyRecorder",
    "text_table", "law_report_table", "claims_table", "soak_report_table",
    "Workload", "SyncResult", "DEFAULT_SIZES",
    "composers_fwd_workload", "composers_bwd_workload",
    "composers_edit_workload", "run_sync_workload",
    "zipfian_indices", "zipfian_identifiers",
    "CorpusSpec", "ZipfPool", "corpus_entry", "corpus_entries",
    "corpus_digest", "corpus_author_pool",
]
