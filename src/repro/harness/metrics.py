"""Measurement helpers: timings, change counts, least-change ratios.

Benchmarks delegate the *timing* to pytest-benchmark; this module covers
the quantities the benchmark rows report alongside time — how much a
restoration changed, and how close to minimal that change was.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.bx import Bx
from repro.models.distance import sequence_edit_distance, set_distance

__all__ = [
    "Timer",
    "time_callable",
    "fwd_change_size",
    "bwd_change_size",
    "restoration_report",
    "percentile",
    "LatencyRecorder",
]


class Timer:
    """A context-manager wall-clock timer (perf_counter based)."""

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self.start


def time_callable(operation: Callable[[], Any],
                  repeats: int = 3) -> tuple[float, Any]:
    """Best-of-``repeats`` wall time and the (last) result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        with Timer() as timer:
            result = operation()
        best = min(best, timer.elapsed)
    return best, result


def percentile(values: "list[float]", q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Soak reports quote p50/p99 latencies through this; an empty sample
    answers 0.0 so a report over a fault-only window still renders.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


class LatencyRecorder:
    """Per-operation latency samples with percentile summaries.

    One instance per operation class (``get``, ``query``, ``write``);
    the soak runner records seconds per successful operation and the
    report distils p50/p99 + throughput from the samples.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: list[float] = []

    def record(self, seconds: float) -> None:
        self.samples.append(seconds)

    @property
    def count(self) -> int:
        return len(self.samples)

    def p50(self) -> float:
        return percentile(self.samples, 50.0)

    def p99(self) -> float:
        return percentile(self.samples, 99.0)

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "p50_ms": self.p50() * 1e3,
            "p99_ms": self.p99() * 1e3,
        }


def fwd_change_size(before: tuple, after: tuple) -> int:
    """Edit distance a forward restoration inflicted on the right model."""
    return sequence_edit_distance(before, after)


def bwd_change_size(before: frozenset, after: frozenset) -> int:
    """Symmetric-difference size a backward restoration inflicted."""
    return set_distance(before, after)


@dataclass(frozen=True)
class RestorationReport:
    """One measured restoration: direction, time, and change size."""

    bx_name: str
    direction: str
    model_size: int
    seconds: float
    change_size: int

    def row(self) -> tuple:
        return (self.bx_name, self.direction, self.model_size,
                f"{self.seconds * 1e3:.3f} ms", self.change_size)


def restoration_report(bx: Bx, left: Any, right: Any,
                       direction: str) -> RestorationReport:
    """Time one restoration and measure how much it changed."""
    seconds, result = time_callable(
        lambda: bx.restore(left, right, direction))
    if direction == "fwd":
        change = fwd_change_size(right, result) \
            if isinstance(right, tuple) else -1
        size = len(right) if hasattr(right, "__len__") else -1
    else:
        change = bwd_change_size(left, result) \
            if isinstance(left, frozenset) else -1
        size = len(left) if hasattr(left, "__len__") else -1
    return RestorationReport(bx.name, direction, size, seconds, change)
