"""Plain-text report rendering for EXPERIMENTS.md regeneration.

Benchmarks and the experiment scripts print fixed-width tables through
these helpers so that EXPERIMENTS.md's measured sections can be
regenerated verbatim by re-running the harness.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.laws import CheckReport

__all__ = ["text_table", "law_report_table", "claims_table"]


def text_table(headers: Sequence[str],
               rows: Iterable[Sequence[Any]]) -> str:
    """Render a fixed-width table with a header rule."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    lines = [format_row(headers),
             format_row(["-" * width for width in widths])]
    lines.extend(format_row(row) for row in materialised)
    return "\n".join(lines)


def law_report_table(reports: Iterable[CheckReport]) -> str:
    """One row per (subject, law) across several check reports."""
    rows = []
    for report in reports:
        for result in report.results:
            rows.append((report.subject, result.law, result.status.value,
                         "exhaustive" if result.exhaustive
                         else f"{result.trials} trials"))
    return text_table(("subject", "law", "status", "mode"), rows)


def claims_table(report: CheckReport) -> str:
    """Claim-vs-measured table for one verify_property_claims report."""
    rows = []
    for result in report.results:
        agreed = {"passed": "agrees", "failed": "DISAGREES",
                  "skipped": "unchecked"}[result.status.value]
        rows.append((result.law, result.note or "-", agreed))
    return text_table(("property claim", "detail", "verdict"), rows)
