"""Plain-text report rendering for EXPERIMENTS.md regeneration.

Benchmarks and the experiment scripts print fixed-width tables through
these helpers so that EXPERIMENTS.md's measured sections can be
regenerated verbatim by re-running the harness.

:func:`normalise_benchmark_json` additionally distils a raw
pytest-benchmark ``--benchmark-json`` dump into the small, stable,
diff-friendly trajectory document that CI's ``bench-trend`` job uploads
as ``BENCH_PR<N>.json`` — one artifact per PR, so the performance
history of the repository is a downloadable series rather than a log
archaeology exercise.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.laws import CheckReport

__all__ = [
    "text_table",
    "law_report_table",
    "claims_table",
    "normalise_benchmark_json",
    "soak_report_table",
]

#: The per-benchmark stats worth tracking across PRs (seconds, except
#: ``ops`` in 1/s and ``rounds`` as a count).
_TREND_STATS = ("min", "mean", "stddev", "ops", "rounds")


def normalise_benchmark_json(raw: dict, *, label: str) -> dict:
    """Distil a pytest-benchmark JSON dump into a trajectory document.

    ``raw`` is the object pytest-benchmark writes via
    ``--benchmark-json``; ``label`` names the point on the trajectory
    (CI passes ``PR<N>``).  The result is deterministic: benchmarks are
    sorted by name and only the stable stats (min/mean/stddev/ops and
    round count) are kept, so two artifacts diff cleanly.
    """
    commit_info = raw.get("commit_info") or {}
    rows = []
    for bench in raw.get("benchmarks", []):
        stats = bench.get("stats") or {}
        rows.append({
            "name": bench.get("name", "?"),
            "group": bench.get("group"),
            "params": bench.get("params") or {},
            "stats": {key: stats.get(key) for key in _TREND_STATS},
            # Measurements a benchmark attaches beyond raw timings —
            # e.g. the cache-sizing sweep records its hit rate per
            # cache size, so the trajectory carries the whole
            # hit-rate/latency curve.
            "extra_info": bench.get("extra_info") or {},
        })
    rows.sort(key=lambda row: row["name"])
    return {
        "schema": 1,
        "label": label,
        "commit": commit_info.get("id"),
        "branch": commit_info.get("branch"),
        "datetime": raw.get("datetime"),
        "machine": (raw.get("machine_info") or {}).get("node"),
        "benchmark_count": len(rows),
        "benchmarks": rows,
    }


def text_table(headers: Sequence[str],
               rows: Iterable[Sequence[Any]]) -> str:
    """Render a fixed-width table with a header rule."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths,
                                                strict=False)).rstrip()

    lines = [format_row(headers),
             format_row(["-" * width for width in widths])]
    lines.extend(format_row(row) for row in materialised)
    return "\n".join(lines)


def law_report_table(reports: Iterable[CheckReport]) -> str:
    """One row per (subject, law) across several check reports."""
    rows = []
    for report in reports:
        for result in report.results:
            rows.append((report.subject, result.law, result.status.value,
                         "exhaustive" if result.exhaustive
                         else f"{result.trials} trials"))
    return text_table(("subject", "law", "status", "mode"), rows)


def soak_report_table(report: Any) -> str:
    """Human-readable digest of one soak run (a ``SoakReport``).

    Typed loosely to keep this module free of a harness→soak import
    cycle; anything with the ``SoakReport`` shape renders.  The same
    numbers travel machine-readably via ``SoakReport.extra_info()`` on
    the benchmark row, so this table is for logs and eyeballs only.
    """
    summary = text_table(
        ("stack", "seconds", "ops", "ops/s", "faults", "checks",
         "violations"),
        [(report.stack, f"{report.seconds:.1f}", report.ops_total,
          f"{report.throughput_ops:.0f}", len(report.faults),
          report.invariant_checks, len(report.violations))])
    latency = text_table(
        ("op", "count", "p50", "p99"),
        [(name, int(stats["count"]), f"{stats['p50_ms']:.2f} ms",
          f"{stats['p99_ms']:.2f} ms")
         for name, stats in sorted(report.latencies.items())])
    blocks = [summary, "", latency]
    if report.faults:
        blocks += ["", text_table(
            ("fault", "at", "recovery", "fired", "details"),
            [record.row() for record in report.faults])]
    if report.violations:
        blocks += ["", "violations:"]
        blocks += [f"  - {violation}" for violation in report.violations]
    return "\n".join(blocks)


def claims_table(report: CheckReport) -> str:
    """Claim-vs-measured table for one verify_property_claims report."""
    rows = []
    for result in report.results:
        agreed = {"passed": "agrees", "failed": "DISAGREES",
                  "skipped": "unchecked"}[result.status.value]
        rows.append((result.law, result.note or "-", agreed))
    return text_table(("property claim", "detail", "verdict"), rows)
