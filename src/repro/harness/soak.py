"""The soak runner: sustained mixed traffic with faults injected mid-run.

Microbenchmarks answer "how fast"; a repository serving millions of
users also has to answer "does it stay *correct* while things break".
This module drives Zipf-skewed read/write/query traffic for a
configurable wall-clock duration against any
:class:`~repro.repository.service.RepositoryAPI` composition — the
service facade over a sharded-of-replicated stack, or an
:class:`~repro.repository.client.HTTPBackend` against a live
:class:`~repro.repository.server.RepositoryServer` — while a **fault
schedule** breaks components mid-run and an **invariant checker**
verifies, after every fault and at the end:

* **no stale cache read** — every read (and a post-fault sample) is
  compared against an in-memory oracle that mirrors exactly the writes
  the target acknowledged;
* **oracle-exact query results** — canned plans run on both sides and
  must agree on totals and identifier pages;
* **p99 latency within bound** — reads outside fault windows must stay
  under a configured ceiling.

The fault taxonomy (see :mod:`repro.repository.faults` for the seam):

* ``shard-kill`` — a shard's primary goes down (latched
  :class:`FlakyBackend`); reads must fail over to the replica, writes
  to that shard fail cleanly until the shard is revived;
* ``replica-diverge`` — a replica's latest payload is doctored behind
  the composite's back; ``anti_entropy()`` must detect and repair it;
* ``file-crash`` — a :class:`FileBackend` replica crashes between the
  change-counter bump and the content rename (the one window where the
  counter advances without content); the mirror failure is counted and
  repaired, and the crash debris must stay invisible;
* ``server-bounce`` — the HTTP server is stopped and restarted on the
  same port under keep-alive load; clients ride their stale-socket
  retry back in;
* ``brownout`` — a shard's primary turns slow-but-alive (latched
  :class:`SlowBackend`); the sharded layer's per-shard deadline must
  fail that key-range fast instead of stalling every caller;
* ``replica-recover`` — a replica dies until its circuit breaker opens
  and suspends it; after revival it must be anti-entropy-repaired
  *before* it rejoins the read rotation;
* ``overload`` — the server's admission bound is clamped and a burst of
  parallel clients drives ~2x capacity; the excess must be shed with
  503 + Retry-After while accepted requests stay oracle-correct;
* ``ingest-burst`` — a shard flips to streaming (async) replication,
  takes a write burst, and its applier thread is killed mid-burst;
  writes keep landing primary-first while replication lag accumulates,
  and ``anti_entropy()`` must drain the lag — replica/oracle equality
  is only asserted *after* the drain, and the drain time is the
  recovery metric the soak gate trends.

Soak rows (throughput, p50/p99, fault-recovery time, invariant-check
count) flow through ``SoakReport.extra_info()`` into pytest-benchmark's
``extra_info`` — which :func:`repro.harness.reporting.normalise_benchmark_json`
preserves — so every soak lands in the ``BENCH_PR<N>.json`` trajectory.

Run it directly for the CI tiers::

    PYTHONPATH=src python -m repro.harness.soak --seconds 20 \
        --entries 5000 --seed 7 --http --json soak.json --log soak.log
"""

from __future__ import annotations

import argparse
import dataclasses
import http.client
import json
import random
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.core.errors import BackendUnavailableError, StorageError
from repro.harness.metrics import LatencyRecorder
from repro.harness.workloads import (
    _CORPUS_TOPICS,
    CorpusSpec,
    corpus_author_pool,
    corpus_entry,
    zipfian_indices,
)
from repro.repository import (
    Q,
    Deadline,
    FaultInjector,
    FileBackend,
    FlakyBackend,
    HTTPBackend,
    InjectedFault,
    MemoryBackend,
    ReplicatedBackend,
    RepositoryServer,
    RepositoryService,
    RetryPolicy,
    ShardedBackend,
    SlowBackend,
    shard_index,
)
from repro.repository.entry import Comment, ExampleEntry
from repro.repository.query import QueryResult
from repro.repository.service import RepositoryAPI
from repro.repository.versioning import Version

__all__ = [
    "SoakConfig",
    "SoakStack",
    "SoakRunner",
    "SoakReport",
    "FaultRecord",
    "SoakFault",
    "ShardKillFault",
    "ReplicaDivergenceFault",
    "FileCrashFault",
    "ServerBounceFault",
    "BrownoutFault",
    "ReplicaRecoverFault",
    "OverloadFault",
    "IngestBurstFault",
    "build_soak_stack",
    "default_faults",
    "run_soak",
    "main",
]

#: Errors an *active fault* is allowed to surface to the traffic loop.
#: ``StorageError`` is included because the wire layer re-raises remote
#: outages as typed storage errors; outside a fault window any
#: exception at all is an invariant violation.
_TOLERATED_DURING_FAULT = (
    InjectedFault, ConnectionError, OSError,
    http.client.HTTPException, StorageError,
)


# ----------------------------------------------------------------------
# Configuration and report rows.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SoakConfig:
    """One soak run, fully determined (wall clock aside) by its fields."""

    seconds: float = 10.0
    corpus: CorpusSpec = CorpusSpec(count=5000, seed=0)
    #: Entries loaded before traffic starts; the rest of the corpus
    #: (and indices beyond it) feed the live ``add`` stream.
    preload: int = 2000
    seed: int = 0
    batch_size: int = 16
    p99_bound_ms: float = 750.0
    #: Identifiers sampled per invariant check.
    check_sample: int = 50
    #: Operation mix (weights need not sum to 1).
    read_weight: float = 0.58
    batch_weight: float = 0.15
    query_weight: float = 0.08
    add_weight: float = 0.10
    add_version_weight: float = 0.05
    replace_weight: float = 0.04


@dataclass
class FaultRecord:
    """One injected fault: when, how long recovery took, what it did."""

    name: str
    at_seconds: float
    recovery_seconds: float
    fired: int
    details: dict[str, Any] = field(default_factory=dict)

    def row(self) -> tuple:
        return (self.name, f"{self.at_seconds:.1f}s",
                f"{self.recovery_seconds * 1e3:.0f} ms", self.fired,
                "; ".join(f"{key}={value}"
                          for key, value in sorted(self.details.items()))
                or "-")


@dataclass
class SoakReport:
    """What one soak run measured; ``ok`` is the pass/fail verdict."""

    stack: str
    seconds: float
    seed: int
    corpus_count: int
    preload: int
    entries_final: int
    ops_total: int
    expected_failures: int
    throughput_ops: float
    latencies: dict[str, dict[str, float]]
    faults: list[FaultRecord]
    invariant_checks: int
    violations: list[str]

    @property
    def ok(self) -> bool:
        return not self.violations

    def fault_names(self) -> list[str]:
        return [record.name for record in self.faults]

    def extra_info(self) -> dict[str, Any]:
        """The trajectory payload: JSON-safe, diff-friendly, flat-ish.

        Attached to a pytest-benchmark row as ``extra_info`` so
        ``normalise_benchmark_json`` carries the whole soak outcome —
        throughput, per-op p50/p99, per-fault recovery time, invariant
        counts — into ``BENCH_PR<N>.json``.
        """
        return {
            "stack": self.stack,
            "seconds": round(self.seconds, 3),
            "seed": self.seed,
            "corpus_count": self.corpus_count,
            "preload": self.preload,
            "entries_final": self.entries_final,
            "ops_total": self.ops_total,
            "expected_failures": self.expected_failures,
            "throughput_ops": round(self.throughput_ops, 1),
            "latencies": {name: {key: round(value, 3)
                                 for key, value in summary.items()}
                          for name, summary in self.latencies.items()},
            "faults": [{"name": record.name,
                        "at_seconds": round(record.at_seconds, 3),
                        "recovery_ms": round(
                            record.recovery_seconds * 1e3, 3),
                        "fired": record.fired,
                        "details": {
                            key: value
                            for key, value in sorted(
                                record.details.items())
                            if isinstance(value, (int, float, str, bool))
                        }}
                       for record in self.faults],
            "invariant_checks": self.invariant_checks,
            "violations": list(self.violations),
        }

    def to_json(self) -> str:
        payload = dataclasses.asdict(self)
        payload["ok"] = self.ok
        return json.dumps(payload, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# The stack under test.
# ----------------------------------------------------------------------

@dataclass
class SoakStack:
    """A sharded-of-replicated stack with fault handles, optionally
    fronted by a live HTTP server.

    ``target`` is what traffic talks to (the service facade, or the
    HTTP client when ``server`` is set); the remaining fields are the
    handles the fault schedule needs to break specific components.
    """

    target: RepositoryAPI
    service: RepositoryService
    sharded: ShardedBackend
    injector: FaultInjector
    flaky_primaries: list[FlakyBackend]
    slow_primaries: list[SlowBackend]
    replicas: list[Any]
    flaky_replicas: list[FlakyBackend]
    replicated: list[ReplicatedBackend]
    file_replica: FileBackend
    file_replica_shard: int
    server: RepositoryServer | None = None
    client: HTTPBackend | None = None

    @property
    def name(self) -> str:
        return "http" if self.server is not None else "direct"

    @property
    def shard_count(self) -> int:
        return len(self.flaky_primaries)

    def close(self) -> None:
        if self.client is not None:
            self.client.close()
        if self.server is not None:
            self.server.stop()
        self.service.close()


def build_soak_stack(root: str | Path, *, shards: int = 2,
                     http: bool = False,
                     cache_size: int = 512,
                     shard_timeout: float = 0.25,
                     brownout_delay: float = 0.6,
                     breaker_reset: float = 0.2) -> SoakStack:
    """The canonical chaos target: sharded-of-replicated (+ HTTP door).

    ``shards`` replicated pairs: every primary is a
    :class:`FlakyBackend`-wrapped :class:`SlowBackend`-wrapped
    :class:`MemoryBackend` (killable *and* brownout-able), every
    replica is :class:`FlakyBackend`-wrapped (killable, so its breaker
    can open); shard 0's replica is a ``MemoryBackend`` (the divergence
    target), the last shard's replica is a :class:`FileBackend` under
    ``root`` (the crash-window target).  The sharded layer carries a
    per-shard read deadline (``shard_timeout`` < ``brownout_delay``, so
    a brownout is observable as fast typed failure), and the replicated
    pairs use a short ``breaker_reset`` so breaker-open windows resolve
    inside a CI-sized run.  With ``http=True`` the service is
    additionally served by a live :class:`RepositoryServer` and
    ``target`` is an :class:`HTTPBackend` against it.
    """
    if shards < 2:
        raise ValueError("the soak stack needs >= 2 shards "
                         "(distinct divergence and crash targets)")
    root = Path(root)
    injector = FaultInjector()
    flaky_primaries: list[FlakyBackend] = []
    slow_primaries: list[SlowBackend] = []
    replicas: list[Any] = []
    flaky_replicas: list[FlakyBackend] = []
    replicated: list[ReplicatedBackend] = []
    file_replica_shard = shards - 1
    file_replica = FileBackend(root / "file-replica")
    file_replica.fault_hook = injector.hook("file-replica.crash")
    for index in range(shards):
        slow = SlowBackend(MemoryBackend(), injector,
                           f"shard{index}.brownout",
                           delay=brownout_delay)
        primary = FlakyBackend(slow, injector, f"shard{index}.primary")
        replica: Any = (file_replica if index == file_replica_shard
                        else MemoryBackend())
        flaky_replica = FlakyBackend(replica, injector,
                                     f"shard{index}.replica")
        flaky_primaries.append(primary)
        slow_primaries.append(slow)
        replicas.append(replica)
        flaky_replicas.append(flaky_replica)
        replicated.append(ReplicatedBackend(
            primary, [flaky_replica], reset_timeout=breaker_reset))
    sharded = ShardedBackend(replicated, shard_timeout=shard_timeout)
    service = RepositoryService(sharded, cache_size=cache_size)
    stack = SoakStack(
        target=service, service=service, sharded=sharded,
        injector=injector, flaky_primaries=flaky_primaries,
        slow_primaries=slow_primaries,
        replicas=replicas, flaky_replicas=flaky_replicas,
        replicated=replicated,
        file_replica=file_replica, file_replica_shard=file_replica_shard,
    )
    if http:
        stack.server = RepositoryServer(service).start()
        stack.client = HTTPBackend(stack.server.url)
        stack.target = stack.client
    return stack


# ----------------------------------------------------------------------
# The fault taxonomy.
# ----------------------------------------------------------------------

class SoakFault:
    """One scheduled fault: inject, let traffic run, then recover.

    ``inject`` breaks the component (and may perform targeted traffic
    to make a one-shot fault fire); the runner then drives
    ``window_ops`` of ordinary traffic with the fault active (failures
    matching the outage are expected, anything else is a violation);
    ``recover`` repairs the component and asserts the repair took.
    Assertion failures in either phase become invariant violations.
    """

    name = "fault"
    #: Traffic operations driven while the fault is active.
    window_ops = 48

    def inject(self, run: "SoakRunner") -> dict[str, Any]:
        raise NotImplementedError

    def recover(self, run: "SoakRunner") -> dict[str, Any]:
        raise NotImplementedError


class ShardKillFault(SoakFault):
    """A shard's primary goes dark; reads fail over, writes fail clean."""

    window_ops = 64

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.name = f"shard-kill-{shard}"

    def inject(self, run: "SoakRunner") -> dict[str, Any]:
        primary = run.stack.flaky_primaries[self.shard]
        primary.kill()
        # The outage must be observable immediately: drop the service
        # cache (shared by both stack shapes) so the probe read really
        # reaches the dead primary, fails over, and still comes back
        # correct via the replica.
        run.stack.service.invalidate()
        identifier = run.identifier_on_shard(self.shard)
        if identifier is not None:
            survived = run.stack.target.get(identifier)
            expected = run.oracle.get(identifier)
            assert survived == expected, (
                f"failover read of {identifier!r} returned a stale "
                f"snapshot during {self.name}")
            assert run.stack.injector.fired(primary.point) >= 1, (
                f"{self.name}: probe read never reached the killed "
                f"primary")
        return {"point": primary.point}

    def recover(self, run: "SoakRunner") -> dict[str, Any]:
        primary = run.stack.flaky_primaries[self.shard]
        primary.revive()
        # Recovery is proven by a write landing on the revived shard.
        # The primary's circuit breaker opened during the outage, so
        # the write fails fast (CircuitOpenError) until the breaker's
        # reset window passes and a half-open trial succeeds; the
        # sanctioned RetryPolicy rides that out.
        policy = RetryPolicy(max_attempts=30, base_delay=0.05,
                             max_delay=0.25)
        entry = policy.call(
            lambda: run.add_routed(self.shard),
            classify=lambda error: isinstance(error,
                                              BackendUnavailableError),
            deadline=Deadline.after(10.0))
        fired = run.stack.injector.fired(primary.point)
        assert fired >= 1, f"{self.name} never actually fired"
        return {"probe_write": entry.identifier, "fired": fired}


class ReplicaDivergenceFault(SoakFault):
    """A replica's latest payload is doctored; anti-entropy repairs it."""

    window_ops = 24

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.name = f"replica-diverge-{shard}"
        self._identifier: str | None = None

    def inject(self, run: "SoakRunner") -> dict[str, Any]:
        identifier = run.identifier_on_shard(self.shard)
        assert identifier is not None, \
            f"no identifier stored on shard {self.shard} to diverge"
        self._identifier = identifier
        replica = run.stack.replicas[self.shard]
        doctored = dataclasses.replace(
            replica.get(identifier),
            overview="DIVERGED by the soak harness.")
        replica.replace_latest(doctored)
        return {"identifier": identifier}

    def recover(self, run: "SoakRunner") -> dict[str, Any]:
        identifier = self._identifier
        assert identifier is not None
        replica = run.stack.replicas[self.shard]
        if replica.get(identifier) == run.oracle.get(identifier):
            # Window traffic replaced the doctored payload through the
            # ordinary mirror path; doctor it again so the anti-entropy
            # repair is actually exercised.
            doctored = dataclasses.replace(
                replica.get(identifier),
                overview="DIVERGED by the soak harness.")
            replica.replace_latest(doctored)
        report = run.stack.replicated[self.shard].anti_entropy()
        assert report.payloads_replaced >= 1, (
            f"{self.name}: anti_entropy repaired nothing "
            f"(report {report})")
        assert not report.conflicts, \
            f"{self.name}: unexpected conflicts {report.conflicts}"
        repaired = run.stack.replicas[self.shard].get(identifier)
        expected = run.oracle.get(identifier)
        assert repaired == expected, \
            f"{self.name}: replica still diverged after anti_entropy"
        return {"payloads_replaced": report.payloads_replaced}


class FileCrashFault(SoakFault):
    """The file replica crashes between counter bump and content rename."""

    name = "file-crash"
    window_ops = 24
    POINT = "file-replica.crash"

    def inject(self, run: "SoakRunner") -> dict[str, Any]:
        stack = run.stack
        before = stack.injector.fired(self.POINT)
        failures_before = \
            stack.replicated[stack.file_replica_shard].replica_write_failures
        stack.injector.arm(self.POINT, mode="once")
        # A write routed to the file replica's shard makes the one-shot
        # fire inside the mirror write: the composite operation still
        # succeeds (primary-first), the mirror failure is counted.
        entry = run.add_routed(stack.file_replica_shard)
        fired = stack.injector.fired(self.POINT)
        assert fired == before + 1, (
            f"crash hook fired {fired - before} times for one armed "
            f"fault (expected exactly once)")
        failures = (stack.replicated[stack.file_replica_shard]
                    .replica_write_failures)
        assert failures == failures_before + 1, \
            "mirror failure was not counted for repair"
        self._entry = entry
        return {"identifier": entry.identifier, "fired": fired - before}

    def recover(self, run: "SoakRunner") -> dict[str, Any]:
        stack = run.stack
        report = stack.replicated[stack.file_replica_shard].anti_entropy()
        assert report.changed, \
            f"{self.name}: anti_entropy found nothing to repair"
        entry = self._entry
        repaired = stack.file_replica.get(entry.identifier)
        assert repaired == run.oracle.get(entry.identifier), \
            f"{self.name}: file replica incoherent after repair"
        return {"entries_copied": report.entries_copied,
                "versions_appended": report.versions_appended}


class ServerBounceFault(SoakFault):
    """Stop and restart the HTTP server on the same port, under the
    keep-alive connections the traffic loop already holds open."""

    name = "server-bounce"
    window_ops = 48
    PROBE_TIMEOUT = 15.0

    def inject(self, run: "SoakRunner") -> dict[str, Any]:
        server = run.stack.server
        assert server is not None, "server-bounce needs an HTTP stack"
        port = server.port
        down = time.perf_counter()
        server.stop()
        server.requested_port = port  # rebind the same address
        server.start()
        return {"port": port,
                "downtime_ms": round((time.perf_counter() - down) * 1e3, 3)}

    def recover(self, run: "SoakRunner") -> dict[str, Any]:
        # The server is up; prove a client (holding a now-stale
        # keep-alive socket) rides its retry back in.  The probe itself
        # goes through the sanctioned RetryPolicy — tolerated outage
        # errors are retried with jitter until the deadline runs out.
        identifier = run.hot_identifier()
        attempts = 0

        def count_attempt(_error: BaseException, _attempt: int) -> None:
            nonlocal attempts
            attempts += 1

        policy = RetryPolicy(max_attempts=120, base_delay=0.05,
                             max_delay=0.25)
        try:
            fetched = policy.call(
                lambda: run.stack.target.get(identifier),
                classify=lambda error: isinstance(
                    error, _TOLERATED_DURING_FAULT),
                deadline=Deadline.after(self.PROBE_TIMEOUT),
                on_retry=count_attempt)
        except _TOLERATED_DURING_FAULT as error:
            raise AssertionError(
                f"{self.name}: server did not come back within "
                f"{self.PROBE_TIMEOUT}s") from error
        assert fetched == run.oracle.get(identifier), \
            f"{self.name}: stale read after restart"
        return {"probe_attempts": attempts + 1}


class BrownoutFault(SoakFault):
    """A shard's primary turns slow-but-alive; the per-shard deadline
    must convert the stall into a fast typed failure for that key-range
    while the other shards stay fast."""

    window_ops = 24

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.name = f"brownout-{shard}"

    def inject(self, run: "SoakRunner") -> dict[str, Any]:
        slow = run.stack.slow_primaries[self.shard]
        slow.brownout()
        run.stack.service.invalidate()
        identifier = run.identifier_on_shard(self.shard)
        assert identifier is not None, \
            f"no identifier stored on shard {self.shard} to probe"
        # The browned-out shard must fail *faster* than the injected
        # delay: the deadline cuts the read off, it does not ride it.
        started = time.perf_counter()
        try:
            run.stack.target.get(identifier)
        except StorageError:
            elapsed = time.perf_counter() - started
        else:
            raise AssertionError(
                f"{self.name}: read of {identifier!r} succeeded while "
                f"the shard was browned out (deadline never engaged)")
        assert elapsed < slow.delay, (
            f"{self.name}: browned-out read took {elapsed:.3f}s — the "
            f"per-shard deadline did not fail it fast "
            f"(delay {slow.delay:.3f}s)")
        return {"probe_ms": round(elapsed * 1e3, 3)}

    def recover(self, run: "SoakRunner") -> dict[str, Any]:
        slow = run.stack.slow_primaries[self.shard]
        slow.restore()
        # Deadline-abandoned stragglers may still be sleeping inside
        # the shard pool; one delay-length pause drains them so the
        # post-recovery probe measures the healthy path.
        time.sleep(slow.delay)
        identifier = run.identifier_on_shard(self.shard)
        assert identifier is not None
        started = time.perf_counter()
        fetched = run.stack.target.get(identifier)
        elapsed = time.perf_counter() - started
        assert fetched == run.oracle.get(identifier), \
            f"{self.name}: stale read after brownout recovery"
        assert elapsed < slow.delay, (
            f"{self.name}: recovered read still slow "
            f"({elapsed:.3f}s >= {slow.delay:.3f}s)")
        fired = run.stack.injector.fired(slow.point)
        assert fired >= 1, f"{self.name} never actually fired"
        return {"fired": fired, "recovered_ms": round(elapsed * 1e3, 3)}


class ReplicaRecoverFault(SoakFault):
    """A replica dies until its breaker opens and suspends it; after
    revival it must be anti-entropy-repaired *before* rejoining."""

    window_ops = 24

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.name = f"replica-recover-{shard}"

    def inject(self, run: "SoakRunner") -> dict[str, Any]:
        stack = run.stack
        pair = stack.replicated[self.shard]
        flaky = stack.flaky_replicas[self.shard]
        flaky.kill()
        # Enough mirror writes to cross the breaker's failure
        # threshold; each composite write still succeeds primary-first.
        writes = 0
        while self.shard not in pair.suspended_replicas() and writes < 8:
            run.add_routed(self.shard)
            writes += 1
        suspended = pair.suspended_replicas()
        assert suspended, (
            f"{self.name}: replica breaker never opened after "
            f"{writes} failed mirror writes")
        return {"writes_to_open": writes, "suspended": len(suspended)}

    def recover(self, run: "SoakRunner") -> dict[str, Any]:
        stack = run.stack
        pair = stack.replicated[self.shard]
        flaky = stack.flaky_replicas[self.shard]
        # Still dead: a health check must NOT reintegrate it.
        assert pair.check_health() == [], (
            f"{self.name}: check_health reintegrated a replica that "
            f"is still down")
        assert pair.suspended_replicas(), \
            f"{self.name}: replica rejoined while still down"
        flaky.revive()
        started = time.perf_counter()
        recovered = pair.check_health()
        reintegration_ms = round((time.perf_counter() - started) * 1e3, 3)
        assert recovered == [0], (
            f"{self.name}: expected replica 0 to reintegrate, "
            f"got {recovered}")
        assert not pair.suspended_replicas(), \
            f"{self.name}: replica still suspended after reintegration"
        # Repair-before-rejoin: every entry the oracle saw on this
        # shard is now on the replica, payload-exact.
        replica = stack.replicas[self.shard]
        identifier = run.identifier_on_shard(self.shard)
        assert identifier is not None
        assert replica.get(identifier) == run.oracle.get(identifier), (
            f"{self.name}: replica rejoined before anti-entropy "
            f"repaired it")
        return {"reintegration_ms": reintegration_ms,
                "reintegrations": pair.reintegrations}


class OverloadFault(SoakFault):
    """The server's admission bound is clamped to one in-flight request
    and a parallel burst drives it past capacity; the excess must be
    shed (503 + Retry-After), never hung or silently dropped."""

    name = "overload"
    window_ops = 24
    BURST_CLIENTS = 6
    BURST_OPS = 4

    def inject(self, run: "SoakRunner") -> dict[str, Any]:
        server = run.stack.server
        assert server is not None, "overload needs an HTTP stack"
        self._saved_limit = server.max_inflight
        shed_before = \
            server.metrics.snapshot()["admission"]["shed_overload"]
        server.set_max_inflight(1)
        identifier = run.hot_identifier()
        sheds: list[BackendUnavailableError] = []
        served: list[float] = []

        def burst() -> None:
            # One attempt, no client-side retry: every 503 surfaces.
            client = HTTPBackend(
                server.url,
                retry_policy=RetryPolicy(max_attempts=1))
            try:
                for _ in range(self.BURST_OPS):
                    started = time.perf_counter()
                    fetched = client.get(identifier)
                    served.append(time.perf_counter() - started)
                    assert fetched == run.oracle.get(identifier), \
                        f"{self.name}: overloaded read came back stale"
            except BackendUnavailableError as error:
                sheds.append(error)
            finally:
                client.close()

        threads = [threading.Thread(target=burst, daemon=True)
                   for _ in range(self.BURST_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not any(thread.is_alive() for thread in threads), \
            f"{self.name}: burst clients hung instead of being shed"
        shed_after = \
            server.metrics.snapshot()["admission"]["shed_overload"]
        assert shed_after > shed_before, (
            f"{self.name}: no requests were shed at "
            f"2x+ capacity (limit 1, {self.BURST_CLIENTS} clients)")
        assert sheds, \
            f"{self.name}: shed requests never surfaced as typed errors"
        assert all(error.retry_after is not None for error in sheds), \
            f"{self.name}: shed responses carried no Retry-After hint"
        worst_accepted = max(served) if served else 0.0
        return {"shed_total": shed_after - shed_before,
                "client_sheds": len(sheds),
                "accepted": len(served),
                "accepted_worst_ms": round(worst_accepted * 1e3, 3)}

    def recover(self, run: "SoakRunner") -> dict[str, Any]:
        server = run.stack.server
        assert server is not None
        server.set_max_inflight(self._saved_limit)
        identifier = run.hot_identifier()
        fetched = run.stack.target.get(identifier)
        assert fetched == run.oracle.get(identifier), \
            f"{self.name}: stale read after overload recovery"
        return {"restored_limit": self._saved_limit}


class IngestBurstFault(SoakFault):
    """A shard flips to streaming (async) replication, takes a write
    burst, and loses its applier thread mid-burst; ``anti_entropy()``
    must converge the lagging replica, and oracle equality against the
    replica is only asserted *after* the replication lag drains.

    The recovery wall clock the runner records for this fault *is* the
    lag-drain time (the backstop repair of every op still queued in the
    trailing log), so the soak-gate trend catches a PR that makes
    catching up slower.
    """

    window_ops = 24
    BURST_WRITES = 12

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.name = f"ingest-burst-{shard}"

    def inject(self, run: "SoakRunner") -> dict[str, Any]:
        pair = run.stack.replicated[self.shard]
        pair.set_replication_mode("async")
        # First half of the burst streams normally — prove it by
        # waiting for the applier to drain it...
        for _ in range(self.BURST_WRITES // 2):
            run.add_routed(self.shard)
        assert pair.wait_for_replication(timeout=5.0), (
            f"{self.name}: applier never drained the first half of "
            f"the burst (lag {pair.replication_lag()[0]})")
        applied = pair.async_applied
        assert applied >= self.BURST_WRITES // 2, (
            f"{self.name}: log drained but only {applied} ops were "
            f"applied asynchronously")
        # ...then the applier dies mid-burst and the rest of the burst
        # (plus the fault window's ordinary traffic) piles up in the
        # trailing log.  Writes keep succeeding primary-first: lag is
        # allowed, silent loss is not.
        killed = pair.kill_applier(0)
        for _ in range(self.BURST_WRITES - self.BURST_WRITES // 2):
            run.add_routed(self.shard)
        lag = pair.replication_lag()[0]
        assert lag >= 1, (
            f"{self.name}: trailing log empty right after the applier "
            f"was killed mid-burst")
        return {"applier_killed": killed, "lag_at_kill": lag}

    def recover(self, run: "SoakRunner") -> dict[str, Any]:
        stack = run.stack
        pair = stack.replicated[self.shard]
        lag_before = pair.replication_lag()[0]
        assert lag_before >= 1, (
            f"{self.name}: lag drained itself with a dead applier — "
            f"the log is leaking ops somewhere")
        # The replica is *expected* to be behind here; equality checks
        # against it would be wrong until the lag drains.  The primary
        # (which serves all reads) must already hold the whole burst.
        identifier = run.identifier_on_shard(self.shard)
        assert identifier is not None
        assert stack.target.get(identifier) == \
            run.oracle.get(identifier), (
                f"{self.name}: primary-side read went stale during "
                f"the burst")
        started = time.perf_counter()
        report = pair.anti_entropy()
        lag_drain_ms = round((time.perf_counter() - started) * 1e3, 3)
        assert pair.replication_lag() == [0], (
            f"{self.name}: anti_entropy left lag "
            f"{pair.replication_lag()[0]}")
        assert report.changed, (
            f"{self.name}: anti_entropy repaired nothing despite "
            f"{lag_before} logged ops")
        # Only NOW, with the lag drained, is replica/oracle equality a
        # valid invariant.
        replica = stack.replicas[self.shard]
        assert replica.get(identifier) == run.oracle.get(identifier), (
            f"{self.name}: replica still behind after the lag drained")
        # Back to the stack's steady-state synchronous mirroring (stops
        # any surviving applier after a final drain).
        pair.set_replication_mode("sync")
        return {"lag_before_repair": lag_before,
                "lag_drain_ms": lag_drain_ms,
                "entries_copied": report.entries_copied,
                "async_applied": pair.async_applied,
                "backpressure_syncs": pair.backpressure_syncs}



def default_faults(stack: SoakStack) -> list[SoakFault]:
    """One fault of every type the stack supports, spread over the run."""
    faults: list[SoakFault] = [
        ShardKillFault(0),
        ReplicaDivergenceFault(0),
        FileCrashFault(),
        BrownoutFault(0),
        ReplicaRecoverFault(0),
        IngestBurstFault(0),
    ]
    if stack.server is not None:
        faults.append(OverloadFault())
        faults.append(ServerBounceFault())
    return faults


# ----------------------------------------------------------------------
# The runner.
# ----------------------------------------------------------------------

class SoakRunner:
    """Drive mixed Zipfian traffic against a stack, breaking it on
    schedule and holding it to the oracle the whole way."""

    def __init__(self, stack: SoakStack, config: SoakConfig,
                 faults: Sequence[SoakFault] | None = None) -> None:
        self.stack = stack
        self.config = config
        self.faults = list(default_faults(stack)
                           if faults is None else faults)
        #: The in-memory oracle: a memory-backed service applied with
        #: exactly the writes the target acknowledged.  Its own index
        #: answers the expected query results.
        self.oracle = RepositoryService(MemoryBackend())
        self.rng = random.Random(config.seed)
        self.ids: list[str] = []  # hot-first (corpus order)
        self.latencies = {name: LatencyRecorder(name)
                          for name in ("get", "get_many", "query", "write")}
        self.ops_total = 0
        self.expected_failures = 0
        self.invariant_checks = 0
        self.violations: list[str] = []
        self.fault_records: list[FaultRecord] = []
        self.events: list[str] = []
        self.fault_active: SoakFault | None = None
        self._pools = config.corpus.pools()
        self._next_index = config.corpus.start + config.corpus.count
        self._fresh = config.corpus.start + config.preload
        self._zipf: "list[int]" = []
        self._zipf_at = 0
        self._started = time.monotonic()
        self._ops = self._build_mix()

    # -- setup ----------------------------------------------------------

    def _build_mix(self) -> list[tuple[str, float]]:
        config = self.config
        return [("get", config.read_weight),
                ("get_many", config.batch_weight),
                ("query", config.query_weight),
                ("add", config.add_weight),
                ("add_version", config.add_version_weight),
                ("replace_latest", config.replace_weight)]

    def preload(self) -> None:
        """Load the corpus head through the service (and the oracle)."""
        spec = self.config.corpus
        count = min(self.config.preload, spec.count)
        chunk: list[ExampleEntry] = []
        for index in range(spec.start, spec.start + count):
            chunk.append(corpus_entry(spec, index, self._pools))
            if len(chunk) >= 1000:
                self._preload_chunk(chunk)
                chunk = []
        if chunk:
            self._preload_chunk(chunk)
        self.log(f"preloaded {count} entries "
                 f"({self.stack.service.entry_count()} stored)")

    def _preload_chunk(self, chunk: list[ExampleEntry]) -> None:
        # Preload goes through the in-process service on purpose — it
        # is setup, not the traffic under measurement — and mirrors
        # into the oracle entry-object for entry-object.
        self.stack.service.add_many(chunk)
        self.oracle.add_many(chunk)
        self.ids.extend(entry.identifier for entry in chunk)

    # -- identifier streams ---------------------------------------------

    def hot_identifier(self) -> str:
        """The next identifier of the Zipfian read stream."""
        if self._zipf_at >= len(self._zipf):
            self._zipf = zipfian_indices(
                4096, len(self.ids), seed=self.rng.randrange(2 ** 31))
            self._zipf_at = 0
        index = self._zipf[self._zipf_at]
        self._zipf_at += 1
        return self.ids[min(index, len(self.ids) - 1)]

    def identifier_on_shard(self, shard: int) -> str | None:
        """Some stored identifier routed to ``shard`` (None if empty).

        Searches from the *cold* end of the corpus so faults that
        doctor a specific entry rarely collide with the Zipf-hot
        traffic stream rewriting it mid-window.
        """
        count = self.stack.shard_count
        for identifier in reversed(self.ids):
            if shard_index(identifier, count) == shard:
                return identifier
        return None

    def fresh_entry(self) -> ExampleEntry:
        """The next never-stored corpus entry (corpus tail, then beyond)."""
        spec = self.config.corpus
        if self._fresh < spec.start + spec.count:
            index = self._fresh
            self._fresh += 1
        else:
            index = self._next_index
            self._next_index += 1
        return corpus_entry(spec, index, self._pools)

    def add_routed(self, shard: int) -> ExampleEntry:
        """Add (through the target) a fresh entry routed to ``shard``."""
        count = self.stack.shard_count
        while True:
            entry = self.fresh_entry()
            if shard_index(entry.identifier, count) == shard:
                break
        self.stack.target.add(entry)
        self.oracle.add(entry)
        self.ids.append(entry.identifier)
        return entry

    # -- logging --------------------------------------------------------

    def log(self, message: str) -> None:
        stamp = time.monotonic() - self._started
        self.events.append(f"[{stamp:8.3f}s] {message}")

    # -- the run --------------------------------------------------------

    def run(self) -> SoakReport:
        self._started = time.monotonic()
        self.preload()
        start = time.monotonic()
        deadline = start + self.config.seconds
        pending = list(self.faults)
        spacing = self.config.seconds / (len(pending) + 1) \
            if pending else None
        schedule = [(start + spacing * (slot + 1), fault)
                    for slot, fault in enumerate(pending)]
        while time.monotonic() < deadline or schedule:
            if schedule and time.monotonic() >= schedule[0][0]:
                _, fault = schedule.pop(0)
                self._run_fault(fault, start)
                continue
            self._one_op()
        elapsed = time.monotonic() - start
        self._check_invariants("final")
        report = SoakReport(
            stack=self.stack.name,
            seconds=elapsed,
            seed=self.config.seed,
            corpus_count=self.config.corpus.count,
            preload=self.config.preload,
            entries_final=len(self.ids),
            ops_total=self.ops_total,
            expected_failures=self.expected_failures,
            throughput_ops=self.ops_total / elapsed if elapsed else 0.0,
            latencies={name: recorder.summary()
                       for name, recorder in self.latencies.items()},
            faults=self.fault_records,
            invariant_checks=self.invariant_checks,
            violations=self.violations,
        )
        self.log(f"run complete: {report.ops_total} ops, "
                 f"{len(report.violations)} violations")
        return report

    def _run_fault(self, fault: SoakFault, start: float) -> None:
        self.log(f"injecting {fault.name}")
        at_seconds = time.monotonic() - start
        self.fault_active = fault
        fired_before = sum(self.stack.injector.fired_counts().values())
        details: dict[str, Any] = {}
        try:
            details.update(fault.inject(self))
            for _ in range(fault.window_ops):
                self._one_op()
            recover_started = time.monotonic()
            details.update(fault.recover(self))
            recovery = time.monotonic() - recover_started
        except AssertionError as failure:
            self.violations.append(f"{fault.name}: {failure}")
            recovery = 0.0
        except Exception as failure:  # noqa: BLE001 - a broken fault is a finding
            self.violations.append(
                f"{fault.name}: {type(failure).__name__}: {failure}")
            recovery = 0.0
        finally:
            self.fault_active = None
        fired = sum(self.stack.injector.fired_counts().values()) \
            - fired_before
        self.fault_records.append(FaultRecord(
            name=fault.name, at_seconds=at_seconds,
            recovery_seconds=recovery, fired=fired, details=details))
        self._check_invariants(f"after {fault.name}")
        self.log(f"recovered from {fault.name} "
                 f"in {recovery * 1e3:.0f} ms ({details})")

    # -- one traffic operation ------------------------------------------

    def _one_op(self) -> None:
        roll = self.rng.random() * sum(w for _n, w in self._ops)
        name = self._ops[-1][0]
        for candidate, weight in self._ops:
            if roll < weight:
                name = candidate
                break
            roll -= weight
        self.ops_total += 1
        started = time.perf_counter()
        try:
            getattr(self, f"_op_{name}")()
        except Exception as error:  # noqa: BLE001 - classified below
            if self.fault_active is not None and isinstance(
                    error, _TOLERATED_DURING_FAULT):
                self.expected_failures += 1
                return
            self.violations.append(
                f"op {name}: unexpected {type(error).__name__}: {error}")
            return
        recorder = self.latencies[
            name if name in ("get", "get_many", "query") else "write"]
        # Latency under an active fault measures the outage, not the
        # system; those samples stay out of the p99 bound.
        if self.fault_active is None:
            recorder.record(time.perf_counter() - started)

    def _op_get(self) -> None:
        identifier = self.hot_identifier()
        fetched = self.stack.target.get(identifier)
        expected = self.oracle.get(identifier)
        if fetched != expected:
            raise AssertionError(f"stale read of {identifier!r}")

    def _op_get_many(self) -> None:
        requests = [self.hot_identifier()
                    for _ in range(self.config.batch_size)]
        fetched = self.stack.target.get_many(requests)
        expected = self.oracle.get_many(requests)
        if fetched != expected:
            raise AssertionError(
                f"stale batch read (size {len(requests)})")

    def _op_query(self) -> None:
        query, offset, limit = self._random_query()
        observed = self.stack.target.query(
            query, sort="identifier", offset=offset, limit=limit)
        expected = self.oracle.query(
            query, sort="identifier", offset=offset, limit=limit)
        self._compare_query(f"live query {query!r}", observed, expected)

    def _op_add(self) -> None:
        entry = self.fresh_entry()
        self.stack.target.add(entry)
        self.oracle.add(entry)
        self.ids.append(entry.identifier)

    def _op_add_version(self) -> None:
        identifier = self.hot_identifier()
        latest = self.oracle.get(identifier)
        bumped = dataclasses.replace(
            latest,
            version=Version(latest.version.major, latest.version.minor + 1),
            overview=latest.overview + " Revised under soak.")
        self.stack.target.add_version(bumped)
        self.oracle.add_version(bumped)

    def _op_replace_latest(self) -> None:
        identifier = self.hot_identifier()
        latest = self.oracle.get(identifier)
        commented = latest.with_comment(Comment(
            "soak-harness", "2026-01-01",
            f"traffic op {self.ops_total}"))
        self.stack.target.replace_latest(commented)
        self.oracle.replace_latest(commented)

    def _random_query(self):
        kind = self.rng.randrange(4)
        if kind == 0:
            query = Q.text(self.rng.choice(_CORPUS_TOPICS).split()[0])
        elif kind == 1:
            query = Q.type(self.rng.choice(
                list(self._pools[0].items)))
        elif kind == 2:
            query = Q.author(self.rng.choice(
                corpus_author_pool(self.config.corpus.authors)[:8]))
        else:
            query = Q.property(self.rng.choice(
                list(self._pools[1].items))) & Q.reviewed()
        offset = self.rng.choice((0, 0, 10))
        return query, offset, 25

    # -- the invariant checker ------------------------------------------

    def _compare_query(self, label: str, observed: QueryResult,
                       expected: QueryResult) -> None:
        if observed.total != expected.total:
            raise AssertionError(
                f"{label}: total {observed.total} != oracle "
                f"{expected.total}")
        if observed.identifiers != expected.identifiers:
            raise AssertionError(
                f"{label}: page {observed.identifiers} != oracle "
                f"{expected.identifiers}")

    def _check_invariants(self, label: str) -> None:
        """Oracle-exact reads and queries, plus the p99 ceiling."""
        self.invariant_checks += 1
        try:
            sample_size = min(self.config.check_sample, len(self.ids))
            sample = self.rng.sample(self.ids, sample_size)
            fetched = self.stack.target.get_many(sample)
            expected = self.oracle.get_many(sample)
            for identifier, got, want in zip(sample, fetched, expected,
                                             strict=True):
                if got != want:
                    self.violations.append(
                        f"{label}: stale cache read of {identifier!r}")
            versions = self.stack.target.versions_many(sample[:8])
            if versions != self.oracle.versions_many(sample[:8]):
                self.violations.append(
                    f"{label}: version histories diverged")
            for query, offset, limit in (
                    (Q.type(self._pools[0].items[0]), 0, 25),
                    (Q.author(corpus_author_pool(4)[0]), 0, 25),
                    (Q.text(_CORPUS_TOPICS[0].split()[0]), 0, 25)):
                observed = self.stack.target.query(
                    query, sort="identifier", offset=offset, limit=limit)
                oracle = self.oracle.query(
                    query, sort="identifier", offset=offset, limit=limit)
                self._compare_query(f"{label}: query {query!r}",
                                    observed, oracle)
        except AssertionError as failure:
            self.violations.append(str(failure))
        except Exception as failure:  # noqa: BLE001 - checker must not crash the run
            self.violations.append(
                f"{label}: invariant check failed with "
                f"{type(failure).__name__}: {failure}")
        reads = self.latencies["get"]
        if reads.count >= 100:
            p99_ms = reads.p99() * 1e3
            if p99_ms > self.config.p99_bound_ms:
                self.violations.append(
                    f"{label}: read p99 {p99_ms:.1f} ms over the "
                    f"{self.config.p99_bound_ms:.0f} ms bound")


def run_soak(stack: SoakStack, config: SoakConfig,
             faults: Sequence[SoakFault] | None = None) -> SoakReport:
    """Build a runner, drive the soak, return the report."""
    return SoakRunner(stack, config, faults).run()


# ----------------------------------------------------------------------
# CLI — what the CI soak tiers invoke.
# ----------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Soak the repository stack with faults injected "
                    "mid-run; non-zero exit on any invariant violation.")
    parser.add_argument("--seconds", type=float, default=20.0)
    parser.add_argument("--entries", type=int, default=5000,
                        help="corpus size (preload is half, capped 20k)")
    parser.add_argument("--preload", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--http", action="store_true",
                        help="front the stack with a live RepositoryServer "
                             "and drive traffic through HTTPBackend")
    parser.add_argument("--p99-bound-ms", type=float, default=750.0)
    parser.add_argument("--root", type=Path, default=None,
                        help="durable root (default: a temp directory)")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the full report here")
    parser.add_argument("--log", type=Path, default=None,
                        help="write the event timeline here")
    arguments = parser.parse_args(argv)

    from repro.harness.reporting import soak_report_table

    preload = arguments.preload
    if preload is None:
        preload = min(arguments.entries // 2, 20_000)
    config = SoakConfig(
        seconds=arguments.seconds,
        corpus=CorpusSpec(count=arguments.entries, seed=arguments.seed),
        preload=preload,
        seed=arguments.seed,
        p99_bound_ms=arguments.p99_bound_ms,
    )
    with tempfile.TemporaryDirectory(prefix="soak-") as scratch:
        root = arguments.root or Path(scratch)
        stack = build_soak_stack(root, shards=arguments.shards,
                                 http=arguments.http)
        try:
            runner = SoakRunner(stack, config)
            report = runner.run()
        finally:
            stack.close()

    print(soak_report_table(report))
    if arguments.json is not None:
        arguments.json.write_text(report.to_json() + "\n")
        print(f"report written to {arguments.json}")
    if arguments.log is not None:
        arguments.log.write_text("\n".join(runner.events) + "\n")
        print(f"timeline written to {arguments.log}")
    if not report.ok:
        print(f"SOAK FAILED: {len(report.violations)} violation(s); "
              f"reproduce with --seed {config.seed} "
              f"--entries {config.corpus.count}", file=sys.stderr)
        for violation in report.violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    print(f"soak OK: {report.ops_total} ops at "
          f"{report.throughput_ops:.0f} ops/s, "
          f"{len(report.faults)} faults recovered, "
          f"{report.invariant_checks} invariant checks, 0 violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
